//! Type-checking errors.

use rtj_lang::span::Span;
use std::fmt;

/// An error produced by the type checker.
///
/// The message is self-contained prose; `span` points at the offending
/// source. Use [`rtj_lang::diag::render`] to render against the source,
/// or [`rtj_lang::diag::render_with_notes`] to include the derivation
/// `notes` (surfaced by `rtjc check --explain`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
    /// The premise chain the deduction engine explored before failing:
    /// one human-readable step per line, deterministic for a given
    /// program (so diagnostics stay byte-identical across `--jobs`).
    /// Empty for errors with no interesting derivation.
    pub notes: Vec<String>,
}

impl TypeError {
    /// Creates a new error with no derivation notes.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        TypeError {
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a new error carrying a derivation trace.
    pub fn with_notes(message: impl Into<String>, span: Span, notes: Vec<String>) -> Self {
        TypeError {
            message: message.into(),
            span,
            notes,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_message() {
        let e = TypeError::new("bad owner", Span::new(3, 9));
        let s = e.to_string();
        assert!(s.contains("3..9"));
        assert!(s.contains("bad owner"));
    }

    #[test]
    fn notes_do_not_change_display() {
        let plain = TypeError::new("bad owner", Span::new(3, 9));
        let noted = TypeError::with_notes(
            "bad owner",
            Span::new(3, 9),
            vec!["required `a ≽ b`".to_string()],
        );
        assert_eq!(plain.to_string(), noted.to_string());
        assert_ne!(plain, noted);
    }
}
