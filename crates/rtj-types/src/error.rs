//! Type-checking errors.

use rtj_lang::span::Span;
use std::fmt;

/// An error produced by the type checker.
///
/// The message is self-contained prose; `span` points at the offending
/// source. Use [`rtj_lang::diag::render`] to render against the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// What went wrong.
    pub message: String,
    /// Where it went wrong.
    pub span: Span,
}

impl TypeError {
    /// Creates a new error.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        TypeError {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_and_message() {
        let e = TypeError::new("bad owner", Span::new(3, 9));
        let s = e.to_string();
        assert!(s.contains("3..9"));
        assert!(s.contains("bad owner"));
    }
}
