//! The type checker: implements the typing judgments of Appendix B.
//!
//! Entry point: [`check_program`]. On success it returns the *elaborated*
//! program (inferred `let` types, defaulted `new` owners, and inferred
//! call-site owner arguments written back into the AST) together with the
//! [`ProgramTable`] (its stored declarations refreshed to the elaborated
//! AST), which the interpreter uses for method resolution and object
//! layout.
//!
//! Rule coverage (paper → function):
//!
//! | Paper rule | Here |
//! |---|---|
//! | `[PROG]` | [`check_program`] (main block: `X = {heap, immortal}`, `rcr = heap`) |
//! | `[CLASS DEF]`, `[METHOD]` | `check_class`, `check_method` |
//! | `[REGION KIND DEF]` | `check_region_kind` |
//! | `[TYPE C]`, `[TYPE REGION HANDLE]` | `wf_stype` |
//! | `[USER DECLARED SHARED REGION]` | `wf_kind` |
//! | `[EXPR VAR/LET/NEW/REF READ/REF WRITE/INVOKE]` | `check_expr`, `check_stmt`, `field_access`, `check_call` |
//! | `[EXPR LOCALREGION/REGION/SUBREGION]` | `check_stmt` (region forms) |
//! | `[EXPR FORK]`, `[EXPR RTFORK]` | `check_stmt` (`Stmt::Fork`) |
//! | `[EXPR GET/SET REGION FIELD]` | `field_access` (portal branch) |
//! | `[AV ...]`, `[RKIND ...]` | [`crate::env::Env`] queries |
//! | `InheritanceOK`, `OverridesOK` | `check_inheritance` |

use crate::env::{Effects, Env, JudgmentCounters};
use crate::error::TypeError;
use crate::infer;
use crate::kind::Kind;
use crate::owner::{Owner, Subst};
use crate::profile::{CheckProfile, PhaseSpan};
use crate::stype::SType;
use crate::table::{resolve_kind, ClassInfo, ProgramTable, SConstraint};
use rtj_lang::ast::*;
use rtj_lang::intern::Symbol;
use rtj_lang::span::Span;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A successfully checked program: the elaborated AST plus its table.
#[derive(Debug, Clone)]
pub struct Checked {
    /// The program with inference results written back.
    pub program: Program,
    /// Class/region-kind table built from the elaborated program.
    pub table: ProgramTable,
    /// Statistics from the checking run.
    pub stats: CheckStats,
    /// Phase-span tree recorded when [`CheckOptions::profile`] was set.
    pub profile: Option<CheckProfile>,
}

/// Options for the checking driver.
#[derive(Debug, Clone, Default)]
pub struct CheckOptions {
    /// Worker threads for per-class checking. `0` means one per available
    /// CPU core; `1` forces the fully serial driver.
    pub jobs: usize,
    /// Record a per-phase (and per-class) span tree in
    /// [`Checked::profile`]. Off by default; when off the driver takes no
    /// phase or per-class timestamps at all, so checking runs exactly the
    /// PR 1 code path.
    pub profile: bool,
}

/// Statistics produced by a checking run (surfaced by `rtjc check --stats`).
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Classes checked (the units fanned out to worker threads).
    pub classes_checked: usize,
    /// Method bodies checked.
    pub methods_checked: usize,
    /// Judgment-cache counters, broken out per judgment family
    /// (ownership `≽ₒ`, outlives `≽`, subkinding `≤ₖ`, region kinds,
    /// handle availability), summed over all typing environments.
    pub judgments: JudgmentCounters,
    /// Worker threads used for the class-checking phase.
    pub threads_used: usize,
    /// Wall-clock time of the whole checking run.
    pub elapsed: Duration,
}

impl CheckStats {
    /// Judgment-cache hits summed over every family (derived; the
    /// per-family split lives in [`CheckStats::judgments`]).
    pub fn cache_hits(&self) -> u64 {
        self.judgments.hits()
    }

    /// Judgment-cache misses summed over every family (derived).
    pub fn cache_misses(&self) -> u64 {
        self.judgments.misses()
    }

    /// Judgment-cache hit rate in `[0, 1]`; `0` when no queries ran.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits() + self.cache_misses();
        if total == 0 {
            0.0
        } else {
            self.cache_hits() as f64 / total as f64
        }
    }
}

/// Type-checks a program.
///
/// # Errors
///
/// Returns every type error found (the checker recovers and keeps going
/// where it can, so multiple independent errors are reported together).
///
/// # Examples
///
/// ```
/// use rtj_lang::parser::parse_program;
/// use rtj_types::check_program;
///
/// let p = parse_program(r#"
///     class Cell<Owner o> { int v; }
///     {
///         (RHandle<r> h) {
///             let Cell<r> c = new Cell<r>;
///             c.v = 42;
///         }
///     }
/// "#).unwrap();
/// assert!(check_program(&p).is_ok());
/// ```
pub fn check_program(p: &Program) -> Result<Checked, Vec<TypeError>> {
    check_program_in(p.clone(), &CheckOptions::default())
}

/// Type-checks a program, consuming it (no up-front clone).
///
/// Classes are independent checking units: with `opts.jobs != 1` they are
/// fanned out across worker threads. Diagnostics are collected per unit,
/// merged in declaration order, and stably sorted by source span, so
/// serial and parallel runs produce byte-identical output.
///
/// # Errors
///
/// Returns every type error found, sorted by span.
pub fn check_program_in(mut prog: Program, opts: &CheckOptions) -> Result<Checked, Vec<TypeError>> {
    let start = Instant::now();
    // Profiling spans: every timestamp below is behind this flag, so an
    // unprofiled run takes exactly two clock reads (start/elapsed), the
    // same as before the profiler existed.
    let profiling = opts.profile;
    let mut phases: Vec<PhaseSpan> = Vec::new();

    let p0 = profiling.then(|| start.elapsed());
    infer::apply_declaration_defaults(&mut prog);
    if let Some(p0) = p0 {
        phases.push(PhaseSpan::leaf("lower", p0, start.elapsed() - p0));
    }

    let p0 = profiling.then(|| start.elapsed());
    let table = ProgramTable::build(&prog)?;
    if let Some(p0) = p0 {
        phases.push(PhaseSpan::leaf("table", p0, start.elapsed() - p0));
    }
    let mut stats = CheckStats {
        classes_checked: prog.classes.len(),
        ..CheckStats::default()
    };

    // Serial prelude: region kinds and inheritance (cheap, and inheritance
    // reads the whole table). Iterated in declaration order so diagnostics
    // are deterministic run to run.
    let p0 = profiling.then(|| start.elapsed());
    let mut ck = Checker::new(&table);
    for rk in &prog.region_kinds {
        ck.check_region_kind(rk);
    }
    ck.check_inheritance(&prog.classes);
    let prelude_errors = std::mem::take(&mut ck.errors);
    if let Some(p0) = p0 {
        phases.push(PhaseSpan::leaf("wf", p0, start.elapsed() - p0));
    }

    // Per-class units, checked serially or in parallel; either way each
    // unit's diagnostics land in its own slot, so the merge below is the
    // same code path for both drivers.
    let mut classes = std::mem::take(&mut prog.classes);
    let workers = match opts.jobs {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .min(classes.len().max(1));
    stats.threads_used = workers;
    let p0 = profiling.then(|| start.elapsed());
    // Per-class timing `(start offset, wall)`, indexed by declaration
    // position. Workers may fill these in any order, but the span tree is
    // assembled from this index-ordered table, so its *structure* (names
    // and ordering) never depends on scheduling.
    let mut class_times: Vec<Option<(Duration, Duration)>> = vec![None; classes.len()];
    let mut unit_errors: Vec<Vec<TypeError>> = (0..classes.len()).map(|_| Vec::new()).collect();
    if workers <= 1 {
        for (i, c) in classes.iter_mut().enumerate() {
            let c0 = profiling.then(|| start.elapsed());
            ck.check_class(c);
            if let Some(c0) = c0 {
                class_times[i] = Some((c0, start.elapsed() - c0));
            }
            unit_errors[i] = std::mem::take(&mut ck.errors);
        }
    } else {
        // A worker's result: per-class diagnostics (and timings) tagged
        // with the class index, plus the worker itself (for its
        // accumulated stats).
        type Unit = (usize, Vec<TypeError>, Option<(Duration, Duration)>);
        type WorkerResult<'t> = (Vec<Unit>, Checker<'t>);
        let queue = Mutex::new(classes.iter_mut().enumerate());
        let results: Vec<WorkerResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    let table = &table;
                    s.spawn(move || {
                        let mut w = Checker::new(table);
                        let mut units = Vec::new();
                        loop {
                            let item = queue.lock().unwrap().next();
                            let Some((i, c)) = item else { break };
                            let c0 = profiling.then(|| start.elapsed());
                            w.check_class(c);
                            let t = c0.map(|c0| (c0, start.elapsed() - c0));
                            units.push((i, std::mem::take(&mut w.errors), t));
                        }
                        (units, w)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (units, w) in results {
            ck.methods_checked += w.methods_checked;
            ck.judgments.absorb(&w.judgments);
            for (i, errs, t) in units {
                unit_errors[i] = errs;
                class_times[i] = t;
            }
        }
    }
    if let Some(p0) = p0 {
        let children = classes
            .iter()
            .zip(&class_times)
            .map(|(c, t)| {
                let (s0, w) = t.unwrap_or((Duration::ZERO, Duration::ZERO));
                PhaseSpan::leaf(format!("class {}", c.name.name), s0, w)
            })
            .collect();
        phases.push(PhaseSpan {
            name: "classes".to_string(),
            start: p0,
            wall: start.elapsed() - p0,
            children,
        });
    }
    prog.classes = classes;

    // [PROG]: the initial expression runs on the main (regular) thread with
    // the heap as the current region.
    let p0 = profiling.then(|| start.elapsed());
    let mut env = Env::base();
    let x: Effects = [Owner::Heap, Owner::Immortal].into_iter().collect();
    let mut main = std::mem::take(&mut prog.main.stmts);
    for s in &mut main {
        ck.check_stmt(&mut env, &x, &Owner::Heap, &SType::Void, false, s);
    }
    ck.absorb_env(&env);
    prog.main.stmts = main;
    let main_errors = std::mem::take(&mut ck.errors);
    if let Some(p0) = p0 {
        phases.push(PhaseSpan::leaf("main", p0, start.elapsed() - p0));
    }

    // Single merge path for serial and parallel drivers: declaration
    // order, then a stable sort by span (same-span diagnostics keep
    // declaration order).
    let mut all = prelude_errors;
    all.extend(unit_errors.into_iter().flatten());
    all.extend(main_errors);
    all.sort_by_key(|e| e.span);

    stats.methods_checked = ck.methods_checked;
    stats.judgments = ck.judgments;
    stats.elapsed = start.elapsed();
    if all.is_empty() {
        // Refresh the stored declarations so the table contains the
        // elaborated method bodies. Inference only fills in elided owner
        // arguments inside bodies — the hierarchy, formal kinds, and
        // signatures are unchanged — so a full revalidating rebuild would
        // be wasted work.
        let mut table = table;
        table.refresh_decls(&prog);
        Ok(Checked {
            program: prog,
            table,
            stats,
            profile: profiling.then_some(CheckProfile { phases }),
        })
    } else {
        Err(all)
    }
}

/// The per-unit checking state. Crate-visible so the incremental engine
/// (`crate::incremental`) can run the exact same per-class / per-region-kind
/// routines the batch driver runs, one unit at a time.
pub(crate) struct Checker<'t> {
    table: &'t ProgramTable,
    pub(crate) errors: Vec<TypeError>,
    pub(crate) methods_checked: usize,
    pub(crate) judgments: JudgmentCounters,
}

impl<'t> Checker<'t> {
    pub(crate) fn new(table: &'t ProgramTable) -> Checker<'t> {
        Checker {
            table,
            errors: Vec::new(),
            methods_checked: 0,
            judgments: JudgmentCounters::default(),
        }
    }

    fn err(&mut self, message: impl Into<String>, span: Span) {
        self.errors.push(TypeError::new(message, span));
    }

    /// Like [`Checker::err`], carrying the derivation trace the failed
    /// judgment explored (rendered by `rtjc check --explain`).
    fn err_with(&mut self, message: impl Into<String>, span: Span, notes: Vec<String>) {
        self.errors
            .push(TypeError::with_notes(message, span, notes));
    }

    /// Derivation notes for a failed `where` constraint.
    fn explain_constraint(env: &Env, c: &SConstraint) -> Vec<String> {
        match c.rel {
            ConstraintRel::Owns => env.explain_owns(&c.lhs, &c.rhs),
            ConstraintRel::Outlives => env.explain_outlives(&c.lhs, &c.rhs),
        }
    }

    /// Folds an environment's judgment-cache counters into the run totals.
    /// Counters reset when an `Env` is cloned, so each environment is
    /// absorbed exactly once, just before it goes out of scope.
    pub(crate) fn absorb_env(&mut self, env: &Env) {
        self.judgments.absorb(&env.judgment_counters());
    }

    // -------------------------------------------------------------- resolve

    /// Resolves a surface owner reference, checking that it is in scope.
    /// `allow_rt` permits the `RT` pseudo-effect (accesses clauses only).
    fn resolve_owner(&mut self, env: &Env, o: &OwnerRef, allow_rt: bool) -> Option<Owner> {
        let owner = Owner::resolve(o, |n| env.is_region_name(n));
        match &owner {
            Owner::Rt if allow_rt => Some(owner),
            Owner::Rt => {
                self.err("`RT` is only valid in `accesses` clauses", o.span());
                None
            }
            Owner::This => {
                if env.kind_of(&Owner::This).is_some() {
                    Some(owner)
                } else {
                    self.err("`this` is not available here", o.span());
                    None
                }
            }
            Owner::InitialRegion => {
                if env.kind_of(&Owner::InitialRegion).is_some() {
                    Some(owner)
                } else {
                    self.err(
                        "`initialRegion` is only available inside method bodies",
                        o.span(),
                    );
                    None
                }
            }
            Owner::Heap | Owner::Immortal => Some(owner),
            Owner::Formal(n) | Owner::Region(n) => {
                if env.is_declared_owner(*n) {
                    Some(owner)
                } else {
                    self.err(format!("unknown owner `{n}`"), o.span());
                    None
                }
            }
        }
    }

    /// Resolves a surface type and checks it well-formed.
    fn resolve_type(&mut self, env: &Env, ty: &Type) -> Option<SType> {
        let st = match ty {
            Type::Int(_) => SType::Int,
            Type::Bool(_) => SType::Bool,
            Type::Void(_) => SType::Void,
            Type::Class(ct) => {
                let mut owners = Vec::with_capacity(ct.owners.len());
                for o in &ct.owners {
                    owners.push(self.resolve_owner(env, o, false)?);
                }
                SType::Class {
                    name: ct.name.name,
                    owners,
                }
            }
            Type::Handle(r, _) => SType::Handle(self.resolve_owner(env, r, false)?),
        };
        if self.wf_stype(env, &st, ty.span()) {
            Some(st)
        } else {
            None
        }
    }

    /// `[TYPE C]` / `[TYPE REGION HANDLE]`: type well-formedness.
    fn wf_stype(&mut self, env: &Env, t: &SType, span: Span) -> bool {
        match t {
            SType::Int | SType::Bool | SType::Void | SType::Null | SType::Str => true,
            SType::Handle(r) => match env.kind_of(r) {
                Some(k) if k.is_region_kind() => true,
                _ => {
                    self.err(format!("`{r}` is not a region"), span);
                    false
                }
            },
            SType::Class { name, owners } => self.wf_class_type(env, *name, owners, span),
        }
    }

    fn wf_class_type(&mut self, env: &Env, name: Symbol, owners: &[Owner], span: Span) -> bool {
        let (formal_names, formal_kinds, constraints): (Vec<Symbol>, Vec<Kind>, Vec<SConstraint>) =
            if name == "Object" {
                (vec!["o".into()], vec![Kind::Owner], Vec::new())
            } else {
                match self.table.class(name) {
                    Some(info) => (
                        info.formal_names.clone(),
                        info.formal_kinds.clone(),
                        info.constraints.clone(),
                    ),
                    None => {
                        self.err(format!("unknown class `{name}`"), span);
                        return false;
                    }
                }
            };
        if owners.len() != formal_names.len() {
            self.err(
                format!(
                    "class `{name}` expects {} owner argument(s), found {}",
                    formal_names.len(),
                    owners.len()
                ),
                span,
            );
            return false;
        }
        let s = Subst::from_formals(&formal_names, owners);
        let mut ok = true;
        let first = &owners[0];
        for (o, dk) in owners.iter().zip(&formal_kinds) {
            let declared = dk.subst(&s);
            match env.kind_of(o) {
                Some(k) if env.subkind(self.table, &k, &declared) => {}
                Some(k) => {
                    let notes = crate::kind::explain_subkind(self.table, &k, &declared);
                    self.err_with(
                        format!(
                            "owner `{o}` has kind `{k}`, which is not a subkind of `{declared}`"
                        ),
                        span,
                        notes,
                    );
                    ok = false;
                }
                None => {
                    self.err(format!("owner `{o}` has no kind here"), span);
                    ok = false;
                }
            }
            // Every owner in a legal type outlives the first owner.
            if !env.outlives(o, first) {
                let notes = env.explain_outlives(o, first);
                self.err_with(
                    format!(
                        "owner `{o}` must outlive the first owner `{first}` \
                         in type `{name}<...>`"
                    ),
                    span,
                    notes,
                );
                ok = false;
            }
        }
        for c in &constraints {
            let c = c.subst(&s);
            if !self.constraint_holds(env, &c) {
                let notes = Self::explain_constraint(env, &c);
                self.err_with(
                    format!(
                        "constraint `{} {} {}` of class `{name}` is not satisfied",
                        c.lhs, c.rel, c.rhs
                    ),
                    span,
                    notes,
                );
                ok = false;
            }
        }
        ok
    }

    /// `[USER DECLARED SHARED REGION]`: well-formedness of a (named) region
    /// kind used at a region-creation site.
    fn wf_kind(&mut self, env: &Env, k: &Kind, span: Span) -> bool {
        match k.without_lt() {
            Kind::Named { name, owners } => {
                let Some(info) = self.table.region_kind(name) else {
                    self.err(format!("unknown region kind `{name}`"), span);
                    return false;
                };
                if owners.len() != info.formal_names.len() {
                    self.err(
                        format!(
                            "region kind `{name}` expects {} owner argument(s), found {}",
                            info.formal_names.len(),
                            owners.len()
                        ),
                        span,
                    );
                    return false;
                }
                let s = Subst::from_formals(&info.formal_names, owners);
                let mut ok = true;
                for (o, dk) in owners.iter().zip(&info.formal_kinds) {
                    let declared = dk.subst(&s);
                    match env.kind_of(o) {
                        Some(ka) if env.subkind(self.table, &ka, &declared) => {}
                        Some(ka) => {
                            let notes = crate::kind::explain_subkind(self.table, &ka, &declared);
                            self.err_with(
                                format!(
                                    "owner `{o}` has kind `{ka}`, \
                                     which is not a subkind of `{declared}`"
                                ),
                                span,
                                notes,
                            );
                            ok = false;
                        }
                        None => {
                            self.err(format!("owner `{o}` has no kind here"), span);
                            ok = false;
                        }
                    }
                }
                for c in &info.constraints {
                    let c = c.subst(&s);
                    if !self.constraint_holds(env, &c) {
                        let notes = Self::explain_constraint(env, &c);
                        self.err_with(
                            format!(
                                "constraint `{} {} {}` of region kind `{name}` \
                                 is not satisfied",
                                c.lhs, c.rel, c.rhs
                            ),
                            span,
                            notes,
                        );
                        ok = false;
                    }
                }
                ok
            }
            Kind::SharedRegion => true,
            other => {
                self.err(format!("`{other}` is not a shared region kind"), span);
                false
            }
        }
    }

    fn constraint_holds(&self, env: &Env, c: &SConstraint) -> bool {
        match c.rel {
            ConstraintRel::Owns => env.owns(&c.lhs, &c.rhs),
            ConstraintRel::Outlives => env.outlives(&c.lhs, &c.rhs),
        }
    }

    fn assume_constraints(&mut self, env: &mut Env, cs: &[Constraint]) {
        for c in cs {
            let lhs = self.resolve_owner(env, &c.lhs, false);
            let rhs = self.resolve_owner(env, &c.rhs, false);
            if let (Some(lhs), Some(rhs)) = (lhs, rhs) {
                match c.rel {
                    ConstraintRel::Owns => env.add_owns(lhs, rhs),
                    ConstraintRel::Outlives => env.add_outlives(lhs, rhs),
                }
            }
        }
    }

    fn require_effect(&mut self, env: &Env, x: &Effects, o: &Owner, span: Span, what: &str) {
        if !env.effect_covered(x, o) {
            let notes = env.explain_effect_covered(x, o);
            self.err_with(
                format!(
                    "the permitted effects do not cover {what} `{o}`; \
                     add it (or an owner that outlives it) to the `accesses` clause"
                ),
                span,
                notes,
            );
        }
    }

    fn require_subtype(&mut self, sub: &SType, sup: &SType, span: Span, what: &str) {
        if !self.table.is_subtype(sub, sup) {
            self.err(format!("{what}: expected `{sup}`, found `{sub}`"), span);
        }
    }

    // ---------------------------------------------------------- declarations

    /// `[REGION KIND DEF]`: portal field and subregion types are checked in
    /// an environment where `this` denotes the region and every formal
    /// outlives it.
    pub(crate) fn check_region_kind(&mut self, rk: &RegionKindDecl) {
        let mut env = Env::base();
        let formal_owners: Vec<Owner> = rk
            .formals
            .iter()
            .map(|f| Owner::Formal(f.name.name))
            .collect();
        for f in &rk.formals {
            let k = resolve_kind(&f.kind, &|_| false);
            env.declare_owner(Owner::Formal(f.name.name), k);
        }
        self.assume_constraints(&mut env, &rk.where_clauses);
        env.set_this_region(
            Kind::Named {
                name: rk.name.name,
                owners: formal_owners.clone(),
            },
            &formal_owners,
        );
        if let Some(ext) = &rk.extends {
            let k = resolve_kind(ext, &|_| false);
            self.wf_kind(&env, &k, ext.span());
        }
        for f in &rk.portals {
            if let Some(t) = self.resolve_type(&env, &f.ty) {
                if !matches!(t, SType::Class { .. }) {
                    self.err(
                        format!(
                            "portal fields must have class type (they are the typed \
                             hand-off points between threads), found `{t}`"
                        ),
                        f.span,
                    );
                }
            }
        }
        for s in &rk.subregions {
            let k = resolve_kind(&s.kind, &|_| false);
            if matches!(k, Kind::Lt(_)) {
                self.err(
                    "subregion kinds take their LT/VT policy from the declaration, \
                     not an `: LT` refinement",
                    s.span,
                );
            }
            self.wf_kind(&env, &k, s.span);
        }
        self.absorb_env(&env);
    }

    /// The environment of `[CLASS DEF]`.
    fn class_env(&mut self, info: &ClassInfo) -> Env {
        let mut env = Env::base();
        for (name, kind) in info.formal_names.iter().zip(&info.formal_kinds) {
            env.declare_owner(Owner::Formal(*name), kind.clone());
        }
        self.assume_constraints(&mut env, &info.decl.where_clauses);
        let owners: Vec<Owner> = info
            .formal_names
            .iter()
            .map(|n| Owner::Formal(*n))
            .collect();
        env.set_this(info.decl.name.name, owners);
        env
    }

    pub(crate) fn check_class(&mut self, c: &mut ClassDecl) {
        let table = self.table;
        let Some(info) = table.class(c.name.name) else {
            return; // table construction already reported this
        };
        let env = self.class_env(info);
        if let Some(ext) = &c.extends {
            let owners: Vec<Owner> = ext
                .owners
                .iter()
                .filter_map(|o| self.resolve_owner(&env, o, false))
                .collect();
            if owners.len() == ext.owners.len() {
                self.wf_class_type(&env, ext.name.name, &owners, ext.span);
            }
        }
        for f in &c.fields {
            self.resolve_type(&env, &f.ty);
        }
        for m in &mut c.methods {
            self.check_method(info, &env, m);
        }
        self.absorb_env(&env);
    }

    /// `[METHOD]`.
    fn check_method(&mut self, info: &ClassInfo, class_env: &Env, m: &mut MethodDecl) {
        let mut env = class_env.clone();
        for f in &m.formals {
            let k = resolve_kind(&f.kind, &|_| false);
            env.declare_owner(Owner::Formal(f.name.name), k);
        }
        self.assume_constraints(&mut env, &m.where_clauses);
        env.declare_owner(Owner::InitialRegion, Kind::Region);
        env.add_handle(Owner::InitialRegion);
        let ret = self.resolve_type(&env, &m.ret).unwrap_or(SType::Void);
        for p in &m.params {
            match self.resolve_type(&env, &p.ty) {
                Some(t) => env.bind_var(p.name.name, t),
                None => env.bind_var(p.name.name, SType::Int),
            }
        }
        // Effects: explicit clause or the default (all class and method
        // owner parameters plus initialRegion).
        let mut x: Effects = Effects::new();
        match &m.effects {
            Some(list) => {
                for o in list {
                    if let Some(owner) = self.resolve_owner(&env, o, true) {
                        if owner != Owner::Rt && env.kind_of(&owner).is_none() {
                            self.err(format!("effect owner `{owner}` has no kind here"), o.span());
                        }
                        x.insert(owner);
                    }
                }
            }
            None => {
                for n in &info.formal_names {
                    x.insert(Owner::Formal(*n));
                }
                for f in &m.formals {
                    x.insert(Owner::Formal(f.name.name));
                }
                x.insert(Owner::InitialRegion);
            }
        }
        for s in &mut m.body.stmts {
            self.check_stmt(&mut env, &x, &Owner::InitialRegion, &ret, false, s);
        }
        if ret != SType::Void && !always_returns(&m.body) {
            self.err(
                format!(
                    "method `{}` must return a value of type `{ret}` on all paths",
                    m.name
                ),
                m.span,
            );
        }
        self.absorb_env(&env);
        self.methods_checked += 1;
    }

    /// `InheritanceOK` + `OverridesOK`.
    pub(crate) fn check_inheritance(&mut self, classes: &[ClassDecl]) {
        // Iterate in declaration order (not table-map order) so the
        // diagnostics this pass emits are deterministic run to run.
        for c in classes {
            let table = self.table;
            let Some(info) = table.class(c.name.name) else {
                continue;
            };
            let Some(ext) = &info.decl.extends else {
                continue;
            };
            if ext.name.name == "Object" {
                continue;
            }
            let env = self.class_env(info);
            let sup_args: Vec<Owner> = ext
                .owners
                .iter()
                .filter_map(|o| self.resolve_owner(&env, o, false))
                .collect();
            if sup_args.len() != ext.owners.len() {
                continue;
            }
            let Some(sup_info) = table.class(ext.name.name) else {
                continue;
            };
            // Superclass constraints must be implied by the subclass's.
            let s = Subst::from_formals(&sup_info.formal_names, &sup_args);
            for c in &sup_info.constraints {
                let c = c.subst(&s);
                if !self.constraint_holds(&env, &c) {
                    self.err(
                        format!(
                            "constraint `{} {} {}` of superclass `{}` is not implied \
                             by the constraints of `{}`",
                            c.lhs, c.rel, c.rhs, ext.name, info.decl.name
                        ),
                        ext.span,
                    );
                }
            }
            // Overriding methods.
            for m in &info.decl.methods {
                let Some(sup_sig) = self.table.method_sig(ext.name.name, &sup_args, m.name.name)
                else {
                    continue;
                };
                let my_sig = self
                    .table
                    .method_sig(
                        info.decl.name.name,
                        &info
                            .formal_names
                            .iter()
                            .map(|n| Owner::Formal(*n))
                            .collect::<Vec<_>>(),
                        m.name.name,
                    )
                    .expect("own method exists");
                if my_sig.formals.len() != sup_sig.formals.len()
                    || my_sig.params.len() != sup_sig.params.len()
                {
                    self.err(
                        format!(
                            "method `{}` overrides a superclass method with a \
                             different shape",
                            m.name
                        ),
                        m.span,
                    );
                    continue;
                }
                // Alpha-rename the super method's formals to ours.
                let mut alpha = Subst::new();
                for ((sn, _), (mn, _)) in sup_sig.formals.iter().zip(&my_sig.formals) {
                    alpha.push(*sn, Owner::Formal(*mn));
                }
                for ((_, mine), (_, sup)) in my_sig.params.iter().zip(&sup_sig.params) {
                    if *mine != sup.subst(&alpha) {
                        self.err(
                            format!(
                                "method `{}`: parameter types must match the \
                                 overridden method",
                                m.name
                            ),
                            m.span,
                        );
                    }
                }
                if my_sig.ret != sup_sig.ret.subst(&alpha) {
                    self.err(
                        format!(
                            "method `{}`: return type must match the overridden method",
                            m.name
                        ),
                        m.span,
                    );
                }
                // The overrider's effects must be included in the
                // overridden method's effects.
                let sup_fx: Effects = alpha.apply_all(&sup_sig.effects).into_iter().collect();
                let my_fx: Effects = my_sig.effects.iter().copied().collect();
                if !env.effects_subsume(&sup_fx, &my_fx) {
                    self.err(
                        format!(
                            "method `{}`: effects must be included among the \
                             overridden method's effects",
                            m.name
                        ),
                        m.span,
                    );
                }
            }
            self.absorb_env(&env);
        }
    }

    // ------------------------------------------------------------ statements

    #[allow(clippy::too_many_arguments)]
    fn check_block(
        &mut self,
        env: &mut Env,
        x: &Effects,
        rcr: &Owner,
        ret: &SType,
        in_region: bool,
        b: &mut Block,
    ) {
        // Scope marks replace whole-environment clones: the fact vectors
        // are append-only, so exiting the block truncates back.
        let m = env.mark();
        for s in &mut b.stmts {
            self.check_stmt(env, x, rcr, ret, in_region, s);
        }
        env.truncate_to(m);
    }

    pub(crate) fn check_stmt(
        &mut self,
        env: &mut Env,
        x: &Effects,
        rcr: &Owner,
        ret: &SType,
        in_region: bool,
        s: &mut Stmt,
    ) {
        match s {
            Stmt::Let {
                ty,
                name,
                init,
                span,
            } => {
                let t_init = self.check_expr(env, x, rcr, init);
                match ty {
                    Some(t) => {
                        if let Some(declared) = self.resolve_type(env, t) {
                            if let Some(ti) = t_init {
                                self.require_subtype(&ti, &declared, *span, "initializer");
                            }
                            env.bind_var(name.name, declared);
                        }
                    }
                    None => match t_init {
                        Some(SType::Null) => self.err(
                            format!(
                                "cannot infer a type for `{name}` from `null`; \
                                 annotate the declaration"
                            ),
                            *span,
                        ),
                        Some(SType::Void) | Some(SType::Str) => self.err(
                            format!("cannot bind `{name}` to a valueless expression"),
                            *span,
                        ),
                        Some(t) => {
                            *ty = t.to_surface();
                            env.bind_var(name.name, t);
                        }
                        None => {}
                    },
                }
            }
            Stmt::AssignLocal { name, value, span } => {
                let vt = self.check_expr(env, x, rcr, value);
                match env.lookup_var(name.name).cloned() {
                    Some(SType::Handle(_)) => {
                        self.err("region handles cannot be reassigned", *span);
                    }
                    Some(t) => {
                        if let Some(vt) = vt {
                            self.require_subtype(&vt, &t, *span, "assignment");
                        }
                    }
                    None => self.err(format!("unknown variable `{name}`"), *span),
                }
            }
            Stmt::AssignField {
                recv,
                field,
                value,
                span,
            } => {
                let ft = self.field_access(env, x, rcr, recv, field, *span);
                let vt = self.check_expr(env, x, rcr, value);
                if let (Some(ft), Some(vt)) = (ft, vt) {
                    self.require_subtype(&vt, &ft, *span, "field assignment");
                }
            }
            Stmt::Expr(e) => {
                self.check_expr(env, x, rcr, e);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                span,
            } => {
                if let Some(t) = self.check_expr(env, x, rcr, cond) {
                    if t != SType::Bool {
                        self.err(format!("`if` condition must be `bool`, found `{t}`"), *span);
                    }
                }
                self.check_block(env, x, rcr, ret, in_region, then_blk);
                if let Some(eb) = else_blk {
                    self.check_block(env, x, rcr, ret, in_region, eb);
                }
            }
            Stmt::While { cond, body, span } => {
                if let Some(t) = self.check_expr(env, x, rcr, cond) {
                    if t != SType::Bool {
                        self.err(
                            format!("`while` condition must be `bool`, found `{t}`"),
                            *span,
                        );
                    }
                }
                self.check_block(env, x, rcr, ret, in_region, body);
            }
            Stmt::Return { value, span } => {
                if in_region {
                    self.err(
                        "`return` inside a region block is not allowed \
                         (region lifetimes are lexically scoped)",
                        *span,
                    );
                }
                match (value, ret) {
                    (None, SType::Void) => {}
                    (None, _) => {
                        self.err(format!("expected a return value of type `{ret}`"), *span)
                    }
                    (Some(v), _) => {
                        if *ret == SType::Void {
                            self.err("`void` method cannot return a value", *span);
                            self.check_expr(env, x, rcr, v);
                        } else if let Some(vt) = self.check_expr(env, x, rcr, v) {
                            self.require_subtype(&vt, ret, *span, "return value");
                        }
                    }
                }
            }
            Stmt::LocalRegion {
                region,
                handle,
                body,
                span,
            } => {
                // [EXPR LOCALREGION] = [EXPR REGION] with LocalRegion : VT.
                self.enter_new_region(env, x, ret, region, handle, Kind::LocalRegion, body, *span);
            }
            Stmt::NewRegion {
                kind,
                policy,
                region,
                handle,
                body,
                span,
            } => {
                let is_region = |n: Symbol| env.is_region_name(n);
                let mut k = resolve_kind(kind, &is_region);
                // Validate owner args of the kind annotation.
                for o in kind_owner_refs(kind) {
                    self.resolve_owner(env, &o, false);
                }
                if !self.wf_kind(env, &k, *span) {
                    return;
                }
                if matches!(policy, Policy::Lt { .. }) {
                    k = k.with_lt();
                }
                self.enter_new_region(env, x, ret, region, handle, k, body, *span);
            }
            Stmt::EnterSubregion {
                kind,
                region,
                handle,
                fresh,
                parent,
                sub,
                body,
                span,
            } => {
                self.enter_subregion(
                    env, x, ret, kind, region, handle, *fresh, parent, sub, body, *span,
                );
            }
            Stmt::Fork { rt, call, span } => {
                self.check_fork(env, x, rcr, *rt, call, *span);
            }
        }
    }

    /// `[EXPR REGION]` / `[EXPR LOCALREGION]`: creates a top-level region.
    #[allow(clippy::too_many_arguments)]
    fn enter_new_region(
        &mut self,
        env: &mut Env,
        x: &Effects,
        ret: &SType,
        region: &Ident,
        handle: &Ident,
        kind: Kind,
        body: &mut Block,
        span: Span,
    ) {
        if env.is_declared_owner_name(region.name) {
            self.err(
                format!("region name `{region}` shadows an existing owner"),
                region.span,
            );
        }
        // Creating a region allocates memory: X ⊇ heap.
        self.require_effect(
            env,
            x,
            &Owner::Heap,
            span,
            "region creation (allocates from)",
        );
        let r = Owner::Region(region.name);
        let m = env.mark();
        // All existing regions outlive the new one.
        for re in env.regions() {
            env.add_outlives(re, r);
        }
        env.declare_owner(r, kind);
        env.bind_var(handle.name, SType::Handle(r));
        let mut x2 = x.clone();
        x2.insert(r);
        for s in &mut body.stmts {
            self.check_stmt(env, &x2, &r, ret, true, s);
        }
        env.truncate_to(m);
    }

    /// `[EXPR SUBREGION]`: enters (optionally recreating) a subregion.
    #[allow(clippy::too_many_arguments)]
    fn enter_subregion(
        &mut self,
        env: &mut Env,
        x: &Effects,
        ret: &SType,
        kind_ann: &KindAnn,
        region: &Ident,
        handle: &Ident,
        fresh: bool,
        parent: &Ident,
        sub: &Ident,
        body: &mut Block,
        span: Span,
    ) {
        let Some(parent_ty) = env.lookup_var(parent.name).cloned() else {
            self.err(format!("unknown variable `{parent}`"), parent.span);
            return;
        };
        let SType::Handle(r2) = parent_ty else {
            self.err(
                format!("`{parent}` must be a region handle to enter a subregion"),
                parent.span,
            );
            return;
        };
        let parent_kind = env.kind_of(&r2);
        let Some(Kind::Named {
            name: pk_name,
            owners: pk_owners,
        }) = parent_kind.as_ref().map(|k| k.without_lt().clone())
        else {
            self.err(
                format!(
                    "region `{r2}` has no user-declared region kind, \
                     so it has no subregions"
                ),
                parent.span,
            );
            return;
        };
        let Some(info) = self.table.subregion(pk_name, &pk_owners, sub.name) else {
            self.err(
                format!("region kind `{pk_name}` has no subregion `{sub}`"),
                sub.span,
            );
            return;
        };
        // Substitute the parent region for `this` in the subregion's kind.
        let k3 = info.kind.subst(&Subst::new().with_this(r2));
        // The declared kind annotation must match.
        let is_region = |n: Symbol| env.is_region_name(n);
        let declared = resolve_kind(kind_ann, &is_region);
        if declared.without_lt() != k3.without_lt() {
            self.err(
                format!("subregion `{sub}` has kind `{k3}`, but the block declares `{declared}`"),
                kind_ann.span(),
            );
        }
        // Effects preconditions.
        if fresh || info.policy == Policy::Vt || info.thread == ThreadTag::NoRt {
            self.require_effect(
                env,
                x,
                &Owner::Heap,
                span,
                "entering this subregion (requires the heap effect because it may allocate \
                 or synchronize with regular threads)",
            );
        }
        if info.thread == ThreadTag::Rt && !x.contains(&Owner::Rt) {
            self.err(
                "entering an RT subregion requires the `RT` effect in the \
                 method's `accesses` clause",
                span,
            );
        }
        if env.is_declared_owner_name(region.name) {
            self.err(
                format!("region name `{region}` shadows an existing owner"),
                region.span,
            );
        }
        let r = Owner::Region(region.name);
        let kr = if matches!(info.policy, Policy::Lt { .. }) {
            k3.with_lt()
        } else {
            k3
        };
        let m = env.mark();
        env.declare_owner(r, kr);
        env.add_outlives(r2, r);
        env.bind_var(handle.name, SType::Handle(r));
        let mut x2 = x.clone();
        x2.insert(r);
        for s in &mut body.stmts {
            self.check_stmt(env, &x2, &r, ret, true, s);
        }
        env.truncate_to(m);
    }

    /// `[EXPR FORK]` / `[EXPR RTFORK]`.
    fn check_fork(
        &mut self,
        env: &Env,
        x: &Effects,
        rcr: &Owner,
        rt: bool,
        call: &mut Expr,
        span: Span,
    ) {
        let x_callee: Effects = if rt {
            // X' = owners of X living in SharedRegion:LT regions, plus RT.
            let mut x2: Effects = x
                .iter()
                .filter(|o| {
                    env.rkind_of(self.table, o)
                        .is_some_and(|k| env.subkind(self.table, &k, &Kind::SharedRegion.with_lt()))
                })
                .copied()
                .collect();
            x2.insert(Owner::Rt);
            x2
        } else {
            let mut x2 = x.clone();
            x2.remove(&Owner::Rt);
            x2
        };
        let Some(call_info) = self.check_call_expr(env, &x_callee, rcr, call) else {
            return;
        };
        let table = self.table;
        let non_local = |env: &Env, k: &Kind| {
            env.subkind(table, k, &Kind::SharedRegion) || env.subkind(table, k, &Kind::GcRegion)
        };
        let bound_name = if rt {
            "SharedRegion"
        } else {
            "SharedRegion or GCRegion"
        };
        // The current region must be shared (RT fork) or shared/heap (fork).
        match env.rkind_of(self.table, rcr) {
            Some(k) if rt && env.subkind(self.table, &k, &Kind::SharedRegion) => {}
            Some(k) if !rt && non_local(env, &k) => {}
            Some(k) => self.err(
                format!(
                    "cannot fork here: the current region `{rcr}` has kind `{k}`, \
                     which is not a subkind of {bound_name}"
                ),
                span,
            ),
            None => self.err(
                format!("cannot fork here: the kind of the current region `{rcr}` is unknown"),
                span,
            ),
        }
        // A real-time thread must not allocate in VT regions: every effect
        // of the spawned method must live in an LT shared region. (Effect
        // *subsumption* alone is not enough — `immortal` outlives every
        // region and would cover a VT-region effect.)
        if rt {
            for fx in &call_info.callee_effects {
                if *fx == Owner::Rt {
                    continue;
                }
                match env.rkind_of(self.table, fx) {
                    Some(k) if env.subkind(self.table, &k, &Kind::SharedRegion.with_lt()) => {}
                    Some(k) => self.err(
                        format!(
                            "a real-time thread would access `{fx}`, which lives in a \
                             region of kind `{k}`; real-time threads may only touch \
                             preallocated (LT) shared regions"
                        ),
                        span,
                    ),
                    None => self.err(
                        format!(
                            "a real-time thread would access `{fx}`, whose region \
                             kind is unknown"
                        ),
                        span,
                    ),
                }
            }
        }
        // Every owner visible to the new thread must live in a shared
        // region (or the heap, for regular forks).
        for o in call_info.recv_owners.iter().chain(&call_info.owner_args) {
            match env.rkind_of(self.table, o) {
                Some(k) if rt && env.subkind(self.table, &k, &Kind::SharedRegion) => {}
                Some(k) if !rt && non_local(env, &k) => {}
                Some(k) => self.err(
                    format!(
                        "cannot pass owner `{o}` to a forked thread: it lives in a \
                         region of kind `{k}`, which is not a subkind of {bound_name}"
                    ),
                    span,
                ),
                None => self.err(
                    format!(
                        "cannot pass owner `{o}` to a forked thread: the kind of the \
                         region it lives in is unknown"
                    ),
                    span,
                ),
            }
        }
    }

    // ----------------------------------------------------------- expressions

    fn check_expr(&mut self, env: &Env, x: &Effects, rcr: &Owner, e: &mut Expr) -> Option<SType> {
        match e {
            Expr::Int(..) => Some(SType::Int),
            Expr::Bool(..) => Some(SType::Bool),
            Expr::Str(..) => Some(SType::Str),
            Expr::Null(_) => Some(SType::Null),
            Expr::This(span) => match env.this_type() {
                Some((name, owners)) => Some(SType::Class {
                    name,
                    owners: owners.to_vec(),
                }),
                None => {
                    self.err("`this` is not available here", *span);
                    None
                }
            },
            Expr::Var(id) => match env.lookup_var(id.name) {
                Some(t) => Some(t.clone()),
                None => {
                    self.err(format!("unknown variable `{id}`"), id.span);
                    None
                }
            },
            Expr::Unary { op, expr, span } => {
                let t = self.check_expr(env, x, rcr, expr)?;
                let (want, out) = match op {
                    UnOp::Neg => (SType::Int, SType::Int),
                    UnOp::Not => (SType::Bool, SType::Bool),
                };
                if t != want {
                    self.err(
                        format!("operand of `{op:?}` must be `{want}`, found `{t}`"),
                        *span,
                    );
                }
                Some(out)
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let lt = self.check_expr(env, x, rcr, lhs);
                let rt = self.check_expr(env, x, rcr, rhs);
                let (lt, rt) = (lt?, rt?);
                use BinOp::*;
                match op {
                    Add | Sub | Mul | Div | Rem => {
                        if lt != SType::Int || rt != SType::Int {
                            self.err(
                                format!("arithmetic `{op}` requires `int` operands, found `{lt}` and `{rt}`"),
                                *span,
                            );
                        }
                        Some(SType::Int)
                    }
                    Lt | Le | Gt | Ge => {
                        if lt != SType::Int || rt != SType::Int {
                            self.err(
                                format!("comparison `{op}` requires `int` operands, found `{lt}` and `{rt}`"),
                                *span,
                            );
                        }
                        Some(SType::Bool)
                    }
                    Eq | Ne => {
                        let ok = (lt == SType::Int && rt == SType::Int)
                            || (lt == SType::Bool && rt == SType::Bool)
                            || (lt.is_reference() && rt.is_reference());
                        if !ok {
                            self.err(format!("cannot compare `{lt}` with `{rt}`"), *span);
                        }
                        Some(SType::Bool)
                    }
                    And | Or => {
                        if lt != SType::Bool || rt != SType::Bool {
                            self.err(
                                format!("logical `{op}` requires `bool` operands, found `{lt}` and `{rt}`"),
                                *span,
                            );
                        }
                        Some(SType::Bool)
                    }
                }
            }
            Expr::Field { recv, field, span } => {
                let field = *field;
                let span = *span;
                self.field_access(env, x, rcr, recv, &field, span)
            }
            Expr::Call { .. } => self.check_call_expr(env, x, rcr, e).map(|i| i.ret),
            Expr::New { class, span } => {
                // Default completion for `new C` with no owner arguments:
                // allocate in the current region.
                if class.owners.is_empty() {
                    let n = if class.name.name == "Object" {
                        1
                    } else {
                        self.table
                            .class(class.name.name)
                            .map(|i| i.formal_names.len())
                            .unwrap_or(0)
                    };
                    class.owners = vec![rcr.to_ref(); n];
                }
                let mut owners = Vec::with_capacity(class.owners.len());
                for o in &class.owners {
                    owners.push(self.resolve_owner(env, o, false)?);
                }
                if !self.wf_class_type(env, class.name.name, &owners, *span) {
                    return None;
                }
                let first = owners.first().copied()?;
                // Allocating an object accesses its owner.
                self.require_effect(env, x, &first, *span, "allocation owned by");
                // The handle of the target region must be obtainable.
                if !env.handle_available(&first) {
                    self.err(
                        format!(
                            "no region handle is available for owner `{first}`; \
                             pass an `RHandle` argument or allocate through `this`"
                        ),
                        *span,
                    );
                }
                Some(SType::Class {
                    name: class.name.name,
                    owners,
                })
            }
            Expr::IntrinsicCall {
                intrinsic,
                args,
                span,
            } => {
                let tys: Vec<Option<SType>> = args
                    .iter_mut()
                    .map(|a| self.check_expr(env, x, rcr, a))
                    .collect();
                match intrinsic {
                    Intrinsic::Print => {
                        if args.len() != 1 {
                            self.err("`print` takes exactly one argument", *span);
                        } else if let Some(Some(SType::Void)) = tys.first() {
                            self.err("cannot print a `void` value", *span);
                        }
                        Some(SType::Void)
                    }
                    Intrinsic::Io | Intrinsic::Workload => {
                        if args.len() != 1 || !matches!(tys.first(), Some(Some(SType::Int))) {
                            self.err(
                                format!("`{}` takes exactly one `int` argument", intrinsic.name()),
                                *span,
                            );
                        }
                        Some(SType::Void)
                    }
                    Intrinsic::Yield => {
                        if !args.is_empty() {
                            self.err("`yield` takes no arguments", *span);
                        }
                        Some(SType::Void)
                    }
                }
            }
        }
    }

    /// `[EXPR REF READ]` / `[EXPR REF WRITE]` /
    /// `[EXPR GET/SET REGION FIELD]`: resolves a field access (object field
    /// or portal field) and returns the field's type as seen here. The
    /// effects check (`X` must cover the owner of the referenced object)
    /// applies to both reads and writes.
    fn field_access(
        &mut self,
        env: &Env,
        x: &Effects,
        rcr: &Owner,
        recv: &mut Expr,
        field: &Ident,
        span: Span,
    ) -> Option<SType> {
        let recv_is_this = matches!(recv, Expr::This(_));
        let t_recv = self.check_expr(env, x, rcr, recv)?;
        let ft = match &t_recv {
            SType::Handle(r) => {
                // Portal field.
                let k = env.kind_of(r)?;
                let Kind::Named {
                    name: kn,
                    owners: ko,
                } = k.without_lt().clone()
                else {
                    self.err(
                        format!("region `{r}` has no user-declared kind, so no portal fields"),
                        span,
                    );
                    return None;
                };
                let Some(pt) = self.table.portal_type(kn, &ko, field.name) else {
                    self.err(
                        format!("region kind `{kn}` has no portal field `{field}`"),
                        field.span,
                    );
                    return None;
                };
                // `this` in a portal type denotes the region itself.
                pt.subst(&Subst::new().with_this(*r))
            }
            SType::Class { name, owners } => {
                let Some(ft) = self.table.field_type(*name, owners, field.name) else {
                    self.err(format!("class `{name}` has no field `{field}`"), field.span);
                    return None;
                };
                // Fields whose declared type mentions `this` can only be
                // accessed through `this` (otherwise the owner would be
                // captured by the wrong object).
                if !recv_is_this
                    && self
                        .table
                        .field_declared_mentions_this(*name, field.name)
                        .unwrap_or(false)
                {
                    self.err(
                        format!(
                            "field `{field}` is owned by its object (its type mentions \
                             `this`) and can only be accessed through `this`"
                        ),
                        span,
                    );
                    return None;
                }
                ft
            }
            SType::Null => {
                self.err("cannot access a field of `null`", span);
                return None;
            }
            other => {
                self.err(format!("type `{other}` has no fields"), span);
                return None;
            }
        };
        if let Some(owner) = ft.first_owner() {
            self.require_effect(env, x, owner, span, "the referenced object's owner");
        }
        Some(ft)
    }

    /// `[EXPR INVOKE]`, shared by plain calls and forks. Also elaborates
    /// inferred owner arguments into the AST.
    fn check_call_expr(
        &mut self,
        env: &Env,
        x: &Effects,
        rcr: &Owner,
        e: &mut Expr,
    ) -> Option<CallInfo> {
        let Expr::Call {
            recv,
            method,
            owner_args,
            args,
            span,
        } = e
        else {
            self.err("`fork` must be applied to a method invocation", e.span());
            return None;
        };
        let span = *span;
        let recv_is_this = matches!(**recv, Expr::This(_));
        let t_recv = self.check_expr(env, x, rcr, recv)?;
        let SType::Class {
            name: cn,
            owners: recv_owners,
        } = t_recv
        else {
            self.err(format!("type `{t_recv}` has no methods"), span);
            return None;
        };
        let Some(sig) = self.table.method_sig(cn, &recv_owners, method.name) else {
            self.err(
                format!("class `{cn}` has no method `{method}`"),
                method.span,
            );
            return None;
        };
        if sig.declared_mentions_this && !recv_is_this {
            self.err(
                format!(
                    "method `{method}`'s signature mentions `this` and can only be \
                     invoked on `this`"
                ),
                span,
            );
            return None;
        }
        // Argument types first (also needed for owner-argument inference).
        let mut arg_tys = Vec::with_capacity(args.len());
        for a in args.iter_mut() {
            arg_tys.push(self.check_expr(env, x, rcr, a)?);
        }
        if args.len() != sig.params.len() {
            self.err(
                format!(
                    "method `{method}` expects {} argument(s), found {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            );
            return None;
        }
        // Owner arguments: explicit, or inferred by unification.
        let oargs: Vec<Owner> = if owner_args.is_empty() && !sig.formals.is_empty() {
            match infer::infer_call_owner_args(self.table, &sig, &arg_tys, rcr) {
                Ok(inferred) => {
                    *owner_args = inferred.iter().map(Owner::to_ref).collect();
                    inferred
                }
                Err(msg) => {
                    self.err(msg, span);
                    return None;
                }
            }
        } else {
            if owner_args.len() != sig.formals.len() {
                self.err(
                    format!(
                        "method `{method}` expects {} owner argument(s), found {}",
                        sig.formals.len(),
                        owner_args.len()
                    ),
                    span,
                );
                return None;
            }
            let mut out = Vec::with_capacity(owner_args.len());
            for o in owner_args.iter() {
                out.push(self.resolve_owner(env, o, false)?);
            }
            out
        };
        // Rename(·) = [owner args / method formals][rcr / initialRegion].
        let mut rename = Subst::new().with_initial(*rcr);
        for ((fname, _), o) in sig.formals.iter().zip(&oargs) {
            rename.push(*fname, *o);
        }
        // Kinds of the owner arguments.
        for ((fname, fkind), o) in sig.formals.iter().zip(&oargs) {
            let declared = fkind.subst(&rename);
            match env.kind_of(o) {
                Some(k) if env.subkind(self.table, &k, &declared) => {}
                Some(k) => {
                    let notes = crate::kind::explain_subkind(self.table, &k, &declared);
                    self.err_with(
                        format!(
                            "owner argument `{o}` for `{fname}` has kind `{k}`, \
                             which is not a subkind of `{declared}`"
                        ),
                        span,
                        notes,
                    )
                }
                None => self.err(format!("owner `{o}` has no kind here"), span),
            }
            // A formal instantiated with an *object* must own the receiver's
            // owner (Section 2.1); regions are unconstrained.
            let is_region = env.kind_of(o).map(|k| k.is_region_kind()).unwrap_or(false);
            if !is_region {
                if let Some(first) = recv_owners.first() {
                    if !env.owns(o, first) {
                        let notes = env.explain_owns(o, first);
                        self.err_with(
                            format!(
                                "object owner argument `{o}` must (transitively) own \
                                 the receiver's owner `{first}`"
                            ),
                            span,
                            notes,
                        );
                    }
                }
            }
        }
        // Method constraints.
        for c in &sig.constraints {
            let c = c.subst(&rename);
            if !self.constraint_holds(env, &c) {
                let notes = Self::explain_constraint(env, &c);
                self.err_with(
                    format!(
                        "method constraint `{} {} {}` is not satisfied at this call",
                        c.lhs, c.rel, c.rhs
                    ),
                    span,
                    notes,
                );
            }
        }
        // Value arguments.
        for ((_, pt), (a, at)) in sig.params.iter().zip(args.iter().zip(&arg_tys)) {
            let want = pt.subst(&rename);
            self.require_subtype(at, &want, a.span(), "argument");
        }
        // Effects: X must subsume the callee's renamed effects.
        for fx in &sig.effects {
            let fx = rename.apply(fx);
            if fx == Owner::Rt {
                if !x.contains(&Owner::Rt) {
                    self.err(
                        format!(
                            "method `{method}` has the `RT` effect, which the caller \
                             does not have"
                        ),
                        span,
                    );
                }
            } else {
                self.require_effect(env, x, &fx, span, "the callee effect");
            }
        }
        let callee_effects = sig.effects.iter().map(|fx| rename.apply(fx)).collect();
        Some(CallInfo {
            ret: sig.ret.subst(&rename),
            recv_owners,
            owner_args: oargs,
            callee_effects,
        })
    }
}

struct CallInfo {
    ret: SType,
    recv_owners: Vec<Owner>,
    owner_args: Vec<Owner>,
    /// The callee's effects, renamed to the caller's context.
    callee_effects: Vec<Owner>,
}

/// Collects the surface owner references inside a kind annotation (for
/// scope validation).
fn kind_owner_refs(k: &KindAnn) -> Vec<OwnerRef> {
    match k {
        KindAnn::Named { owners, .. } => owners.clone(),
        KindAnn::Lt(inner, _) => kind_owner_refs(inner),
        _ => Vec::new(),
    }
}

/// Conservative "all paths return" analysis. Region blocks do not count:
/// `return` is disallowed inside them.
fn always_returns(b: &Block) -> bool {
    b.stmts.iter().any(stmt_returns)
}

fn stmt_returns(s: &Stmt) -> bool {
    match s {
        Stmt::Return { .. } => true,
        Stmt::If {
            then_blk,
            else_blk: Some(eb),
            ..
        } => always_returns(then_blk) && always_returns(eb),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_lang::parser::parse_program;

    fn check(src: &str) -> Result<Checked, Vec<TypeError>> {
        check_program(&parse_program(src).unwrap())
    }

    fn assert_err_containing(src: &str, needle: &str) {
        match check(src) {
            Ok(_) => panic!("expected a type error containing {needle:?}"),
            Err(errs) => {
                assert!(
                    errs.iter().any(|e| e.message.contains(needle)),
                    "no error contains {needle:?}; got: {:#?}",
                    errs.iter().map(|e| &e.message).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn minimal_program_checks() {
        check("{ let x = 1 + 2; print(x); }").unwrap();
    }

    #[test]
    fn region_nesting_and_outlives() {
        // Figure 5's legality matrix: s1, s2, s3 legal; s6 illegal.
        let ok = r#"
            class TStack<Owner stackOwner, Owner TOwner> { int n; }
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let TStack<r2, r2> s1 = new TStack<r2, r2>;
                        let TStack<r2, r1> s2 = new TStack<r2, r1>;
                        let TStack<r1, immortal> s3 = new TStack<r1, immortal>;
                        let TStack<heap, immortal> s4 = new TStack<heap, immortal>;
                        let TStack<immortal, heap> s5 = new TStack<immortal, heap>;
                    }
                }
            }
        "#;
        check(ok).unwrap();
        assert_err_containing(
            r#"
            class TStack<Owner stackOwner, Owner TOwner> { int n; }
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let TStack<r1, r2> s6 = new TStack<r1, r2>;
                    }
                }
            }
            "#,
            "must outlive the first owner",
        );
    }

    #[test]
    fn dangling_field_write_rejected() {
        // Storing an inner-region object into an outer-region object's field
        // would create a dangling reference.
        assert_err_containing(
            r#"
            class Box<Owner o, Owner p> { Cell<p> c; }
            class Cell<Owner o> { int v; }
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let Box<r1, r2> b = new Box<r1, r2>;
                    }
                }
            }
            "#,
            "must outlive the first owner",
        );
    }

    #[test]
    fn effects_are_enforced() {
        assert_err_containing(
            r#"
            class C<Owner o> {
                void leakyAlloc(RHandle<heap> hh) accesses o {
                    let Object<heap> x = new Object<heap>;
                }
            }
            { }
            "#,
            "do not cover",
        );
    }

    #[test]
    fn handle_required_for_allocation() {
        assert_err_containing(
            r#"
            class C<Owner o> {
                void alloc<Region q>() accesses q {
                    let Object<q> x = new Object<q>;
                }
            }
            { }
            "#,
            "no region handle",
        );
        // With the handle passed, it checks.
        check(
            r#"
            class C<Owner o> {
                void alloc<Region q>(RHandle<q> h) accesses q {
                    let Object<q> x = new Object<q>;
                }
            }
            { }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn this_owned_fields_are_encapsulated() {
        assert_err_containing(
            r#"
            class Stack<Owner o> {
                Node<this> head;
            }
            class Node<Owner o> { int v; }
            {
                (RHandle<r> h) {
                    let Stack<r> s = new Stack<r>;
                    let x = s.head;
                }
            }
            "#,
            "can only be accessed through `this`",
        );
    }

    #[test]
    fn let_type_inference_elaborates() {
        let checked = check(
            r#"
            class Cell<Owner o> { int v; }
            {
                (RHandle<r> h) {
                    let c = new Cell<r>;
                    c.v = 3;
                }
            }
            "#,
        )
        .unwrap();
        // The `let` should now carry an explicit type.
        let Stmt::LocalRegion { body, .. } = &checked.program.main.stmts[0] else {
            panic!("expected region");
        };
        let Stmt::Let { ty, .. } = &body.stmts[0] else {
            panic!("expected let");
        };
        assert!(ty.is_some(), "inferred type written back");
    }

    #[test]
    fn return_inside_region_rejected() {
        assert_err_containing(
            r#"
            class C<Owner o> {
                int m() accesses heap {
                    (RHandle<r> h) {
                        return 1;
                    }
                    return 2;
                }
            }
            { }
            "#,
            "region block",
        );
    }

    #[test]
    fn missing_return_rejected() {
        assert_err_containing(
            r#"
            class C<Owner o> {
                int m(bool b) {
                    if (b) { return 1; }
                }
            }
            { }
            "#,
            "on all paths",
        );
    }

    #[test]
    fn region_creation_requires_heap_effect() {
        assert_err_containing(
            r#"
            class C<Owner o> {
                void m() accesses o {
                    (RHandle<r> h) { }
                }
            }
            { }
            "#,
            "do not cover",
        );
        check(
            r#"
            class C<Owner o> {
                void m() accesses o, heap {
                    (RHandle<r> h) { }
                }
            }
            { }
            "#,
        )
        .unwrap();
    }

    #[test]
    fn null_inference_requires_annotation() {
        assert_err_containing("{ let x = null; }", "annotate");
    }

    #[test]
    fn condition_must_be_bool() {
        assert_err_containing("{ if (1) { } }", "must be `bool`");
        assert_err_containing("{ while (0) { } }", "must be `bool`");
    }
}
