//! Typing environments and the deduction engine.
//!
//! An [`Env`] carries variable typings, owner-kind declarations, the
//! ownership facts `o1 ≽ₒ o2` (o1 transitively owns o2), the outlives
//! facts `o1 ≽ o2`, region-handle availability, and the type of `this`.
//! Queries close the fact base under the paper's derivation rules:
//!
//! * `≽ₒ` and `≽` are reflexive and transitive, and `≽ₒ ⊆ ≽`;
//! * `heap` and `immortal` outlive every region (property R1);
//! * the first owner of `this`'s type owns `this`;
//! * handle availability (`av RH`) propagates along `≽ₒ` in both
//!   directions (owner and owned live in the same region);
//! * `RKind(o)` finds the kind of the region `o` is (or is allocated in)
//!   by walking up the ownership relation.

use crate::kind::{is_subkind, Kind, RegionKindLookup};
use crate::owner::Owner;
use crate::stype::SType;
use rtj_lang::intern::Symbol;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

/// The set of permitted effects `X` (owners, possibly including `RT`).
///
/// A `BTreeSet` keyed on content-ordered owners, so iteration (and thus
/// diagnostic emission order) is deterministic across runs and drivers.
pub type Effects = BTreeSet<Owner>;

/// Cache counters for one memoized judgment family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FamilyCounters {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries that ran the underlying deduction.
    pub misses: u64,
}

impl FamilyCounters {
    /// Total queries (hits + misses).
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Folds another family's counters into this one.
    pub fn absorb(&mut self, other: FamilyCounters) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Per-judgment-family cache counters, broken out so `--stats` and the
/// checker profile can attribute deduction work to the paper's individual
/// judgments instead of one summed pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JudgmentCounters {
    /// The ownership judgment `o1 ≽ₒ o2`.
    pub ownership: FamilyCounters,
    /// The outlives judgment `o1 ≽ o2`.
    pub outlives: FamilyCounters,
    /// The subkinding judgment `k1 ≤ₖ k2`.
    pub subkind: FamilyCounters,
    /// The region-kind judgment `RKind(o) = k`.
    pub rkind: FamilyCounters,
    /// Handle availability `av RH(o)`.
    pub handle: FamilyCounters,
}

impl JudgmentCounters {
    /// Stable family names, in rendering order, paired with an accessor.
    /// Used by snapshot serialization so the JSON field order never
    /// depends on insertion order.
    pub fn families(&self) -> [(&'static str, FamilyCounters); 5] {
        [
            ("ownership", self.ownership),
            ("outlives", self.outlives),
            ("subkind", self.subkind),
            ("rkind", self.rkind),
            ("handle", self.handle),
        ]
    }

    /// Total cache hits summed across families.
    pub fn hits(&self) -> u64 {
        self.families().iter().map(|(_, f)| f.hits).sum()
    }

    /// Total cache misses summed across families.
    pub fn misses(&self) -> u64 {
        self.families().iter().map(|(_, f)| f.misses).sum()
    }

    /// Folds another set of counters into this one, family by family.
    pub fn absorb(&mut self, other: &JudgmentCounters) {
        self.ownership.absorb(other.ownership);
        self.outlives.absorb(other.outlives);
        self.subkind.absorb(other.subkind);
        self.rkind.absorb(other.rkind);
        self.handle.absorb(other.handle);
    }
}

/// Memoized results of the transitive judgments, keyed on interned
/// owner pairs. The cache belongs to one fact base: any mutation of the
/// environment's facts clears it (facts only ever grow within a scope,
/// and scope exits truncate, so "cleared on mutation" is exactly the
/// invalidation the append-only representation needs). The subkinding
/// memo is the exception: it depends only on the program's region-kind
/// hierarchy, which is immutable for the whole run, so it survives fact
/// mutations.
#[derive(Debug, Clone, Default)]
struct QueryCache {
    owns: HashMap<(Owner, Owner), bool>,
    outlives: HashMap<(Owner, Owner), bool>,
    rkind: HashMap<Owner, Option<Kind>>,
    subkind: HashMap<(Kind, Kind), bool>,
    /// The full handle-availability fixpoint, computed once per fact base.
    handle_avail: Option<HashSet<Owner>>,
    counters: JudgmentCounters,
}

/// A saved scope position: lengths of the append-only fact vectors.
/// Restoring a mark truncates back to it, replacing whole-environment
/// clones for block scoping.
#[derive(Debug, Clone, Copy)]
pub struct ScopeMark {
    vars: usize,
    owner_kinds: usize,
    owns: usize,
    outlives: usize,
    handles: usize,
}

/// A typing environment.
#[derive(Debug, Default)]
pub struct Env {
    vars: Vec<(Symbol, SType)>,
    owner_kinds: Vec<(Owner, Kind)>,
    owns_facts: Vec<(Owner, Owner)>,
    outlives_facts: Vec<(Owner, Owner)>,
    /// Regions whose handles are available through in-scope handle values.
    handle_regions: Vec<Owner>,
    this_type: Option<(Symbol, Vec<Owner>)>,
    /// The kind of the owner `this`: `ObjOwner` inside class methods,
    /// the region kind itself inside `regionKind` declarations.
    this_kind: Option<Kind>,
    cache: RefCell<QueryCache>,
}

impl Clone for Env {
    /// Clones keep the (still-valid) memoized judgments but reset the
    /// hit/miss counters, so each environment's counters can be summed
    /// into run-wide stats without double counting.
    fn clone(&self) -> Env {
        let mut cache = self.cache.borrow().clone();
        cache.counters = JudgmentCounters::default();
        Env {
            vars: self.vars.clone(),
            owner_kinds: self.owner_kinds.clone(),
            owns_facts: self.owns_facts.clone(),
            outlives_facts: self.outlives_facts.clone(),
            handle_regions: self.handle_regions.clone(),
            this_type: self.this_type.clone(),
            this_kind: self.this_kind.clone(),
            cache: RefCell::new(cache),
        }
    }
}

impl Env {
    /// The base environment of `[PROG]`: `heap : GCRegion`,
    /// `immortal : SharedRegion : LT`, with both handles available.
    pub fn base() -> Env {
        let mut e = Env::default();
        e.owner_kinds.push((Owner::Heap, Kind::GcRegion));
        e.owner_kinds
            .push((Owner::Immortal, Kind::SharedRegion.with_lt()));
        e.handle_regions.push(Owner::Heap);
        e.handle_regions.push(Owner::Immortal);
        e
    }

    /// Drops memoized judgment results; called whenever the fact base
    /// changes shape. Hit/miss counters survive so stats cover the whole
    /// checking run, and the subkinding memo survives because it depends
    /// only on the (immutable) region-kind hierarchy, not on env facts.
    fn invalidate_cache(&self) {
        let mut c = self.cache.borrow_mut();
        c.owns.clear();
        c.outlives.clear();
        c.rkind.clear();
        c.handle_avail = None;
    }

    /// Judgment-cache counters `(hits, misses)` summed over every family,
    /// accumulated by this environment since it was created (cloning
    /// resets the clone's counters, so per-environment totals can be
    /// summed). See [`Env::judgment_counters`] for the per-family split.
    pub fn cache_counters(&self) -> (u64, u64) {
        let c = self.cache.borrow().counters;
        (c.hits(), c.misses())
    }

    /// Judgment-cache counters broken out per judgment family.
    pub fn judgment_counters(&self) -> JudgmentCounters {
        self.cache.borrow().counters
    }

    // ---------------------------------------------------------------- scoping

    /// Saves the current extent of the append-only fact vectors.
    pub fn mark(&self) -> ScopeMark {
        ScopeMark {
            vars: self.vars.len(),
            owner_kinds: self.owner_kinds.len(),
            owns: self.owns_facts.len(),
            outlives: self.outlives_facts.len(),
            handles: self.handle_regions.len(),
        }
    }

    /// Rolls the environment back to a previously saved [`ScopeMark`],
    /// discarding every binding and fact added since. Replaces the old
    /// whole-`Env` clone per checked block.
    pub fn truncate_to(&mut self, m: ScopeMark) {
        let facts_changed = self.owner_kinds.len() != m.owner_kinds
            || self.owns_facts.len() != m.owns
            || self.outlives_facts.len() != m.outlives
            || self.handle_regions.len() != m.handles;
        self.vars.truncate(m.vars);
        self.owner_kinds.truncate(m.owner_kinds);
        self.owns_facts.truncate(m.owns);
        self.outlives_facts.truncate(m.outlives);
        self.handle_regions.truncate(m.handles);
        if facts_changed {
            self.invalidate_cache();
        }
    }

    // ------------------------------------------------------------- variables

    /// Binds a variable (later bindings shadow earlier ones).
    pub fn bind_var(&mut self, name: impl Into<Symbol>, ty: SType) {
        let name = name.into();
        if let SType::Handle(r) = &ty {
            self.handle_regions.push(*r);
            self.invalidate_cache();
        }
        self.vars.push((name, ty));
    }

    /// Looks up a variable.
    pub fn lookup_var(&self, name: impl Into<Symbol>) -> Option<&SType> {
        let sym = name.into();
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| *n == sym)
            .map(|(_, t)| t)
    }

    // ---------------------------------------------------------------- owners

    /// Declares an owner with its kind.
    pub fn declare_owner(&mut self, o: Owner, k: Kind) {
        self.owner_kinds.push((o, k));
        self.invalidate_cache();
    }

    /// Whether `name` is an in-scope region name.
    pub fn is_region_name(&self, name: impl Into<Symbol>) -> bool {
        let sym = name.into();
        self.owner_kinds
            .iter()
            .any(|(o, _)| matches!(o, Owner::Region(n) if *n == sym))
    }

    /// Whether `name` is a declared owner (formal or region).
    pub fn is_declared_owner_name(&self, name: impl Into<Symbol>) -> bool {
        self.is_declared_owner(name.into())
    }

    /// [`Self::is_declared_owner_name`] for an already-interned name.
    pub fn is_declared_owner(&self, sym: Symbol) -> bool {
        self.owner_kinds.iter().any(|(o, _)| match o {
            Owner::Region(n) | Owner::Formal(n) => *n == sym,
            _ => false,
        })
    }

    /// The declared kind of an owner (`E ⊢ₖ o : k`). `this` has kind
    /// `ObjOwner` when a `this` type is in scope.
    pub fn kind_of(&self, o: &Owner) -> Option<Kind> {
        match o {
            Owner::This => self.this_kind.clone(),
            Owner::Rt => None,
            _ => self
                .owner_kinds
                .iter()
                .rev()
                .find(|(d, _)| d == o)
                .map(|(_, k)| k.clone()),
        }
    }

    /// All in-scope owners of region kind (`Regions(E)`), including `heap`
    /// and `immortal`.
    pub fn regions(&self) -> Vec<Owner> {
        self.owner_kinds
            .iter()
            .filter(|(_, k)| k.is_region_kind())
            .map(|(o, _)| *o)
            .collect()
    }

    /// Sets the type of `this` to `cn<owners>`, recording that the first
    /// owner owns `this` and that every owner outlives the first.
    pub fn set_this(&mut self, class: impl Into<Symbol>, owners: Vec<Owner>) {
        if let Some(first) = owners.first() {
            self.owns_facts.push((*first, Owner::This));
            for o in owners.iter().skip(1) {
                self.outlives_facts.push((*o, *first));
            }
        }
        self.this_type = Some((class.into(), owners));
        self.this_kind = Some(Kind::ObjOwner);
        self.invalidate_cache();
    }

    /// Sets `this` to denote a *region* of the given kind (used when
    /// checking `regionKind` declarations, where `this` is the region
    /// itself and every formal outlives it).
    pub fn set_this_region(&mut self, kind: Kind, formal_owners: &[Owner]) {
        for f in formal_owners {
            self.outlives_facts.push((*f, Owner::This));
        }
        self.this_kind = Some(kind);
        self.invalidate_cache();
    }

    /// The type of `this`, if in a method context.
    pub fn this_type(&self) -> Option<(Symbol, &[Owner])> {
        self.this_type.as_ref().map(|(c, os)| (*c, os.as_slice()))
    }

    // ----------------------------------------------------------------- facts

    /// Records `o1 ≽ₒ o2` (o1 owns o2).
    pub fn add_owns(&mut self, o1: Owner, o2: Owner) {
        self.owns_facts.push((o1, o2));
        self.invalidate_cache();
    }

    /// Records `o1 ≽ o2` (o1 outlives o2).
    pub fn add_outlives(&mut self, o1: Owner, o2: Owner) {
        self.outlives_facts.push((o1, o2));
        self.invalidate_cache();
    }

    /// Records that a handle for region `r` is directly available.
    pub fn add_handle(&mut self, r: Owner) {
        self.handle_regions.push(r);
        self.invalidate_cache();
    }

    // --------------------------------------------------------------- queries

    /// `E ⊢ o1 ≽ₒ o2`: o1 transitively owns o2 (reflexive). Memoized.
    pub fn owns(&self, o1: &Owner, o2: &Owner) -> bool {
        if o1 == o2 {
            return true;
        }
        let key = (*o1, *o2);
        {
            let mut c = self.cache.borrow_mut();
            if let Some(&v) = c.owns.get(&key) {
                c.counters.ownership.hits += 1;
                return v;
            }
            c.counters.ownership.misses += 1;
        }
        let v = self.owns_uncached(o1, o2);
        self.cache.borrow_mut().owns.insert(key, v);
        v
    }

    fn owns_uncached(&self, o1: &Owner, o2: &Owner) -> bool {
        // BFS downward from o1 along owns edges.
        let mut frontier = vec![*o1];
        let mut seen = HashSet::new();
        while let Some(cur) = frontier.pop() {
            if !seen.insert(cur) {
                continue;
            }
            for (a, b) in &self.owns_facts {
                if *a == cur {
                    if b == o2 {
                        return true;
                    }
                    frontier.push(*b);
                }
            }
        }
        false
    }

    /// `E ⊢ o1 ≽ o2`: o1 outlives o2 (reflexive, transitive, includes
    /// `≽ₒ`, and `heap`/`immortal` outlive all regions and each other).
    /// Memoized.
    pub fn outlives(&self, o1: &Owner, o2: &Owner) -> bool {
        if o1 == o2 {
            return true;
        }
        let key = (*o1, *o2);
        {
            let mut c = self.cache.borrow_mut();
            if let Some(&v) = c.outlives.get(&key) {
                c.counters.outlives.hits += 1;
                return v;
            }
            c.counters.outlives.misses += 1;
        }
        let v = self.outlives_uncached(o1, o2);
        self.cache.borrow_mut().outlives.insert(key, v);
        v
    }

    fn outlives_uncached(&self, o1: &Owner, o2: &Owner) -> bool {
        // BFS from o1 along outlives ∪ owns edges. Reaching an everlasting
        // owner (heap/immortal) makes *every region* reachable (property
        // R1), and from there anything those regions (transitively) own.
        let mut frontier = vec![*o1];
        let mut seen = HashSet::new();
        while let Some(cur) = frontier.pop() {
            if !seen.insert(cur) {
                continue;
            }
            if cur == *o2 {
                return true;
            }
            if cur.is_everlasting() {
                if o2.is_everlasting() {
                    return true;
                }
                for (g, k) in &self.owner_kinds {
                    if k.is_region_kind() {
                        frontier.push(*g);
                    }
                }
            }
            for (a, b) in self.outlives_facts.iter().chain(&self.owns_facts) {
                if *a == cur {
                    frontier.push(*b);
                }
            }
        }
        false
    }

    /// `E ⊢ X ⊇ Y`: every owner in `needed` is outlived by some owner in
    /// `allowed`; the `RT` pseudo-effect must be present verbatim.
    pub fn effects_subsume(&self, allowed: &Effects, needed: &Effects) -> bool {
        needed.iter().all(|o| self.effect_covered(allowed, o))
    }

    /// Whether a single effect `o` is covered by `allowed`.
    ///
    /// Two effects are special: `RT` must be present verbatim, and the
    /// `heap` effect is only covered by `heap` itself. (In the outlives
    /// relation `immortal ≽ heap` — that is what makes Figure 5's
    /// `TStack<immortal, heap>` legal — but letting `immortal` *cover* the
    /// heap effect would let real-time threads reach heap-effect methods,
    /// defeating the `RT fork` rule's guarantee that the spawned method's
    /// effects "do not contain the heap region".)
    pub fn effect_covered(&self, allowed: &Effects, o: &Owner) -> bool {
        if *o == Owner::Rt {
            return allowed.contains(&Owner::Rt);
        }
        if *o == Owner::Heap {
            return allowed.contains(&Owner::Heap);
        }
        allowed
            .iter()
            .filter(|g| **g != Owner::Rt)
            .any(|g| self.outlives(g, o))
    }

    /// `E ⊢ av RH(o)`: the handle of the region `o` stands for (or is
    /// allocated in) is available. Handles are available for `heap`,
    /// `immortal`, `this`, every region with an in-scope handle value, and
    /// anything connected to one of those through the ownership relation.
    pub fn handle_available(&self, o: &Owner) -> bool {
        {
            let mut c = self.cache.borrow_mut();
            if let Some(set) = &c.handle_avail {
                let v = set.contains(o);
                c.counters.handle.hits += 1;
                return v;
            }
            c.counters.handle.misses += 1;
        }
        let mut avail: HashSet<Owner> = self.handle_regions.iter().copied().collect();
        avail.insert(Owner::Heap);
        avail.insert(Owner::Immortal);
        if self.this_type.is_some() {
            avail.insert(Owner::This);
        }
        // Propagate along owns edges (in both directions) to a fixpoint:
        // an object lives in the same region as its owner.
        loop {
            let mut changed = false;
            for (a, b) in &self.owns_facts {
                let ina = avail.contains(a);
                let inb = avail.contains(b);
                if ina != inb {
                    avail.insert(if ina { *b } else { *a });
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let v = avail.contains(o);
        self.cache.borrow_mut().handle_avail = Some(avail);
        v
    }

    // ---------------------------------------------------------- explanation
    //
    // Deterministic replays of the deduction searches, producing the
    // premise chain a judgment explored. These power `--explain`: every
    // note is derived by scanning the append-only fact vectors in
    // insertion order (never by iterating a hash container), so the text
    // is identical run to run and across `--jobs` — a requirement of the
    // byte-identical-diagnostics contract.

    /// Derivation notes for `o1 ≽ o2` (outlives). If the judgment holds,
    /// the notes list the fact chain that proves it; if it fails, they
    /// report how far the search got, and — when the *reverse* direction
    /// holds — its derivation, which is usually the actual explanation
    /// (the region was created inside the other).
    pub fn explain_outlives(&self, o1: &Owner, o2: &Owner) -> Vec<String> {
        self.explain_order(o1, o2, true)
    }

    /// Derivation notes for `o1 ≽ₒ o2` (ownership), like
    /// [`Env::explain_outlives`].
    pub fn explain_owns(&self, o1: &Owner, o2: &Owner) -> Vec<String> {
        self.explain_order(o1, o2, false)
    }

    fn explain_order(&self, o1: &Owner, o2: &Owner, outlives: bool) -> Vec<String> {
        let rel = if outlives { "≽" } else { "≽ₒ" };
        let mut notes = Vec::new();
        if o1 == o2 {
            notes.push(format!("`{o1} {rel} {o2}` holds by reflexivity"));
            return notes;
        }
        match self.search_explain(o1, o2, outlives) {
            Ok(edges) => {
                notes.push(format!("deriving `{o1} {rel} {o2}`:"));
                for (a, b, label) in &edges {
                    notes.push(format!("`{a} {rel} {b}` — {label}"));
                }
                if edges.len() > 1 {
                    notes.push(format!("`{o1} {rel} {o2}` follows by transitivity"));
                }
            }
            Err(reached) => {
                let reached: Vec<String> = reached.iter().map(|o| format!("`{o}`")).collect();
                notes.push(format!(
                    "`{o1} {rel} {o2}` does not hold: from `{o1}` the deduction reached \
                     only {{{}}}, and no recorded fact extends the chain to `{o2}`",
                    reached.join(", ")
                ));
                if outlives {
                    if let Ok(edges) = self.search_explain(o2, o1, true) {
                        notes.push(format!("the reverse direction `{o2} ≽ {o1}` does hold:"));
                        for (a, b, label) in &edges {
                            notes.push(format!("`{a} ≽ {b}` — {label}"));
                        }
                        notes.push(format!(
                            "so `{o1}` has the strictly shorter lifetime: an object it owns \
                             would dangle"
                        ));
                    }
                }
            }
        }
        notes
    }

    /// Derivation notes for effect coverage: why `o` is (not) covered by
    /// the permitted effects `allowed`, one note per attempted premise.
    pub fn explain_effect_covered(&self, allowed: &Effects, o: &Owner) -> Vec<String> {
        let mut notes = Vec::new();
        if *o == Owner::Rt {
            notes.push(
                "the `RT` pseudo-effect is only covered when `RT` appears verbatim \
                 in the `accesses` clause"
                    .to_string(),
            );
            return notes;
        }
        if *o == Owner::Heap {
            notes.push(
                "the `heap` effect is only covered by `heap` itself — `immortal ≽ heap`, \
                 but letting it cover the heap would let real-time threads reach \
                 heap-effect methods"
                    .to_string(),
            );
            return notes;
        }
        if allowed.is_empty() {
            notes.push("the permitted effect set is empty".to_string());
            return notes;
        }
        for g in allowed.iter().filter(|g| **g != Owner::Rt) {
            if self.outlives(g, o) {
                notes.push(format!("covered: `{g} ≽ {o}` holds"));
                notes.extend(self.explain_outlives(g, o));
                return notes;
            }
            notes.push(format!(
                "tried permitted owner `{g}`: `{g} ≽ {o}` does not hold"
            ));
        }
        notes.push(format!("no owner in the permitted effects outlives `{o}`"));
        notes
    }

    /// Replays the `≽`/`≽ₒ` search deterministically. Returns the edge
    /// chain `o1 → … → o2` when the judgment holds (each edge labelled
    /// with the rule that justified it), or the owners reached (in
    /// discovery order) when it does not.
    #[allow(clippy::type_complexity)]
    fn search_explain(
        &self,
        o1: &Owner,
        o2: &Owner,
        outlives: bool,
    ) -> Result<Vec<(Owner, Owner, &'static str)>, Vec<Owner>> {
        // `visited` doubles as the FIFO queue and the parent tree:
        // (owner, index of its discoverer, rule that added it).
        let mut visited: Vec<(Owner, usize, &'static str)> = vec![(*o1, usize::MAX, "")];
        let mut i = 0;
        while i < visited.len() {
            let cur = visited[i].0;
            if cur == *o2 {
                let mut edges = Vec::new();
                let mut idx = i;
                while visited[idx].1 != usize::MAX {
                    let (o, p, label) = visited[idx];
                    edges.push((visited[p].0, o, label));
                    idx = p;
                }
                edges.reverse();
                return Ok(edges);
            }
            if outlives {
                if cur.is_everlasting() {
                    const R1: &str = "property R1 (`heap` and `immortal` outlive every region)";
                    if o2.is_everlasting() {
                        push_reach(&mut visited, i, *o2, R1);
                    }
                    for (g, k) in &self.owner_kinds {
                        if k.is_region_kind() {
                            push_reach(&mut visited, i, *g, R1);
                        }
                    }
                }
                for (a, b) in &self.outlives_facts {
                    if *a == cur {
                        push_reach(&mut visited, i, *b, "outlives fact in scope");
                    }
                }
                for (a, b) in &self.owns_facts {
                    if *a == cur {
                        push_reach(&mut visited, i, *b, "ownership fact (`≽ₒ` implies `≽`)");
                    }
                }
            } else {
                for (a, b) in &self.owns_facts {
                    if *a == cur {
                        push_reach(&mut visited, i, *b, "ownership fact in scope");
                    }
                }
            }
            i += 1;
        }
        Err(visited.into_iter().map(|(o, _, _)| o).collect())
    }

    /// `P ⊢ k1 ≤ₖ k2`: the subkinding judgment, memoized. A thin caching
    /// wrapper over [`crate::kind::is_subkind`]; the memo is keyed on the
    /// kind pair and never invalidated, because subkinding depends only
    /// on the program's region-kind hierarchy (one `kinds` lookup per
    /// run), never on this environment's facts.
    pub fn subkind(&self, kinds: &dyn RegionKindLookup, k1: &Kind, k2: &Kind) -> bool {
        {
            let mut c = self.cache.borrow_mut();
            if let Some(&v) = c.subkind.get(&(k1.clone(), k2.clone())) {
                c.counters.subkind.hits += 1;
                return v;
            }
            c.counters.subkind.misses += 1;
        }
        let v = is_subkind(kinds, k1, k2);
        self.cache
            .borrow_mut()
            .subkind
            .insert((k1.clone(), k2.clone()), v);
        v
    }

    /// `E ⊢ RKind(o) = k`: the kind of the region that `o` stands for (if a
    /// region) or is allocated in (if an object, by walking up `≽ₒ`).
    pub fn rkind_of(&self, kinds: &dyn RegionKindLookup, o: &Owner) -> Option<Kind> {
        {
            let mut c = self.cache.borrow_mut();
            if let Some(v) = c.rkind.get(o) {
                let v = v.clone();
                c.counters.rkind.hits += 1;
                return v;
            }
            c.counters.rkind.misses += 1;
        }
        let v = self.rkind_inner(kinds, o, &mut HashSet::new());
        self.cache.borrow_mut().rkind.insert(*o, v.clone());
        v
    }

    fn rkind_inner(
        &self,
        kinds: &dyn RegionKindLookup,
        o: &Owner,
        visited: &mut HashSet<Owner>,
    ) -> Option<Kind> {
        if !visited.insert(*o) {
            return None;
        }
        match o {
            Owner::Heap => return Some(Kind::GcRegion),
            Owner::Immortal => return Some(Kind::SharedRegion.with_lt()),
            Owner::Rt => return None,
            Owner::This => {
                if let Some(k) = &self.this_kind {
                    if k.is_region_kind() {
                        return Some(k.clone());
                    }
                }
                if let Some((_, owners)) = &self.this_type {
                    if let Some(first) = owners.first() {
                        return self.rkind_inner(kinds, first, visited);
                    }
                }
                return None;
            }
            _ => {}
        }
        if let Some(k) = self.kind_of(o) {
            if k.is_region_kind() {
                return Some(k);
            }
        }
        // An object is allocated in the same region as its owner: find any
        // owner of `o` with a known region kind.
        for (a, b) in &self.owns_facts {
            if b == o && a != o {
                if let Some(k) = self.rkind_inner(kinds, a, visited) {
                    return Some(k);
                }
            }
        }
        let _ = kinds;
        None
    }
}

/// Queues `next` (discovered from `visited[from]` by `label`) unless it
/// was already reached.
fn push_reach(
    visited: &mut Vec<(Owner, usize, &'static str)>,
    from: usize,
    next: Owner,
    label: &'static str,
) {
    if !visited.iter().any(|(o, _, _)| *o == next) {
        visited.push((next, from, label));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::NoUserKinds;

    fn r(n: &str) -> Owner {
        Owner::Region(n.into())
    }

    fn f(n: &str) -> Owner {
        Owner::Formal(n.into())
    }

    #[test]
    fn outlives_is_preorder_with_facts() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::LocalRegion);
        e.declare_owner(r("r2"), Kind::LocalRegion);
        e.add_outlives(r("r1"), r("r2"));
        assert!(e.outlives(&r("r1"), &r("r2")));
        assert!(!e.outlives(&r("r2"), &r("r1")));
        assert!(e.outlives(&r("r1"), &r("r1")), "reflexive");
        // heap and immortal outlive all regions (R1).
        assert!(e.outlives(&Owner::Heap, &r("r2")));
        assert!(e.outlives(&Owner::Immortal, &r("r1")));
        assert!(e.outlives(&Owner::Heap, &Owner::Immortal));
        assert!(e.outlives(&Owner::Immortal, &Owner::Heap));
        // Regions do not outlive heap.
        assert!(!e.outlives(&r("r1"), &Owner::Heap));
    }

    #[test]
    fn outlives_transitivity() {
        let mut e = Env::base();
        for n in ["a", "b", "c"] {
            e.declare_owner(r(n), Kind::LocalRegion);
        }
        e.add_outlives(r("a"), r("b"));
        e.add_outlives(r("b"), r("c"));
        assert!(e.outlives(&r("a"), &r("c")));
        assert!(!e.outlives(&r("c"), &r("a")));
    }

    #[test]
    fn owns_implies_outlives() {
        let mut e = Env::base();
        e.set_this("TStack", vec![f("stackOwner"), f("TOwner")]);
        // stackOwner ≽ₒ this (first owner owns the object).
        assert!(e.owns(&f("stackOwner"), &Owner::This));
        assert!(e.outlives(&f("stackOwner"), &Owner::This));
        // TOwner ≽ stackOwner (all owners outlive the first).
        assert!(e.outlives(&f("TOwner"), &f("stackOwner")));
        assert!(e.outlives(&f("TOwner"), &Owner::This), "via transitivity");
        assert!(!e.owns(&f("TOwner"), &Owner::This));
    }

    #[test]
    fn effects_subsumption() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::LocalRegion);
        e.set_this("C", vec![f("o")]);
        let allowed: Effects = [f("o"), r("r1")].into_iter().collect();
        let needed: Effects = [Owner::This].into_iter().collect();
        // o ≽ₒ this ⇒ o ≽ this ⇒ X ⊇ {this}.
        assert!(e.effects_subsume(&allowed, &needed));
        let needed_heap: Effects = [Owner::Heap].into_iter().collect();
        assert!(!e.effects_subsume(&allowed, &needed_heap));
        // RT must be present verbatim.
        let needed_rt: Effects = [Owner::Rt].into_iter().collect();
        assert!(!e.effects_subsume(&allowed, &needed_rt));
        let mut allowed_rt = allowed.clone();
        allowed_rt.insert(Owner::Rt);
        assert!(e.effects_subsume(&allowed_rt, &needed_rt));
        // RT never covers a region effect.
        let only_rt: Effects = [Owner::Rt].into_iter().collect();
        let need_r1: Effects = [r("r1")].into_iter().collect();
        assert!(!e.effects_subsume(&only_rt, &need_r1));
    }

    #[test]
    fn handle_availability() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::LocalRegion);
        // No handle for r1 yet.
        assert!(!e.handle_available(&r("r1")));
        assert!(e.handle_available(&Owner::Heap));
        assert!(e.handle_available(&Owner::Immortal));
        e.bind_var("h1", SType::Handle(r("r1")));
        assert!(e.handle_available(&r("r1")));
        // this is available once a this-type is set, and availability
        // propagates down the ownership relation.
        e.set_this("C", vec![f("o")]);
        assert!(e.handle_available(&Owner::This));
        assert!(
            e.handle_available(&f("o")),
            "o owns this, so o's region handle is obtainable from this"
        );
    }

    #[test]
    fn rkind_walks_ownership() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::SharedRegion.with_lt());
        e.set_this("C", vec![r("r1")]);
        assert_eq!(
            e.rkind_of(&NoUserKinds, &Owner::This),
            Some(Kind::SharedRegion.with_lt())
        );
        assert_eq!(e.rkind_of(&NoUserKinds, &Owner::Heap), Some(Kind::GcRegion));
        assert_eq!(
            e.rkind_of(&NoUserKinds, &Owner::Immortal),
            Some(Kind::SharedRegion.with_lt())
        );
        // A formal with no ownership facts has no known region kind.
        e.declare_owner(f("x"), Kind::Owner);
        assert_eq!(e.rkind_of(&NoUserKinds, &f("x")), None);
        // But one owned by a region does.
        e.add_owns(r("r1"), f("x"));
        assert_eq!(
            e.rkind_of(&NoUserKinds, &f("x")),
            Some(Kind::SharedRegion.with_lt())
        );
    }

    #[test]
    fn scope_truncation_restores_facts() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::LocalRegion);
        let m = e.mark();
        e.declare_owner(r("r2"), Kind::LocalRegion);
        e.add_outlives(r("r2"), r("r1"));
        e.bind_var("x", SType::Int);
        assert!(e.outlives(&r("r2"), &r("r1")));
        assert!(e.lookup_var("x").is_some());
        e.truncate_to(m);
        assert!(e.lookup_var("x").is_none());
        assert!(!e.outlives(&r("r2"), &r("r1")), "fact must roll back");
        assert!(e.is_region_name("r1"));
        assert!(!e.is_region_name("r2"));
    }

    #[test]
    fn memoized_queries_track_fact_mutations() {
        let mut e = Env::base();
        e.declare_owner(r("a"), Kind::LocalRegion);
        e.declare_owner(r("b"), Kind::LocalRegion);
        assert!(!e.outlives(&r("a"), &r("b")));
        // Repeat query hits the cache.
        assert!(!e.outlives(&r("a"), &r("b")));
        let (hits, _) = e.cache_counters();
        assert!(hits >= 1, "second identical query must hit the cache");
        // New fact invalidates, and the fresh answer is correct.
        e.add_outlives(r("a"), r("b"));
        assert!(e.outlives(&r("a"), &r("b")));
        // Handle availability is also invalidated by new handles.
        assert!(!e.handle_available(&r("a")));
        e.bind_var("h", SType::Handle(r("a")));
        assert!(e.handle_available(&r("a")));
    }

    #[test]
    fn var_shadowing() {
        let mut e = Env::base();
        e.bind_var("x", SType::Int);
        e.bind_var("x", SType::Bool);
        assert_eq!(e.lookup_var("x"), Some(&SType::Bool));
        assert_eq!(e.lookup_var("y"), None);
    }

    #[test]
    fn regions_in_scope() {
        let mut e = Env::base();
        e.declare_owner(r("r1"), Kind::LocalRegion);
        e.declare_owner(f("obj"), Kind::ObjOwner);
        e.declare_owner(f("rgn"), Kind::Region);
        let rs = e.regions();
        assert!(rs.contains(&Owner::Heap));
        assert!(rs.contains(&Owner::Immortal));
        assert!(rs.contains(&r("r1")));
        assert!(rs.contains(&f("rgn")), "region-kinded formals are regions");
        assert!(!rs.contains(&f("obj")));
    }
}
