//! Incremental, fingerprint-keyed re-checking.
//!
//! [`IncrementalChecker`] keeps the result of the last check — per-class
//! diagnostics, per-class judgment-cache counters, the built
//! [`ProgramTable`] — keyed by structural fingerprints
//! ([`rtj_lang::fingerprint`]), and re-checks only the *dirty closure* of
//! an edit batch. The contract, enforced by
//! `tests/incremental_differential.rs`, is strict:
//!
//! > At any `--jobs`, a `recheck` produces **byte-identical diagnostics**
//! > and a structurally identical `rtj-checker-metrics/v1` snapshot to a
//! > from-scratch [`crate::check_program_in`] of the same source.
//!
//! How the reuse works:
//!
//! * Every class gets a **signature** fingerprint (what dependents can
//!   observe; span-free) and a **full** fingerprint (everything, with
//!   declaration-relative spans). A body-only edit changes `full` but not
//!   `sig`.
//! * A **reverse dependency index** is derived from the class/region-kind
//!   names each declaration mentions. Signature changes (and class or
//!   region-kind additions/removals) seed a BFS over reversed edges; the
//!   resulting closure is re-checked. The index is transitive, so names a
//!   class only reaches through a dependency's members are still covered.
//! * If **no** signature changed, the cached `ProgramTable` is reused:
//!   only the edited classes' stored declarations are swapped
//!   ([`ProgramTable::refresh_class_decl`]), skipping the full structural
//!   rebuild — at `scaled_classes(64)` the rebuild alone costs ~18% of a
//!   from-scratch check, which would cap the incremental speedup well
//!   below its target.
//! * Clean classes contribute their cached diagnostics with spans
//!   **shifted** by the declaration's movement. Equal full fingerprints
//!   guarantee the declaration's internal layout is unchanged, so the
//!   uniform shift is exact, not approximate.
//! * Judgment-cache counters are cached per class. Each class is checked
//!   in a fresh environment (the driver has always worked that way), so
//!   per-class counters are deterministic and scheduling-independent —
//!   summing cached and fresh counters reproduces the from-scratch totals
//!   exactly.
//!
//! The region-kind and inheritance well-formedness passes are cached the
//! same way (per declaration), and the `main` block is always re-checked
//! (it is a fraction of a percent of the total).
//!
//! [`CheckBenchReport`] is the persisted checker-latency baseline
//! (`rtj-check-bench/v1`, `BENCH_check.json`), produced by
//! `rtjc bench incremental:N` and rendered by `rtjc report`.

use crate::check::{CheckOptions, CheckStats, Checker};
use crate::env::{Effects, Env, JudgmentCounters};
use crate::error::TypeError;
use crate::infer;
use crate::owner::Owner;
use crate::profile::{CheckProfile, PhaseSpan};
use crate::stype::SType;
use crate::table::ProgramTable;
use rtj_lang::ast::Program;
use rtj_lang::fingerprint::{
    class_refs, fingerprint_class, fingerprint_region_kind, ClassFingerprint,
};
use rtj_lang::intern::Symbol;
use rtj_lang::json::{Json, JsonError};
use rtj_lang::parser::{parse_program, ParseError};
use rtj_lang::span::Span;
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema identifier for [`CheckBenchReport`] documents.
pub const CHECK_BENCH_SCHEMA: &str = "rtj-check-bench/v1";

/// A single-class edit: replace the declaration of `class` with `source`
/// (the full replacement declaration text, `class ... { ... }`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassEdit {
    /// Name of the class to replace.
    pub class: String,
    /// Replacement declaration source text.
    pub source: String,
}

/// Why a [`IncrementalChecker::recheck`] call could not run.
#[derive(Debug, Clone)]
pub enum RecheckError {
    /// The edited source no longer parses. The engine state is unchanged
    /// (the next well-formed batch diffs against the last good check).
    Parse(ParseError),
    /// An edit targeted a class the current source does not declare.
    UnknownClass(String),
}

impl std::fmt::Display for RecheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecheckError::Parse(e) => write!(f, "parse error: {}", e.message),
            RecheckError::UnknownClass(c) => write!(f, "no class `{c}` to edit"),
        }
    }
}

impl std::error::Error for RecheckError {}

/// The result of one incremental (or initial) check pass.
#[derive(Debug, Clone)]
pub struct RecheckOutcome {
    /// All diagnostics for the *current* source, byte-identical to a
    /// from-scratch check (cached ones span-shifted, dirty ones fresh).
    pub errors: Vec<TypeError>,
    /// Statistics equal to a from-scratch run's (counters summed over
    /// cached and fresh units; `elapsed` is this pass's wall clock).
    pub stats: CheckStats,
    /// Phase-span tree when [`CheckOptions::profile`] is set; structure
    /// (names and ordering) matches a from-scratch profile.
    pub profile: Option<CheckProfile>,
    /// Names of the classes that were actually re-checked, in declaration
    /// order.
    pub dirty: Vec<Symbol>,
    /// Class units whose cached results were reused.
    pub reused: usize,
    /// Total classes in the program.
    pub classes: usize,
    /// Whether the pass rebuilt the [`ProgramTable`] from scratch
    /// (signature/region-kind/class-set change — or the first pass).
    pub full_rebuild: bool,
    /// Wall-clock nanoseconds of the checking work, parsing excluded
    /// (parse time is reported separately by the drivers; both sides of
    /// the bench speedup exclude it).
    pub check_ns: u64,
}

impl RecheckOutcome {
    /// Whether the current source checks cleanly.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Cached per-class results from the last pass that processed the class.
#[derive(Debug, Clone)]
struct UnitCache {
    sig: u64,
    full: u64,
    start: u32,
    refs: Vec<Symbol>,
    wf_errors: Vec<TypeError>,
    wf_judgments: JudgmentCounters,
    errors: Vec<TypeError>,
    methods_checked: usize,
    judgments: JudgmentCounters,
}

/// Cached per-region-kind well-formedness results.
#[derive(Debug, Clone)]
struct RkCache {
    fp: u64,
    start: u32,
    errors: Vec<TypeError>,
    judgments: JudgmentCounters,
}

/// The incremental re-check engine. See the module docs for the contract
/// and the reuse strategy.
#[derive(Debug, Default)]
pub struct IncrementalChecker {
    opts: CheckOptions,
    source: String,
    /// Class name → its span in `source` (for edit splicing).
    decl_spans: Vec<(Symbol, Span)>,
    /// Table from the last pass whose build succeeded.
    table: Option<ProgramTable>,
    units: HashMap<Symbol, UnitCache>,
    rkinds: HashMap<Symbol, RkCache>,
}

impl IncrementalChecker {
    /// Creates an empty engine; the first [`IncrementalChecker::check_source`]
    /// is a full check that populates the caches.
    pub fn new(opts: CheckOptions) -> IncrementalChecker {
        IncrementalChecker {
            opts,
            ..IncrementalChecker::default()
        }
    }

    /// The source text of the last successfully parsed pass.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Checks a full source text, reusing whatever the fingerprints prove
    /// unchanged since the last pass.
    ///
    /// # Errors
    ///
    /// Returns the parse error if `source` does not parse; the engine
    /// state is left at the last good pass.
    pub fn check_source(&mut self, source: &str) -> Result<RecheckOutcome, ParseError> {
        let prog = parse_program(source)?;
        Ok(self.process(source.to_string(), prog, None))
    }

    /// Applies a batch of single-class edits to the stored source and
    /// re-checks the dirty closure.
    ///
    /// # Errors
    ///
    /// [`RecheckError::UnknownClass`] if an edit names a class the current
    /// source does not declare; [`RecheckError::Parse`] if the edited
    /// source does not parse. Either way the engine state is unchanged.
    pub fn recheck(&mut self, edits: &[ClassEdit]) -> Result<RecheckOutcome, RecheckError> {
        let mut source = self.source.clone();
        let mut spans = self.decl_spans.clone();
        for e in edits {
            let idx = spans
                .iter()
                .position(|(n, _)| n.as_str() == e.class)
                .ok_or_else(|| RecheckError::UnknownClass(e.class.clone()))?;
            let (lo, hi) = (spans[idx].1.start as usize, spans[idx].1.end as usize);
            source.replace_range(lo..hi, &e.source);
            let delta = e.source.len() as i64 - (hi - lo) as i64;
            spans[idx].1.end = (hi as i64 + delta) as u32;
            for (j, (_, s)) in spans.iter_mut().enumerate() {
                if j != idx && s.start as usize >= hi {
                    s.start = (s.start as i64 + delta) as u32;
                    s.end = (s.end as i64 + delta) as u32;
                }
            }
        }
        let prog = parse_program(&source).map_err(RecheckError::Parse)?;
        // The splice only rewrote the named declarations' text, so only
        // those classes need structural re-fingerprinting — the dominant
        // cost of a pass once everything else is cache hits.
        let touched: HashSet<String> = edits.iter().map(|e| e.class.clone()).collect();
        Ok(self.process(source, prog, Some(&touched)))
    }

    /// One checking pass over a parsed program: diff fingerprints, decide
    /// the dirty set, check it, merge with cached results, commit.
    ///
    /// `touched`, when given, is the set of class names whose declaration
    /// text may differ from the cached pass — every other declaration is
    /// textually identical (the [`IncrementalChecker::recheck`] splicing
    /// invariant), so its cached fingerprints are reused unhashed. A
    /// class parsed out of a replaced span either carries the edited name
    /// (in the set) or a new name (not in the unit cache) — both are
    /// hashed fresh; a duplicate of an existing name trips the
    /// duplicate/table-error path before any fingerprint is trusted.
    fn process(
        &mut self,
        source: String,
        mut prog: Program,
        touched: Option<&HashSet<String>>,
    ) -> RecheckOutcome {
        let start = Instant::now();
        let profiling = self.opts.profile;
        let mut phases: Vec<PhaseSpan> = Vec::new();

        self.decl_spans = prog.classes.iter().map(|c| (c.name.name, c.span)).collect();
        self.source = source;

        // lower: exactly the from-scratch phase (idempotent, ~2% of a full
        // check; re-running it whole keeps elaborated fingerprints honest).
        let p0 = profiling.then(|| start.elapsed());
        infer::apply_declaration_defaults(&mut prog);
        if let Some(p0) = p0 {
            phases.push(PhaseSpan::leaf("lower", p0, start.elapsed() - p0));
        }

        // table: fingerprint, diff, and rebuild-or-patch.
        let p0 = profiling.then(|| start.elapsed());
        let total = prog.classes.len();
        let fps: Vec<ClassFingerprint> = prog
            .classes
            .iter()
            .map(|c| {
                if let Some(touched) = touched {
                    if !touched.contains(c.name.name.as_str()) {
                        if let Some(u) = self.units.get(&c.name.name) {
                            return ClassFingerprint {
                                sig: u.sig,
                                full: u.full,
                            };
                        }
                    }
                }
                fingerprint_class(c)
            })
            .collect();
        let rkfps: Vec<u64> = prog
            .region_kinds
            .iter()
            .map(fingerprint_region_kind)
            .collect();

        let mut names: HashSet<Symbol> = HashSet::with_capacity(total);
        let mut dup = false;
        for c in &prog.classes {
            dup |= !names.insert(c.name.name);
        }
        let mut rknames: HashSet<Symbol> = HashSet::new();
        for rk in &prog.region_kinds {
            dup |= !rknames.insert(rk.name.name);
        }

        // Seeds: classes whose *signature* changed (or appeared/vanished)
        // and region kinds that changed at all.
        let mut seeds: Vec<Symbol> = Vec::new();
        for (c, fp) in prog.classes.iter().zip(&fps) {
            match self.units.get(&c.name.name) {
                Some(u) if u.sig == fp.sig => {}
                _ => seeds.push(c.name.name),
            }
        }
        seeds.extend(self.units.keys().filter(|n| !names.contains(n)));
        for (rk, fp) in prog.region_kinds.iter().zip(&rkfps) {
            match self.rkinds.get(&rk.name.name) {
                Some(r) if r.fp == *fp => {}
                _ => seeds.push(rk.name.name),
            }
        }
        seeds.extend(self.rkinds.keys().filter(|n| !rknames.contains(n)));

        let fast = !dup && seeds.is_empty() && self.table.is_some();
        let mut dirty = vec![false; total];
        let table = if fast {
            let mut table = self.table.take().expect("fast path requires a table");
            for (i, (c, fp)) in prog.classes.iter().zip(&fps).enumerate() {
                let cached = self.units.get(&c.name.name).expect("class set unchanged");
                if cached.full != fp.full {
                    dirty[i] = true;
                    // The structural facts still hold (signature unchanged)
                    // but spans and bodies moved: swap the stored decl so
                    // error reporting against this class reads current spans.
                    table.refresh_class_decl(c.name.name, c);
                }
            }
            table
        } else {
            let built = match ProgramTable::build(&prog) {
                Ok(t) => t,
                Err(errors) => {
                    // From-scratch parity: the driver returns table errors
                    // alone, before any unit runs. Keep the caches at the
                    // last good pass so the next diff is against it.
                    let elapsed = start.elapsed();
                    return RecheckOutcome {
                        errors,
                        stats: CheckStats {
                            classes_checked: total,
                            elapsed,
                            ..CheckStats::default()
                        },
                        profile: None,
                        dirty: Vec::new(),
                        reused: 0,
                        classes: total,
                        full_rebuild: true,
                        check_ns: elapsed.as_nanos() as u64,
                    };
                }
            };
            // Reverse dependency index over declaration references, then
            // the BFS closure of the seeds. Content-unchanged classes
            // reuse their cached (elaborated) reference sets.
            let mut reverse: HashMap<Symbol, Vec<Symbol>> = HashMap::new();
            for (c, fp) in prog.classes.iter().zip(&fps) {
                let refs = match self.units.get(&c.name.name) {
                    Some(u) if u.full == fp.full => u.refs.clone(),
                    _ => class_refs(c),
                };
                for r in refs {
                    reverse.entry(r).or_default().push(c.name.name);
                }
            }
            for rk in &prog.region_kinds {
                for r in rtj_lang::fingerprint::region_kind_refs(rk) {
                    reverse.entry(r).or_default().push(rk.name.name);
                }
            }
            let mut closure: HashSet<Symbol> = HashSet::new();
            let mut work = seeds;
            while let Some(n) = work.pop() {
                if !closure.insert(n) {
                    continue;
                }
                if let Some(deps) = reverse.get(&n) {
                    work.extend(deps.iter().copied());
                }
            }
            for (i, (c, fp)) in prog.classes.iter().zip(&fps).enumerate() {
                dirty[i] = closure.contains(&c.name.name)
                    || self
                        .units
                        .get(&c.name.name)
                        .is_none_or(|u| u.full != fp.full);
            }
            built
        };
        if let Some(p0) = p0 {
            phases.push(PhaseSpan::leaf("table", p0, start.elapsed() - p0));
        }

        // wf: region kinds, then inheritance, both per declaration (a
        // fresh `Checker` per unit absorbs the same environments in the
        // same order as the from-scratch single-pass prelude, so errors
        // and counters are identical). Fast path reuses clean units.
        let p0 = profiling.then(|| start.elapsed());
        let mut rk_results: Vec<(Vec<TypeError>, JudgmentCounters)> =
            Vec::with_capacity(prog.region_kinds.len());
        for rk in &prog.region_kinds {
            if fast {
                let cached = self.rkinds.get(&rk.name.name).expect("rk set unchanged");
                let delta = i64::from(rk.span.start) - i64::from(cached.start);
                rk_results.push((shift_errors(&cached.errors, delta), cached.judgments));
            } else {
                let mut ck = Checker::new(&table);
                ck.check_region_kind(rk);
                rk_results.push((std::mem::take(&mut ck.errors), ck.judgments));
            }
        }
        let mut cls_wf: Vec<(Vec<TypeError>, JudgmentCounters)> = Vec::with_capacity(total);
        for (i, c) in prog.classes.iter().enumerate() {
            if fast && !dirty[i] {
                let cached = self.units.get(&c.name.name).expect("class set unchanged");
                let delta = i64::from(c.span.start) - i64::from(cached.start);
                cls_wf.push((shift_errors(&cached.wf_errors, delta), cached.wf_judgments));
            } else {
                let mut ck = Checker::new(&table);
                ck.check_inheritance(std::slice::from_ref(c));
                cls_wf.push((std::mem::take(&mut ck.errors), ck.judgments));
            }
        }
        if let Some(p0) = p0 {
            phases.push(PhaseSpan::leaf("wf", p0, start.elapsed() - p0));
        }

        // classes: check the dirty units (parallel like the from-scratch
        // driver), reuse the rest from cache with spans shifted.
        let jobs_resolved = match self.opts.jobs {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        };
        let dirty_count = dirty.iter().filter(|d| **d).count();
        let workers = jobs_resolved.min(dirty_count.max(1));
        let mut classes = std::mem::take(&mut prog.classes);
        let p0 = profiling.then(|| start.elapsed());
        type FreshUnit = (
            Vec<TypeError>,
            usize,
            JudgmentCounters,
            Option<(Duration, Duration)>,
        );
        let mut fresh: Vec<Option<FreshUnit>> = (0..total).map(|_| None).collect();
        if workers <= 1 {
            for (i, c) in classes.iter_mut().enumerate().filter(|(i, _)| dirty[*i]) {
                let c0 = profiling.then(|| start.elapsed());
                let mut ck = Checker::new(&table);
                ck.check_class(c);
                let t = c0.map(|c0| (c0, start.elapsed() - c0));
                fresh[i] = Some((
                    std::mem::take(&mut ck.errors),
                    ck.methods_checked,
                    ck.judgments,
                    t,
                ));
            }
        } else {
            let dirty = &dirty;
            let queue = Mutex::new(classes.iter_mut().enumerate().filter(|(i, _)| dirty[*i]));
            let results: Vec<Vec<(usize, FreshUnit)>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let queue = &queue;
                        let table = &table;
                        s.spawn(move || {
                            let mut units = Vec::new();
                            loop {
                                let item = queue.lock().unwrap().next();
                                let Some((i, c)) = item else { break };
                                let c0 = profiling.then(|| start.elapsed());
                                let mut ck = Checker::new(table);
                                ck.check_class(c);
                                let t = c0.map(|c0| (c0, start.elapsed() - c0));
                                units.push((
                                    i,
                                    (
                                        std::mem::take(&mut ck.errors),
                                        ck.methods_checked,
                                        ck.judgments,
                                        t,
                                    ),
                                ));
                            }
                            units
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            for (i, unit) in results.into_iter().flatten() {
                fresh[i] = Some(unit);
            }
        }
        // Per-class final results, cached or fresh.
        let mut unit_final: Vec<FreshUnit> = Vec::with_capacity(total);
        for (i, c) in classes.iter().enumerate() {
            if dirty[i] {
                unit_final.push(fresh[i].take().expect("dirty unit was checked"));
            } else {
                let cached = self.units.get(&c.name.name).expect("clean unit is cached");
                let delta = i64::from(c.span.start) - i64::from(cached.start);
                unit_final.push((
                    shift_errors(&cached.errors, delta),
                    cached.methods_checked,
                    cached.judgments,
                    None,
                ));
            }
        }
        if let Some(p0) = p0 {
            let children = classes
                .iter()
                .zip(&unit_final)
                .map(|(c, (_, _, _, t))| {
                    let (s0, w) = t.unwrap_or((Duration::ZERO, Duration::ZERO));
                    PhaseSpan::leaf(format!("class {}", c.name.name), s0, w)
                })
                .collect();
            phases.push(PhaseSpan {
                name: "classes".to_string(),
                start: p0,
                wall: start.elapsed() - p0,
                children,
            });
        }

        // main: always re-checked (a fraction of a percent of the total,
        // and it may reference any class).
        let p0 = profiling.then(|| start.elapsed());
        let mut ck = Checker::new(&table);
        let mut env = Env::base();
        let x: Effects = [Owner::Heap, Owner::Immortal].into_iter().collect();
        for s in &mut prog.main.stmts {
            ck.check_stmt(&mut env, &x, &Owner::Heap, &SType::Void, false, s);
        }
        ck.absorb_env(&env);
        let main_errors = std::mem::take(&mut ck.errors);
        let main_judgments = ck.judgments;
        if let Some(p0) = p0 {
            phases.push(PhaseSpan::leaf("main", p0, start.elapsed() - p0));
        }

        // Merge in from-scratch order: region kinds, inheritance, class
        // units (declaration order), main; stable span sort.
        let mut all: Vec<TypeError> = Vec::new();
        let mut judgments = JudgmentCounters::default();
        let mut methods_checked = 0usize;
        for (errs, j) in &rk_results {
            all.extend(errs.iter().cloned());
            judgments.absorb(j);
        }
        for (errs, j) in &cls_wf {
            all.extend(errs.iter().cloned());
            judgments.absorb(j);
        }
        for (errs, m, j, _) in &unit_final {
            all.extend(errs.iter().cloned());
            methods_checked += m;
            judgments.absorb(j);
        }
        all.extend(main_errors);
        judgments.absorb(&main_judgments);
        all.sort_by_key(|e| e.span);

        // Commit the new cache state.
        let dirty_names: Vec<Symbol> = classes
            .iter()
            .zip(&dirty)
            .filter(|(_, d)| **d)
            .map(|(c, _)| c.name.name)
            .collect();
        if fast {
            // Class and region-kind sets are unchanged, and a clean entry's
            // stored `(start, errors)` pair stays internally consistent (the
            // shift delta is recomputed against it every pass) — so only the
            // dirty entries need rewriting.
            for (i, ((c, (errors, m, j, _)), (wf_errors, wf_j))) in
                classes.iter().zip(unit_final).zip(cls_wf).enumerate()
            {
                if !dirty[i] {
                    continue;
                }
                let u = self
                    .units
                    .get_mut(&c.name.name)
                    .expect("class set unchanged");
                u.full = fps[i].full;
                u.start = c.span.start;
                u.refs = class_refs(c);
                u.wf_errors = wf_errors;
                u.wf_judgments = wf_j;
                u.errors = errors;
                u.methods_checked = m;
                u.judgments = j;
            }
        } else {
            let mut old_units = std::mem::take(&mut self.units);
            for (i, ((c, (errors, m, j, _)), (wf_errors, wf_j))) in
                classes.iter().zip(unit_final).zip(cls_wf).enumerate()
            {
                let refs = if dirty[i] {
                    class_refs(c)
                } else {
                    old_units
                        .remove(&c.name.name)
                        .map(|u| u.refs)
                        .unwrap_or_else(|| class_refs(c))
                };
                self.units.insert(
                    c.name.name,
                    UnitCache {
                        sig: fps[i].sig,
                        full: fps[i].full,
                        start: c.span.start,
                        refs,
                        wf_errors,
                        wf_judgments: wf_j,
                        errors,
                        methods_checked: m,
                        judgments: j,
                    },
                );
            }
            self.rkinds.clear();
            for ((rk, fp), unit) in prog.region_kinds.iter().zip(&rkfps).zip(&rk_results) {
                let (errors, j) = unit.clone();
                self.rkinds.insert(
                    rk.name.name,
                    RkCache {
                        fp: *fp,
                        start: rk.span.start,
                        errors,
                        judgments: j,
                    },
                );
            }
        }
        self.table = Some(table);

        let elapsed = start.elapsed();
        let stats = CheckStats {
            classes_checked: total,
            methods_checked,
            judgments,
            threads_used: jobs_resolved.min(total.max(1)),
            elapsed,
        };
        RecheckOutcome {
            errors: all,
            stats,
            profile: profiling.then_some(CheckProfile { phases }),
            dirty: dirty_names,
            reused: total - dirty_count,
            classes: total,
            full_rebuild: !fast,
            check_ns: elapsed.as_nanos() as u64,
        }
    }
}

/// Relocates cached diagnostics by the declaration's movement. Dummy
/// spans (synthesized nodes) are position-independent and stay put.
fn shift_errors(errors: &[TypeError], delta: i64) -> Vec<TypeError> {
    if delta == 0 {
        return errors.to_vec();
    }
    errors
        .iter()
        .map(|e| {
            let mut e = e.clone();
            e.span = shift_span(e.span, delta);
            e
        })
        .collect()
}

fn shift_span(s: Span, delta: i64) -> Span {
    if s == Span::DUMMY {
        return s;
    }
    Span {
        start: (i64::from(s.start) + delta) as u32,
        end: (i64::from(s.end) + delta) as u32,
    }
}

// --------------------------------------------------------------- benching

/// One re-check measurement in a [`CheckBenchReport`].
#[derive(Debug, Clone)]
pub struct EditBenchRow {
    /// Batch index (application order).
    pub batch: usize,
    /// Edit kind: `"body"` or `"signature"`.
    pub kind: String,
    /// Classes re-checked (the dirty closure).
    pub dirty: usize,
    /// Class units reused from cache.
    pub reused: usize,
    /// Re-check wall clock in milliseconds (parse excluded).
    pub recheck_ms: f64,
    /// Diagnostics after the batch.
    pub errors: usize,
    /// Judgment-cache hit rate of the merged stats, in `[0, 1]`.
    pub hit_rate: f64,
}

/// The persisted checker-latency baseline (`rtj-check-bench/v1`): a full
/// from-scratch check versus per-edit incremental re-checks on the same
/// scaled workload. The analogue of `BENCH_interp.json` (VM speedup) and
/// `BENCH_serve.json` (serving throughput) for the checker.
#[derive(Debug, Clone)]
pub struct CheckBenchReport {
    /// Workload label, e.g. `"scaled:64"`.
    pub workload: String,
    /// Classes in the workload.
    pub classes: usize,
    /// `--jobs` used for both sides.
    pub jobs: usize,
    /// Seed of the edit generator.
    pub seed: u64,
    /// Edit batches applied.
    pub batches: usize,
    /// Median from-scratch `check_program_in` wall clock, ms (parse
    /// excluded — the incremental side excludes it too).
    pub full_check_ms: f64,
    /// The engine's initial (cache-cold) pass, ms.
    pub initial_check_ms: f64,
    /// Per-batch measurements.
    pub rows: Vec<EditBenchRow>,
}

impl CheckBenchReport {
    /// Median re-check latency over body-only batches, ms.
    pub fn body_p50_ms(&self) -> f64 {
        percentile(&self.kind_ms("body"), 50.0)
    }

    /// 95th-percentile re-check latency over body-only batches, ms.
    pub fn body_p95_ms(&self) -> f64 {
        percentile(&self.kind_ms("body"), 95.0)
    }

    /// Median re-check latency over signature batches, ms.
    pub fn sig_p50_ms(&self) -> f64 {
        percentile(&self.kind_ms("signature"), 50.0)
    }

    /// 95th-percentile re-check latency over signature batches, ms.
    pub fn sig_p95_ms(&self) -> f64 {
        percentile(&self.kind_ms("signature"), 95.0)
    }

    /// Median body-only re-check speedup over the from-scratch check —
    /// the headline number (target: ≥10x at `scaled_classes(64)`).
    pub fn body_speedup_p50(&self) -> f64 {
        let p50 = self.body_p50_ms();
        if p50 > 0.0 {
            self.full_check_ms / p50
        } else {
            0.0
        }
    }

    fn kind_ms(&self, kind: &str) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.recheck_ms)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v
    }

    /// Serializes to a versioned `rtj-check-bench/v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(CHECK_BENCH_SCHEMA.to_string())),
            ("workload", Json::Str(self.workload.clone())),
            ("classes", Json::Int(self.classes as i64)),
            ("jobs", Json::Int(self.jobs as i64)),
            ("seed", Json::Int(self.seed as i64)),
            ("batches", Json::Int(self.batches as i64)),
            ("full_check_ms", Json::Float(self.full_check_ms)),
            ("initial_check_ms", Json::Float(self.initial_check_ms)),
            (
                "summary",
                Json::obj(vec![
                    ("body_p50_ms", Json::Float(self.body_p50_ms())),
                    ("body_p95_ms", Json::Float(self.body_p95_ms())),
                    ("sig_p50_ms", Json::Float(self.sig_p50_ms())),
                    ("sig_p95_ms", Json::Float(self.sig_p95_ms())),
                    ("body_speedup_p50", Json::Float(self.body_speedup_p50())),
                ]),
            ),
            (
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("batch", Json::Int(r.batch as i64)),
                                ("kind", Json::Str(r.kind.clone())),
                                ("dirty", Json::Int(r.dirty as i64)),
                                ("reused", Json::Int(r.reused as i64)),
                                ("recheck_ms", Json::Float(r.recheck_ms)),
                                ("errors", Json::Int(r.errors as i64)),
                                ("hit_rate", Json::Float(r.hit_rate)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses an `rtj-check-bench/v1` document.
    ///
    /// # Errors
    ///
    /// Rejects documents with a missing/unknown schema or missing fields.
    pub fn from_json(v: &Json) -> Result<CheckBenchReport, JsonError> {
        let fail = |m: &str| JsonError {
            at: 0,
            message: m.to_string(),
        };
        match v.get("schema").and_then(Json::as_str) {
            Some(CHECK_BENCH_SCHEMA) => {}
            other => {
                return Err(fail(&format!(
                    "expected schema {CHECK_BENCH_SCHEMA:?}, found {other:?}"
                )))
            }
        }
        let f64_of = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| fail(&format!("missing number `{k}`")))
        };
        let u64_of = |k: &str| {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| fail(&format!("missing integer `{k}`")))
        };
        let mut rows = Vec::new();
        for r in v
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("missing `rows`"))?
        {
            let g64 = |k: &str| {
                r.get(k)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| fail(&format!("row missing `{k}`")))
            };
            rows.push(EditBenchRow {
                batch: g64("batch")? as usize,
                kind: r
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail("row missing `kind`"))?
                    .to_string(),
                dirty: g64("dirty")? as usize,
                reused: g64("reused")? as usize,
                recheck_ms: g64("recheck_ms")?,
                errors: g64("errors")? as usize,
                hit_rate: g64("hit_rate")?,
            });
        }
        Ok(CheckBenchReport {
            workload: v
                .get("workload")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("missing `workload`"))?
                .to_string(),
            classes: u64_of("classes")? as usize,
            jobs: u64_of("jobs")? as usize,
            seed: u64_of("seed")?,
            batches: u64_of("batches")? as usize,
            full_check_ms: f64_of("full_check_ms")?,
            initial_check_ms: f64_of("initial_check_ms")?,
            rows,
        })
    }

    /// Human-readable rendering (used by `rtjc report` and the bench's
    /// text mode).
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Incremental check bench — {} ({} classes, jobs {}, seed {})\n",
            self.workload, self.classes, self.jobs, self.seed
        ));
        out.push_str(&format!(
            "  full check (median)    {:>10.3} ms   (parse excluded on both sides)\n",
            self.full_check_ms
        ));
        out.push_str(&format!(
            "  initial engine pass    {:>10.3} ms\n",
            self.initial_check_ms
        ));
        out.push_str(&format!(
            "  body-only re-check     {:>10.3} ms p50   {:>8.3} ms p95   {:>6.1}x speedup (p50)\n",
            self.body_p50_ms(),
            self.body_p95_ms(),
            self.body_speedup_p50()
        ));
        if self.rows.iter().any(|r| r.kind == "signature") {
            out.push_str(&format!(
                "  signature re-check     {:>10.3} ms p50   {:>8.3} ms p95\n",
                self.sig_p50_ms(),
                self.sig_p95_ms()
            ));
        }
        out.push_str(&format!(
            "  {:>5}  {:>10}  {:>6}  {:>6}  {:>12}  {:>6}  {:>8}\n",
            "batch", "kind", "dirty", "reused", "recheck ms", "errors", "hit rate"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "  {:>5}  {:>10}  {:>6}  {:>6}  {:>12.3}  {:>6}  {:>7.1}%\n",
                r.batch,
                r.kind,
                r.dirty,
                r.reused,
                r.recheck_ms,
                r.errors,
                r.hit_rate * 100.0
            ));
        }
        out
    }
}

/// Nearest-rank percentile over an ascending-sorted slice (the same
/// convention the serving reports use). Empty input yields `0.0`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::check_program_in;

    fn src() -> String {
        "class B<Owner o> { int v; int get() { return this.v; } }\n\
         class A<Owner o> { B<o> f; int probe() { return this.f.get(); } }\n\
         { let b = new B<heap>; print(b.get()); }\n"
            .to_string()
    }

    #[test]
    fn initial_pass_matches_from_scratch() {
        let mut eng = IncrementalChecker::new(CheckOptions::default());
        let out = eng.check_source(&src()).unwrap();
        assert!(out.ok());
        assert!(out.full_rebuild);
        assert_eq!(out.dirty.len(), 2);
        let scratch =
            check_program_in(parse_program(&src()).unwrap(), &CheckOptions::default()).unwrap();
        assert_eq!(out.stats.judgments, scratch.stats.judgments);
        assert_eq!(out.stats.methods_checked, scratch.stats.methods_checked);
    }

    #[test]
    fn body_edit_rechecks_only_the_edited_class() {
        let mut eng = IncrementalChecker::new(CheckOptions::default());
        eng.check_source(&src()).unwrap();
        let out = eng
            .recheck(&[ClassEdit {
                class: "B".to_string(),
                source: "class B<Owner o> { int v; int get() { return this.v + 0; } }".to_string(),
            }])
            .unwrap();
        assert!(out.ok(), "{:?}", out.errors);
        assert!(!out.full_rebuild, "body edit must not rebuild the table");
        let names: Vec<&str> = out.dirty.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["B"]);
        assert_eq!(out.reused, 1);
    }

    #[test]
    fn signature_edit_invalidates_dependents() {
        let mut eng = IncrementalChecker::new(CheckOptions::default());
        eng.check_source(&src()).unwrap();
        let out = eng
            .recheck(&[ClassEdit {
                class: "B".to_string(),
                source: "class B<Owner o> { int v; int get() { return this.v; } \
                         int extra() { return 7; } }"
                    .to_string(),
            }])
            .unwrap();
        assert!(out.ok(), "{:?}", out.errors);
        assert!(out.full_rebuild);
        let names: Vec<&str> = out.dirty.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["B", "A"], "A references B and must re-check");
    }

    #[test]
    fn unknown_class_edit_is_rejected() {
        let mut eng = IncrementalChecker::new(CheckOptions::default());
        eng.check_source(&src()).unwrap();
        let err = eng
            .recheck(&[ClassEdit {
                class: "Zed".to_string(),
                source: "class Zed<Owner o> { }".to_string(),
            }])
            .unwrap_err();
        assert!(matches!(err, RecheckError::UnknownClass(_)));
    }

    #[test]
    fn bench_report_round_trips() {
        let rep = CheckBenchReport {
            workload: "scaled:8".to_string(),
            classes: 48,
            jobs: 1,
            seed: 1,
            batches: 2,
            full_check_ms: 4.0,
            initial_check_ms: 4.2,
            rows: vec![
                EditBenchRow {
                    batch: 0,
                    kind: "body".to_string(),
                    dirty: 1,
                    reused: 47,
                    recheck_ms: 0.25,
                    errors: 0,
                    hit_rate: 0.5,
                },
                EditBenchRow {
                    batch: 1,
                    kind: "signature".to_string(),
                    dirty: 3,
                    reused: 45,
                    recheck_ms: 1.5,
                    errors: 0,
                    hit_rate: 0.5,
                },
            ],
        };
        let back = CheckBenchReport::from_json(&rep.to_json()).unwrap();
        assert_eq!(back.rows.len(), 2);
        assert!((back.body_speedup_p50() - 16.0).abs() < 1e-9);
        assert!(back.render_report().contains("16.0x"));
    }
}
