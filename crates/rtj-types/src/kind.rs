//! Owner kinds and the subkinding relation (Figure 4 of the paper).
//!
//! ```text
//!                 Owner
//!               /       \
//!        ObjOwner      Region
//!                     /        \
//!               GCRegion    NoGCRegion
//!                           /         \
//!                  LocalRegion     SharedRegion
//!                                       |
//!                              user-defined region kinds
//! ```
//!
//! Additionally any region kind `k` has an `LT`-refined variant `k : LT`
//! (regions whose memory is preallocated), with `k : LT ≤ k`
//! (`[DELETE LT]`) and `k1 : LT ≤ k2 : LT` when `k1 ≤ k2` (`[ADD LT]`).

use crate::owner::{Owner, Subst};
use rtj_lang::intern::Symbol;
use std::fmt;

/// A (possibly user-defined, possibly LT-refined) owner kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Any owner.
    Owner,
    /// Owners that are objects.
    ObjOwner,
    /// Any region.
    Region,
    /// The garbage-collected heap.
    GcRegion,
    /// Any non-heap region.
    NoGcRegion,
    /// Lexically scoped thread-local regions.
    LocalRegion,
    /// Root of the shared region-kind hierarchy.
    SharedRegion,
    /// A user-declared shared region kind, with its owner arguments.
    Named {
        /// Kind name (interned).
        name: Symbol,
        /// Owner arguments.
        owners: Vec<Owner>,
    },
    /// `k : LT` — regions of kind `k` with preallocated (linear-time) memory.
    Lt(Box<Kind>),
}

impl Kind {
    /// Strips an `: LT` refinement, if present.
    pub fn without_lt(&self) -> &Kind {
        match self {
            Kind::Lt(inner) => inner,
            other => other,
        }
    }

    /// Adds an `: LT` refinement (idempotent).
    pub fn with_lt(self) -> Kind {
        match self {
            Kind::Lt(_) => self,
            other => Kind::Lt(Box::new(other)),
        }
    }

    /// Whether this kind classifies regions (as opposed to objects or
    /// unconstrained owners).
    pub fn is_region_kind(&self) -> bool {
        match self.without_lt() {
            Kind::Region
            | Kind::GcRegion
            | Kind::NoGcRegion
            | Kind::LocalRegion
            | Kind::SharedRegion
            | Kind::Named { .. } => true,
            Kind::Owner | Kind::ObjOwner => false,
            Kind::Lt(_) => unreachable!("without_lt strips LT"),
        }
    }

    /// Applies an owner substitution to the owner arguments of named kinds.
    pub fn subst(&self, s: &Subst) -> Kind {
        match self {
            Kind::Named { name, owners } => Kind::Named {
                name: *name,
                owners: s.apply_all(owners),
            },
            Kind::Lt(inner) => Kind::Lt(Box::new(inner.subst(s))),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Owner => f.write_str("Owner"),
            Kind::ObjOwner => f.write_str("ObjOwner"),
            Kind::Region => f.write_str("Region"),
            Kind::GcRegion => f.write_str("GCRegion"),
            Kind::NoGcRegion => f.write_str("NoGCRegion"),
            Kind::LocalRegion => f.write_str("LocalRegion"),
            Kind::SharedRegion => f.write_str("SharedRegion"),
            Kind::Named { name, owners } => {
                if owners.is_empty() {
                    f.write_str(name.as_str())
                } else {
                    let os: Vec<String> = owners.iter().map(|o| o.to_string()).collect();
                    write!(f, "{name}<{}>", os.join(", "))
                }
            }
            Kind::Lt(inner) => write!(f, "{inner} : LT"),
        }
    }
}

/// Access to the user region-kind hierarchy, provided by the program table.
pub trait RegionKindLookup {
    /// The declared super kind of `name`, with `owners` substituted for the
    /// kind's formals. Returns `None` if `name` is not a declared kind.
    fn super_kind_of(&self, name: Symbol, owners: &[Owner]) -> Option<Kind>;
}

/// An empty hierarchy (no user-declared region kinds); useful in tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoUserKinds;

impl RegionKindLookup for NoUserKinds {
    fn super_kind_of(&self, _name: Symbol, _owners: &[Owner]) -> Option<Kind> {
        None
    }
}

/// The subkinding judgment `P ⊢ k1 ≤ₖ k2`.
///
/// # Examples
///
/// ```
/// use rtj_types::kind::{is_subkind, Kind, NoUserKinds};
/// assert!(is_subkind(&NoUserKinds, &Kind::LocalRegion, &Kind::Region));
/// assert!(is_subkind(&NoUserKinds, &Kind::SharedRegion.with_lt(), &Kind::SharedRegion));
/// assert!(!is_subkind(&NoUserKinds, &Kind::Region, &Kind::GcRegion));
/// ```
pub fn is_subkind(kinds: &dyn RegionKindLookup, k1: &Kind, k2: &Kind) -> bool {
    subkind_with_guard(kinds, k1, k2, &mut Vec::new())
}

/// The subkinding judgment with a visited set guarding the user-kind
/// climb: `ProgramTable::build` rejects cyclic `regionKind` hierarchies,
/// but a custom [`RegionKindLookup`] (or a future caller checking
/// un-validated input) may still present a cyclic `extends` chain, which
/// previously recursed forever. A revisited named kind is treated as
/// unrelated, so the judgment stays total.
fn subkind_with_guard(
    kinds: &dyn RegionKindLookup,
    k1: &Kind,
    k2: &Kind,
    visiting: &mut Vec<(Symbol, Vec<Owner>)>,
) -> bool {
    use Kind::*;
    if k1 == k2 {
        return true;
    }
    match (k1, k2) {
        // [DELETE LT]: k : LT ≤ k (and transitively anything above k).
        (Lt(inner), _) if !matches!(k2, Lt(_)) => subkind_with_guard(kinds, inner, k2, visiting),
        // [ADD LT]: k1 : LT ≤ k2 : LT when k1 ≤ k2.
        (Lt(a), Lt(b)) => subkind_with_guard(kinds, a, b, visiting),
        (_, Lt(_)) => false,
        // Everything is an Owner.
        (_, Owner) => true,
        (ObjOwner, _) => false,
        (_, ObjOwner) => false,
        // [SUBKIND REGION]
        (GcRegion | NoGcRegion, Region) => true,
        // [SUBKIND NOGCREGION]
        (LocalRegion | SharedRegion, NoGcRegion | Region) => true,
        // User kinds climb their `extends` chain (root is SharedRegion).
        (Named { name, owners }, _) => {
            if visiting.iter().any(|(n, os)| n == name && os == owners) {
                return false;
            }
            visiting.push((*name, owners.clone()));
            match kinds.super_kind_of(*name, owners) {
                Some(sup) => subkind_with_guard(kinds, &sup, k2, visiting),
                None => false,
            }
        }
        _ => false,
    }
}

/// Derivation notes for the subkinding judgment: the premise chain
/// [`is_subkind`] explored, as human-readable lines for `--explain`.
///
/// For a user-declared kind this is its `extends` climb; the final line
/// states where the climb ended relative to Figure 4's lattice.
pub fn explain_subkind(kinds: &dyn RegionKindLookup, k1: &Kind, k2: &Kind) -> Vec<String> {
    let mut notes = Vec::new();
    if is_subkind(kinds, k1, k2) {
        notes.push(format!("`{k1} ≤ {k2}` holds"));
        return notes;
    }
    notes.push(format!("`{k1}` is not a subkind of `{k2}`"));
    // Replay the only chain-shaped rule: the user-kind `extends` climb.
    let mut cur = k1.without_lt().clone();
    let mut seen = 0;
    while let Kind::Named { name, owners } = &cur {
        match kinds.super_kind_of(*name, owners) {
            Some(sup) => {
                notes.push(format!("`{cur}` extends `{sup}`"));
                cur = sup;
            }
            None => {
                notes.push(format!("`{cur}` has no declared super kind"));
                break;
            }
        }
        seen += 1;
        if seen > 64 {
            notes.push("(cyclic `extends` chain — climb abandoned)".to_string());
            break;
        }
    }
    notes.push(format!(
        "the climb ends at `{cur}`, which is not below `{k2}` in the kind lattice \
         (Figure 4)"
    ));
    notes
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneKind;
    impl RegionKindLookup for OneKind {
        fn super_kind_of(&self, name: Symbol, _owners: &[Owner]) -> Option<Kind> {
            match name.as_str() {
                "BufferRegion" => Some(Kind::SharedRegion),
                "RingRegion" => Some(Kind::Named {
                    name: "BufferRegion".into(),
                    owners: vec![],
                }),
                _ => None,
            }
        }
    }

    fn named(n: &str) -> Kind {
        Kind::Named {
            name: n.into(),
            owners: vec![],
        }
    }

    #[test]
    fn lattice_spine() {
        let k = NoUserKinds;
        use Kind::*;
        for sub in [
            ObjOwner,
            Region,
            GcRegion,
            NoGcRegion,
            LocalRegion,
            SharedRegion,
        ] {
            assert!(is_subkind(&k, &sub, &Owner), "{sub} ≤ Owner");
        }
        assert!(is_subkind(&k, &GcRegion, &Region));
        assert!(is_subkind(&k, &NoGcRegion, &Region));
        assert!(is_subkind(&k, &LocalRegion, &NoGcRegion));
        assert!(is_subkind(&k, &SharedRegion, &NoGcRegion));
        assert!(!is_subkind(&k, &LocalRegion, &SharedRegion));
        assert!(!is_subkind(&k, &LocalRegion, &GcRegion));
        assert!(!is_subkind(&k, &GcRegion, &NoGcRegion));
        assert!(!is_subkind(&k, &Region, &GcRegion));
        assert!(!is_subkind(&k, &Owner, &Region));
        assert!(!is_subkind(&k, &ObjOwner, &Region));
        assert!(!is_subkind(&k, &Region, &ObjOwner));
    }

    #[test]
    fn user_kind_chain() {
        assert!(is_subkind(
            &OneKind,
            &named("BufferRegion"),
            &Kind::SharedRegion
        ));
        assert!(is_subkind(
            &OneKind,
            &named("RingRegion"),
            &Kind::SharedRegion
        ));
        assert!(is_subkind(
            &OneKind,
            &named("RingRegion"),
            &named("BufferRegion")
        ));
        assert!(!is_subkind(
            &OneKind,
            &named("BufferRegion"),
            &named("RingRegion")
        ));
        assert!(is_subkind(&OneKind, &named("RingRegion"), &Kind::Region));
        assert!(!is_subkind(
            &OneKind,
            &named("Mystery"),
            &Kind::SharedRegion
        ));
    }

    #[test]
    fn lt_refinement() {
        let k = NoUserKinds;
        let shared_lt = Kind::SharedRegion.with_lt();
        assert!(is_subkind(&k, &shared_lt, &Kind::SharedRegion));
        assert!(is_subkind(&k, &shared_lt, &Kind::NoGcRegion));
        assert!(is_subkind(&k, &shared_lt, &Kind::NoGcRegion.with_lt()));
        assert!(!is_subkind(&k, &Kind::SharedRegion, &shared_lt));
        assert!(is_subkind(
            &OneKind,
            &named("BufferRegion").with_lt(),
            &Kind::SharedRegion.with_lt()
        ));
        // with_lt is idempotent.
        assert_eq!(shared_lt.clone().with_lt(), shared_lt);
    }

    #[test]
    fn region_kind_predicate() {
        assert!(Kind::LocalRegion.is_region_kind());
        assert!(Kind::SharedRegion.with_lt().is_region_kind());
        assert!(!Kind::Owner.is_region_kind());
        assert!(!Kind::ObjOwner.is_region_kind());
    }

    /// Regression: a cyclic `extends` chain presented through the lookup
    /// trait must terminate (previously `is_subkind` recursed forever).
    #[test]
    fn cyclic_super_chain_terminates() {
        struct Cyclic;
        impl RegionKindLookup for Cyclic {
            fn super_kind_of(&self, name: Symbol, _owners: &[Owner]) -> Option<Kind> {
                match name.as_str() {
                    "A" => Some(Kind::Named {
                        name: "B".into(),
                        owners: vec![],
                    }),
                    "B" => Some(Kind::Named {
                        name: "A".into(),
                        owners: vec![],
                    }),
                    // C points at itself through an owner-varying cycle.
                    "C" => Some(Kind::Named {
                        name: "C".into(),
                        owners: vec![],
                    }),
                    _ => None,
                }
            }
        }
        // A cyclic chain never reaches SharedRegion: unrelated, not a hang.
        assert!(!is_subkind(&Cyclic, &named("A"), &Kind::SharedRegion));
        assert!(!is_subkind(&Cyclic, &named("C"), &Kind::SharedRegion));
        // Membership in the cycle is still reachable without the climb.
        assert!(is_subkind(&Cyclic, &named("A"), &named("B")));
        assert!(is_subkind(&Cyclic, &named("A"), &Kind::Owner));
        // LT refinements of cyclic kinds terminate too.
        assert!(!is_subkind(
            &Cyclic,
            &named("A").with_lt(),
            &Kind::SharedRegion
        ));
    }

    #[test]
    fn display() {
        assert_eq!(
            Kind::SharedRegion.with_lt().to_string(),
            "SharedRegion : LT"
        );
        let k = Kind::Named {
            name: "Buf".into(),
            owners: vec![Owner::Heap, Owner::This],
        };
        assert_eq!(k.to_string(), "Buf<heap, this>");
    }
}
