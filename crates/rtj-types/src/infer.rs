//! Type inference and default completion (Section 2.5 of the paper).
//!
//! The system is explicitly typed in principle, but a combination of
//! intra-procedural inference and well-chosen defaults keeps the annotation
//! burden low:
//!
//! * **Instance fields** with no owner arguments default to the owner of
//!   `this` (the enclosing class's first formal) in every position.
//! * **Method signatures** with no owner arguments default to
//!   `initialRegion`.
//! * **Portal fields** in region kinds default to `this` (the region).
//! * **`let` locals** without a type annotation take the type of their
//!   initializer (done in [`crate::check`]).
//! * **Call-site owner arguments** are inferred by unifying declared
//!   parameter types against argument types; parameters left unconstrained
//!   default to the caller's current region (which is what the callee's
//!   `initialRegion` denotes at this call).
//!
//! All completion is purely local, so separate compilation is preserved.

use crate::owner::Owner;
use crate::stype::SType;
use crate::table::{MethodSig, ProgramTable};
use rtj_lang::ast::{ClassType, OwnerRef, Program, Type};
use rtj_lang::intern::Symbol;
use rtj_lang::span::Span;
use std::collections::HashMap;

/// Number of owner formals per class (plus built-in `Object` with one).
fn class_formal_counts(p: &Program) -> HashMap<Symbol, usize> {
    let mut m = HashMap::new();
    m.insert(Symbol::intern("Object"), 1);
    for c in &p.classes {
        m.insert(c.name.name, c.formals.len());
    }
    m
}

fn fill_class_type(ct: &mut ClassType, counts: &HashMap<Symbol, usize>, default: &OwnerRef) {
    if !ct.owners.is_empty() {
        return;
    }
    if let Some(&n) = counts.get(&ct.name.name) {
        ct.owners = vec![default.clone(); n];
    }
}

fn fill_type(ty: &mut Type, counts: &HashMap<Symbol, usize>, default: &OwnerRef) {
    if let Type::Class(ct) = ty {
        fill_class_type(ct, counts, default);
    }
}

/// Applies declaration-level default completion in place: fields default
/// their owners to the enclosing class's first formal (the owner of
/// `this`), method parameter/return types to `initialRegion`, and portal
/// fields to `this` (the region). Types that already carry owner arguments
/// are left untouched.
pub fn apply_declaration_defaults(p: &mut Program) {
    let counts = class_formal_counts(p);
    for c in &mut p.classes {
        let field_default = match c.formals.first() {
            Some(f) => OwnerRef::Name(f.name),
            None => continue, // rejected later by the table's WF checks
        };
        for f in &mut c.fields {
            fill_type(&mut f.ty, &counts, &field_default);
        }
        let sig_default = OwnerRef::InitialRegion(Span::DUMMY);
        for m in &mut c.methods {
            fill_type(&mut m.ret, &counts, &sig_default);
            for param in &mut m.params {
                fill_type(&mut param.ty, &counts, &sig_default);
            }
        }
    }
    let portal_default = OwnerRef::This(Span::DUMMY);
    for rk in &mut p.region_kinds {
        for f in &mut rk.portals {
            fill_type(&mut f.ty, &counts, &portal_default);
        }
    }
}

/// Infers the owner arguments of a call whose method declares owner
/// formals but whose call site omits them, by unifying the declared
/// parameter types with the argument types. Unconstrained formals default
/// to `rcr`, the caller's current region.
///
/// # Errors
///
/// Returns a message when unification binds a formal to two different
/// owners.
pub fn infer_call_owner_args(
    table: &ProgramTable,
    sig: &MethodSig,
    arg_types: &[SType],
    rcr: &Owner,
) -> Result<Vec<Owner>, String> {
    let formal_names: Vec<Symbol> = sig.formals.iter().map(|(n, _)| *n).collect();
    let mut bindings: HashMap<Symbol, Owner> = HashMap::new();
    for ((_, pt), at) in sig.params.iter().zip(arg_types) {
        unify(table, pt, at, &formal_names, &mut bindings)?;
    }
    Ok(sig
        .formals
        .iter()
        .map(|(n, _)| bindings.get(n).copied().unwrap_or(*rcr))
        .collect())
}

fn unify(
    table: &ProgramTable,
    param: &SType,
    arg: &SType,
    formals: &[Symbol],
    bindings: &mut HashMap<Symbol, Owner>,
) -> Result<(), String> {
    match (param, arg) {
        (SType::Handle(po), SType::Handle(ao)) => unify_owner(po, ao, formals, bindings),
        (
            SType::Class {
                name: pn,
                owners: po,
            },
            SType::Class {
                name: an,
                owners: ao,
            },
        ) => {
            // View the argument type at the parameter's class by walking the
            // superclass chain, so inherited-parameter calls still unify.
            let viewed = view_as(table, *an, ao, *pn);
            let Some(ao) = viewed else {
                return Ok(()); // Not a subtype; the later subtype check reports it.
            };
            if po.len() != ao.len() {
                return Ok(());
            }
            for (p, a) in po.iter().zip(ao.iter()) {
                unify_owner(p, a, formals, bindings)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

/// Rewrites `sub<owners>` as an instance of superclass `target`, if
/// `target` is on `sub`'s superclass chain.
fn view_as(
    table: &ProgramTable,
    sub: Symbol,
    owners: &[Owner],
    target: Symbol,
) -> Option<Vec<Owner>> {
    let mut cur = (sub, owners.to_vec());
    let mut seen = std::collections::HashSet::new();
    loop {
        if !seen.insert(cur.0) {
            return None; // cyclic hierarchy (reported elsewhere)
        }
        if cur.0 == target {
            return Some(cur.1);
        }
        if cur.0 == "Object" {
            return None;
        }
        cur = table.superclass(cur.0, &cur.1)?;
    }
}

fn unify_owner(
    param: &Owner,
    arg: &Owner,
    formals: &[Symbol],
    bindings: &mut HashMap<Symbol, Owner>,
) -> Result<(), String> {
    if let Owner::Formal(f) = param {
        if formals.contains(f) {
            match bindings.get(f) {
                Some(prev) if prev != arg => {
                    return Err(format!(
                        "cannot infer owner `{f}`: bound to both `{prev}` and `{arg}`; \
                         pass owner arguments explicitly"
                    ));
                }
                Some(_) => {}
                None => {
                    bindings.insert(*f, *arg);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_lang::parser::parse_program;

    #[test]
    fn defaults_fill_fields_and_signatures() {
        let mut p = parse_program(
            r#"
            class C<Owner o, Owner p> {
                D data;
                D id(D x) { return x; }
            }
            class D<Owner a> { int v; }
            { }
            "#,
        )
        .unwrap();
        apply_declaration_defaults(&mut p);
        let c = &p.classes[0];
        match &c.fields[0].ty {
            Type::Class(ct) => {
                assert_eq!(ct.owners.len(), 1);
                assert!(matches!(&ct.owners[0], OwnerRef::Name(id) if id.name == "o"));
            }
            other => panic!("unexpected {other:?}"),
        }
        let m = &c.methods[0];
        match &m.ret {
            Type::Class(ct) => {
                assert!(matches!(ct.owners[0], OwnerRef::InitialRegion(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
        match &m.params[0].ty {
            Type::Class(ct) => {
                assert!(matches!(ct.owners[0], OwnerRef::InitialRegion(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn defaults_leave_annotated_types_alone() {
        let mut p = parse_program(
            r#"
            class C<Owner o> { D<heap> data; }
            class D<Owner a> { int v; }
            { }
            "#,
        )
        .unwrap();
        apply_declaration_defaults(&mut p);
        match &p.classes[0].fields[0].ty {
            Type::Class(ct) => assert!(matches!(ct.owners[0], OwnerRef::Heap(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn call_owner_inference_unifies() {
        let p = parse_program(
            r#"
            class C<Owner o> {
                void take<Owner q>(D<q> x, D<q> y) { }
            }
            class D<Owner a> { int v; }
            { }
            "#,
        )
        .unwrap();
        let table = ProgramTable::build(&p).unwrap();
        let sig = table.method_sig("C", &[Owner::Heap], "take").unwrap();
        let args = vec![
            SType::class("D", vec![Owner::Region("r".into())]),
            SType::class("D", vec![Owner::Region("r".into())]),
        ];
        let inferred = infer_call_owner_args(&table, &sig, &args, &Owner::Heap).unwrap();
        assert_eq!(inferred, vec![Owner::Region("r".into())]);

        // Conflicting bindings are an error.
        let args_bad = vec![
            SType::class("D", vec![Owner::Region("r".into())]),
            SType::class("D", vec![Owner::Heap]),
        ];
        assert!(infer_call_owner_args(&table, &sig, &args_bad, &Owner::Heap).is_err());

        // Unconstrained formals default to the current region.
        let args_null = vec![SType::Null, SType::Null];
        let inferred = infer_call_owner_args(&table, &sig, &args_null, &Owner::Immortal).unwrap();
        assert_eq!(inferred, vec![Owner::Immortal]);
    }
}
