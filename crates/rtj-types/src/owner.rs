//! Resolved owners.
//!
//! An [`Owner`] is the checker's internal, span-free form of the surface
//! [`OwnerRef`]: a class or method formal, a
//! lexically scoped region name, `this`, or one of the built-in owners.

use rtj_lang::ast::{Ident, OwnerRef};
use rtj_lang::intern::Symbol;
use rtj_lang::span::Span;
use std::fmt;

/// A resolved owner (the `o` of the paper's grammar).
///
/// Names are interned [`Symbol`]s, so owners are `Copy` and compare/hash
/// in O(1). Ordering follows string content (via `Symbol`'s `Ord`), so
/// `BTreeSet<Owner>` iteration is deterministic regardless of intern
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// A class or method formal owner parameter.
    Formal(Symbol),
    /// An in-scope region name.
    Region(Symbol),
    /// The current object.
    This,
    /// The most recent region created before the current method was called.
    InitialRegion,
    /// The garbage-collected heap region.
    Heap,
    /// The immortal region.
    Immortal,
    /// The `RT` pseudo-effect (only meaningful inside effects clauses).
    Rt,
}

impl Owner {
    /// Converts a surface owner reference, using `is_region` to distinguish
    /// in-scope region names from formal parameters.
    pub fn resolve(r: &OwnerRef, is_region: impl Fn(Symbol) -> bool) -> Owner {
        match r {
            OwnerRef::Name(id) if is_region(id.name) => Owner::Region(id.name),
            OwnerRef::Name(id) => Owner::Formal(id.name),
            OwnerRef::This(_) => Owner::This,
            OwnerRef::InitialRegion(_) => Owner::InitialRegion,
            OwnerRef::Heap(_) => Owner::Heap,
            OwnerRef::Immortal(_) => Owner::Immortal,
            OwnerRef::Rt(_) => Owner::Rt,
        }
    }

    /// Converts back to a surface owner reference (with a dummy span), used
    /// when the checker elaborates inferred owners into the AST.
    pub fn to_ref(&self) -> OwnerRef {
        match self {
            Owner::Formal(n) | Owner::Region(n) => {
                OwnerRef::Name(Ident::synthetic(n.as_str().to_owned()))
            }
            Owner::This => OwnerRef::This(Span::DUMMY),
            Owner::InitialRegion => OwnerRef::InitialRegion(Span::DUMMY),
            Owner::Heap => OwnerRef::Heap(Span::DUMMY),
            Owner::Immortal => OwnerRef::Immortal(Span::DUMMY),
            Owner::Rt => OwnerRef::Rt(Span::DUMMY),
        }
    }

    /// Whether this owner is one of the two built-in everlasting regions.
    pub fn is_everlasting(&self) -> bool {
        matches!(self, Owner::Heap | Owner::Immortal)
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Formal(n) | Owner::Region(n) => f.write_str(n.as_str()),
            Owner::This => f.write_str("this"),
            Owner::InitialRegion => f.write_str("initialRegion"),
            Owner::Heap => f.write_str("heap"),
            Owner::Immortal => f.write_str("immortal"),
            Owner::Rt => f.write_str("RT"),
        }
    }
}

/// A substitution from formal owner names to owners, plus optional
/// replacements for `this` and `initialRegion`.
///
/// Renaming (the paper's `Rename(·)`) is `subst ∪ {rcr/initialRegion}`,
/// and field/portal accesses substitute the receiver (or the region) for
/// `this`.
#[derive(Debug, Clone, Default)]
pub struct Subst {
    pairs: Vec<(Symbol, Owner)>,
    /// Replacement for the literal owner `this`, if any.
    pub this_to: Option<Owner>,
    /// Replacement for `initialRegion`, if any.
    pub initial_to: Option<Owner>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Builds a substitution mapping each formal name to the matching owner.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths (callers check arity
    /// first and report a proper type error).
    pub fn from_formals(formals: &[Symbol], owners: &[Owner]) -> Self {
        assert_eq!(formals.len(), owners.len(), "substitution arity mismatch");
        Subst {
            pairs: formals
                .iter()
                .copied()
                .zip(owners.iter().copied())
                .collect(),
            this_to: None,
            initial_to: None,
        }
    }

    /// Adds a formal↦owner pair.
    pub fn push(&mut self, formal: impl Into<Symbol>, owner: Owner) {
        self.pairs.push((formal.into(), owner));
    }

    /// Sets the replacement for `this`.
    pub fn with_this(mut self, o: Owner) -> Self {
        self.this_to = Some(o);
        self
    }

    /// Sets the replacement for `initialRegion`.
    pub fn with_initial(mut self, o: Owner) -> Self {
        self.initial_to = Some(o);
        self
    }

    /// Applies the substitution to one owner.
    pub fn apply(&self, o: &Owner) -> Owner {
        match o {
            Owner::Formal(n) => self
                .pairs
                .iter()
                .find(|(f, _)| f == n)
                .map(|(_, to)| *to)
                .unwrap_or(*o),
            Owner::This => self.this_to.unwrap_or(Owner::This),
            Owner::InitialRegion => self.initial_to.unwrap_or(Owner::InitialRegion),
            _ => *o,
        }
    }

    /// Applies the substitution to a list of owners.
    pub fn apply_all(&self, os: &[Owner]) -> Vec<Owner> {
        os.iter().map(|o| self.apply(o)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_distinguishes_regions_from_formals() {
        let r = OwnerRef::Name(Ident::synthetic("r1"));
        assert_eq!(
            Owner::resolve(&r, |n| n == "r1"),
            Owner::Region("r1".into())
        );
        assert_eq!(Owner::resolve(&r, |_| false), Owner::Formal("r1".into()));
    }

    #[test]
    fn subst_applies_formals_and_specials() {
        let mut s = Subst::new().with_this(Owner::Region("r".into()));
        s.push("a", Owner::Heap);
        assert_eq!(s.apply(&Owner::Formal("a".into())), Owner::Heap);
        assert_eq!(
            s.apply(&Owner::Formal("b".into())),
            Owner::Formal("b".into())
        );
        assert_eq!(s.apply(&Owner::This), Owner::Region("r".into()));
        assert_eq!(s.apply(&Owner::InitialRegion), Owner::InitialRegion);
        let s2 = Subst::new().with_initial(Owner::Heap);
        assert_eq!(s2.apply(&Owner::InitialRegion), Owner::Heap);
        assert_eq!(s2.apply(&Owner::This), Owner::This);
    }

    #[test]
    fn owner_ref_round_trip() {
        for o in [
            Owner::Formal("f".into()),
            Owner::Region("r".into()),
            Owner::This,
            Owner::InitialRegion,
            Owner::Heap,
            Owner::Immortal,
            Owner::Rt,
        ] {
            let back = Owner::resolve(&o.to_ref(), |n| n == "r");
            assert_eq!(back, o);
        }
    }
}
