//! Checker self-profiling: the phase-span tree and the versioned
//! `rtj-checker-metrics/v1` snapshot.
//!
//! This is the static-checker half of the repo's observability story,
//! mirroring `rtj-runtime`'s `rtj-metrics/v1`: where the runtime counts
//! the dynamic checks it performs (and elides), this module accounts for
//! the *static* effort that made the elision sound — per-phase wall
//! time, per-judgment-family cache traffic, and interner footprint.
//!
//! Profiling is opt-in through [`crate::CheckOptions::profile`] and
//! zero-cost when disabled: the checking driver takes no per-phase or
//! per-class timestamps unless the flag is set.
//!
//! Determinism contract (inherited from the parallel driver): two runs
//! of the same program at the same `--jobs` produce snapshots with the
//! same *structure* — span tree shape and names, judgment counters,
//! interner sizes — while wall-clock fields (`elapsed_ns`, `start_ns`,
//! `wall_ns`) may differ. [`CheckerSnapshot::structure`] erases exactly
//! the timing fields so tests can assert structural identity.

use crate::check::CheckStats;
use crate::env::JudgmentCounters;
use rtj_lang::json::{Json, JsonError};
use std::time::Duration;

/// Schema identifier embedded in every checker snapshot document.
pub const CHECKER_METRICS_SCHEMA: &str = "rtj-checker-metrics/v1";

/// One timed span in the checker's phase tree.
///
/// `start` is the offset from the profile epoch (the moment
/// `check_program_in` began), so sibling spans from parallel workers can
/// be laid out on a timeline; `wall` is the span's duration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Span name (phase name, or `class <Name>` for per-class spans).
    pub name: String,
    /// Offset from the profile epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// Nested child spans (per-class spans under the `classes` phase).
    pub children: Vec<PhaseSpan>,
}

impl PhaseSpan {
    /// A leaf span with no children.
    pub fn leaf(name: impl Into<String>, start: Duration, wall: Duration) -> PhaseSpan {
        PhaseSpan {
            name: name.into(),
            start,
            wall,
            children: Vec::new(),
        }
    }

    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name", Json::Str(self.name.clone())),
            ("start_ns", Json::Int(self.start.as_nanos() as i64)),
            ("wall_ns", Json::Int(self.wall.as_nanos() as i64)),
        ];
        if !self.children.is_empty() {
            fields.push((
                "children",
                Json::Arr(self.children.iter().map(PhaseSpan::to_json).collect()),
            ));
        }
        Json::obj(fields)
    }

    fn from_json(v: &Json) -> Result<PhaseSpan, JsonError> {
        let name = field_str(v, "name")?;
        let start = Duration::from_nanos(field_u64(v, "start_ns")?);
        let wall = Duration::from_nanos(field_u64(v, "wall_ns")?);
        let children = match v.get("children") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(PhaseSpan::from_json)
                .collect::<Result<_, _>>()?,
            Some(_) => return Err(bad("`children` must be an array")),
            None => Vec::new(),
        };
        Ok(PhaseSpan {
            name,
            start,
            wall,
            children,
        })
    }

    fn zero_timings(&mut self) {
        self.start = Duration::ZERO;
        self.wall = Duration::ZERO;
        for c in &mut self.children {
            c.zero_timings();
        }
    }
}

/// The raw phase-span tree recorded by a profiled checking run, before
/// it is folded into a [`CheckerSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckProfile {
    /// Top-level phase spans, in pipeline order.
    pub phases: Vec<PhaseSpan>,
}

impl CheckProfile {
    /// Inserts a span before every recorded phase. The CLI uses this to
    /// prepend the `parse` span, which runs before `check_program_in`
    /// (and therefore before the profile epoch; its `start` is zero).
    pub fn prepend(&mut self, span: PhaseSpan) {
        self.phases.insert(0, span);
    }
}

/// Cache counters for one judgment family as carried by a snapshot.
///
/// `evals` counts actual deduction runs; with a memo table in front of
/// every family this equals `misses`, but the schema keeps it explicit
/// so the invariant is visible (and checkable) in the document itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JudgmentProfile {
    /// Queries answered from the memo table.
    pub hits: u64,
    /// Queries not found in the memo table.
    pub misses: u64,
    /// Underlying deduction evaluations (== `misses`).
    pub evals: u64,
}

/// A versioned `rtj-checker-metrics/v1` snapshot: the static checker's
/// counters plus (when profiling was enabled) its phase-span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckerSnapshot {
    /// Classes checked.
    pub classes_checked: u64,
    /// Method bodies checked.
    pub methods_checked: u64,
    /// Worker threads used for the class-checking phase.
    pub threads_used: u64,
    /// Wall-clock time of the whole checking run.
    pub elapsed: Duration,
    /// Per-judgment-family cache counters, in stable rendering order.
    pub judgments: Vec<(String, JudgmentProfile)>,
    /// Distinct interned symbols alive in the process.
    pub interner_symbols: u64,
    /// Total bytes of interned string contents.
    pub interner_bytes: u64,
    /// Top-level phase spans (empty if profiling was disabled).
    pub phases: Vec<PhaseSpan>,
}

impl CheckerSnapshot {
    /// Builds a snapshot from a run's stats and (optional) span tree,
    /// sampling the global interner sizes at call time.
    pub fn capture(stats: &CheckStats, profile: Option<&CheckProfile>) -> CheckerSnapshot {
        let (symbols, bytes) = rtj_lang::intern::intern_table_stats();
        CheckerSnapshot {
            classes_checked: stats.classes_checked as u64,
            methods_checked: stats.methods_checked as u64,
            threads_used: stats.threads_used as u64,
            elapsed: stats.elapsed,
            judgments: judgment_profiles(&stats.judgments),
            interner_symbols: symbols as u64,
            interner_bytes: bytes as u64,
            phases: profile.map(|p| p.phases.clone()).unwrap_or_default(),
        }
    }

    /// The snapshot as a JSON document (insertion-ordered, so rendering
    /// is byte-deterministic for a given snapshot).
    pub fn to_json(&self) -> Json {
        let judgments = Json::Obj(
            self.judgments
                .iter()
                .map(|(name, j)| {
                    (
                        name.clone(),
                        Json::obj(vec![
                            ("hits", Json::Int(j.hits as i64)),
                            ("misses", Json::Int(j.misses as i64)),
                            ("evals", Json::Int(j.evals as i64)),
                        ]),
                    )
                })
                .collect(),
        );
        let hits: u64 = self.judgments.iter().map(|(_, j)| j.hits).sum();
        let misses: u64 = self.judgments.iter().map(|(_, j)| j.misses).sum();
        Json::obj(vec![
            ("schema", Json::Str(CHECKER_METRICS_SCHEMA.to_string())),
            ("classes_checked", Json::Int(self.classes_checked as i64)),
            ("methods_checked", Json::Int(self.methods_checked as i64)),
            ("threads_used", Json::Int(self.threads_used as i64)),
            ("elapsed_ns", Json::Int(self.elapsed.as_nanos() as i64)),
            // Summary counters duplicate the per-family sums so simple
            // consumers need not walk `judgments`; `from_json` derives
            // them back from the families.
            ("cache_hits", Json::Int(hits as i64)),
            ("cache_misses", Json::Int(misses as i64)),
            ("judgments", judgments),
            (
                "interner",
                Json::obj(vec![
                    ("symbols", Json::Int(self.interner_symbols as i64)),
                    ("bytes", Json::Int(self.interner_bytes as i64)),
                ]),
            ),
            (
                "phases",
                Json::Arr(self.phases.iter().map(PhaseSpan::to_json).collect()),
            ),
        ])
    }

    /// Renders the snapshot as a compact JSON string.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a snapshot document, validating the schema tag.
    pub fn parse(text: &str) -> Result<CheckerSnapshot, JsonError> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Reads a snapshot back from its JSON form.
    pub fn from_json(v: &Json) -> Result<CheckerSnapshot, JsonError> {
        match v.get("schema") {
            Some(Json::Str(s)) if s == CHECKER_METRICS_SCHEMA => {}
            _ => return Err(bad("not an rtj-checker-metrics/v1 document")),
        }
        let judgments = match v.get("judgments") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(name, jv)| {
                    Ok((
                        name.clone(),
                        JudgmentProfile {
                            hits: field_u64(jv, "hits")?,
                            misses: field_u64(jv, "misses")?,
                            evals: field_u64(jv, "evals")?,
                        },
                    ))
                })
                .collect::<Result<_, JsonError>>()?,
            _ => return Err(bad("`judgments` must be an object")),
        };
        let interner = v.get("interner").ok_or_else(|| bad("missing `interner`"))?;
        let phases = match v.get("phases") {
            Some(Json::Arr(items)) => items
                .iter()
                .map(PhaseSpan::from_json)
                .collect::<Result<_, _>>()?,
            _ => return Err(bad("`phases` must be an array")),
        };
        Ok(CheckerSnapshot {
            classes_checked: field_u64(v, "classes_checked")?,
            methods_checked: field_u64(v, "methods_checked")?,
            threads_used: field_u64(v, "threads_used")?,
            elapsed: Duration::from_nanos(field_u64(v, "elapsed_ns")?),
            judgments,
            interner_symbols: field_u64(interner, "symbols")?,
            interner_bytes: field_u64(interner, "bytes")?,
            phases,
        })
    }

    /// A copy with every timing field (`elapsed`, span `start`/`wall`)
    /// zeroed. Two profiled runs of the same program with the same
    /// options must produce equal structures — that is the determinism
    /// contract the test suite asserts.
    pub fn structure(&self) -> CheckerSnapshot {
        let mut s = self.clone();
        s.elapsed = Duration::ZERO;
        for p in &mut s.phases {
            p.zero_timings();
        }
        s
    }

    /// The span tree as Chrome trace-event JSON (an array of `"ph":"X"`
    /// complete events, timestamps in microseconds), loadable in
    /// `chrome://tracing` or Perfetto.
    ///
    /// Spans are placed on trace "threads" (tids) by a deterministic
    /// greedy lane assignment per nesting depth, so parallel per-class
    /// spans that overlap in time render side by side instead of on top
    /// of each other.
    pub fn to_chrome_trace(&self) -> Json {
        Json::Arr(self.chrome_events())
    }

    /// The same trace events as [`CheckerSnapshot::to_chrome_trace`],
    /// one JSON object per line (the runtime trace sink's format).
    pub fn to_trace_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.chrome_events() {
            out.push_str(&ev.render());
            out.push('\n');
        }
        out
    }

    fn chrome_events(&self) -> Vec<Json> {
        let mut events = Vec::new();
        emit_chrome(&self.phases, 0, &mut events);
        events
    }

    /// A human-readable rendering (the `rtjc report` view).
    pub fn render_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "static checker ({CHECKER_METRICS_SCHEMA})");
        let _ = writeln!(out, "  classes checked : {}", self.classes_checked);
        let _ = writeln!(out, "  methods checked : {}", self.methods_checked);
        let _ = writeln!(out, "  threads used    : {}", self.threads_used);
        let _ = writeln!(out, "  wall time       : {:?}", self.elapsed);
        let _ = writeln!(
            out,
            "  interner        : {} symbols, {} bytes",
            self.interner_symbols, self.interner_bytes
        );
        let _ = writeln!(out, "  judgment caches:");
        let _ = writeln!(
            out,
            "    {:<10} {:>10} {:>10} {:>10} {:>9}",
            "family", "hits", "misses", "evals", "hit rate"
        );
        for (name, j) in &self.judgments {
            let total = j.hits + j.misses;
            let rate = if total == 0 {
                0.0
            } else {
                j.hits as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "    {:<10} {:>10} {:>10} {:>10} {:>8.1}%",
                name,
                j.hits,
                j.misses,
                j.evals,
                rate * 100.0
            );
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "  phases:");
            for p in &self.phases {
                render_span(&mut out, p, 2);
            }
        }
        out
    }
}

fn judgment_profiles(j: &JudgmentCounters) -> Vec<(String, JudgmentProfile)> {
    j.families()
        .iter()
        .map(|(name, f)| {
            (
                name.to_string(),
                JudgmentProfile {
                    hits: f.hits,
                    misses: f.misses,
                    evals: f.misses,
                },
            )
        })
        .collect()
}

fn render_span(out: &mut String, span: &PhaseSpan, indent: usize) {
    use std::fmt::Write as _;
    let pad = "  ".repeat(indent);
    let _ = writeln!(out, "{pad}{:<24} {:?}", span.name, span.wall);
    for c in &span.children {
        render_span(out, c, indent + 1);
    }
}

/// Emits complete events for `spans` and their children. Lane assignment
/// is greedy within one sibling list: a span takes the first lane whose
/// previous occupant ended before the span started (relevant for
/// parallel per-class spans, which overlap in time).
fn emit_chrome(spans: &[PhaseSpan], base_tid: i64, events: &mut Vec<Json>) {
    let mut lane_ends: Vec<Duration> = Vec::new();
    for span in spans {
        let end = span.start + span.wall;
        let lane = match lane_ends.iter().position(|&e| e <= span.start) {
            Some(i) => {
                lane_ends[i] = end;
                i
            }
            None => {
                lane_ends.push(end);
                lane_ends.len() - 1
            }
        };
        events.push(Json::obj(vec![
            ("name", Json::Str(span.name.clone())),
            ("cat", Json::Str("checker".to_string())),
            ("ph", Json::Str("X".to_string())),
            ("ts", Json::Int(span.start.as_micros() as i64)),
            ("dur", Json::Int(span.wall.as_micros() as i64)),
            ("pid", Json::Int(0)),
            ("tid", Json::Int(base_tid + lane as i64)),
        ]));
        emit_chrome(&span.children, base_tid + lane as i64, events);
    }
}

fn bad(message: &str) -> JsonError {
    JsonError {
        at: 0,
        message: message.to_string(),
    }
}

fn field_u64(v: &Json, name: &str) -> Result<u64, JsonError> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(&format!("missing or non-integer field `{name}`")))
}

fn field_str(v: &Json, name: &str) -> Result<String, JsonError> {
    match v.get(name) {
        Some(Json::Str(s)) => Ok(s.clone()),
        _ => Err(bad(&format!("missing or non-string field `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CheckerSnapshot {
        CheckerSnapshot {
            classes_checked: 3,
            methods_checked: 7,
            threads_used: 4,
            elapsed: Duration::from_micros(1500),
            judgments: vec![
                (
                    "ownership".to_string(),
                    JudgmentProfile {
                        hits: 10,
                        misses: 4,
                        evals: 4,
                    },
                ),
                (
                    "outlives".to_string(),
                    JudgmentProfile {
                        hits: 20,
                        misses: 6,
                        evals: 6,
                    },
                ),
            ],
            interner_symbols: 42,
            interner_bytes: 321,
            phases: vec![
                PhaseSpan::leaf("lower", Duration::ZERO, Duration::from_micros(10)),
                PhaseSpan {
                    name: "classes".to_string(),
                    start: Duration::from_micros(10),
                    wall: Duration::from_micros(900),
                    children: vec![
                        PhaseSpan::leaf(
                            "class A",
                            Duration::from_micros(10),
                            Duration::from_micros(400),
                        ),
                        PhaseSpan::leaf(
                            "class B",
                            Duration::from_micros(15),
                            Duration::from_micros(420),
                        ),
                    ],
                },
            ],
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let s = sample();
        let text = s.render();
        let back = CheckerSnapshot::parse(&text).unwrap();
        assert_eq!(s, back);
        // Rendering is stable.
        assert_eq!(text, back.render());
    }

    #[test]
    fn parse_rejects_wrong_schema() {
        assert!(CheckerSnapshot::parse(r#"{"schema":"rtj-metrics/v1"}"#).is_err());
        assert!(CheckerSnapshot::parse(r#"{}"#).is_err());
    }

    #[test]
    fn structure_erases_only_timings() {
        let s = sample();
        let t = s.structure();
        assert_eq!(t.elapsed, Duration::ZERO);
        assert_eq!(t.phases[1].children[0].wall, Duration::ZERO);
        // Counters and shape survive.
        assert_eq!(t.classes_checked, s.classes_checked);
        assert_eq!(t.judgments, s.judgments);
        assert_eq!(t.phases.len(), s.phases.len());
        assert_eq!(t.phases[1].children.len(), 2);
        // Two snapshots differing only in timings agree structurally.
        let mut other = sample();
        other.elapsed = Duration::from_secs(9);
        other.phases[0].wall = Duration::from_secs(1);
        assert_ne!(s, other);
        assert_eq!(s.structure(), other.structure());
    }

    #[test]
    fn chrome_trace_shape() {
        let s = sample();
        let Json::Arr(events) = s.to_chrome_trace() else {
            panic!("chrome trace must be a JSON array");
        };
        assert_eq!(events.len(), 4, "one complete event per span");
        for ev in &events {
            assert_eq!(ev.get("ph"), Some(&Json::Str("X".to_string())));
            assert!(ev.get("ts").and_then(Json::as_u64).is_some());
            assert!(ev.get("dur").and_then(Json::as_u64).is_some());
        }
        // The two overlapping class spans land on different lanes.
        let tids: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.get("name"), Some(Json::Str(n)) if n.starts_with("class ")))
            .map(|e| e.get("tid").cloned())
            .collect();
        assert_ne!(tids[0], tids[1]);
        // JSONL is the same events, one per line.
        assert_eq!(s.to_trace_jsonl().lines().count(), 4);
    }

    #[test]
    fn report_mentions_families_and_phases() {
        let r = sample().render_report();
        assert!(r.contains("ownership"));
        assert!(r.contains("class A"));
        assert!(r.contains("classes checked : 3"));
    }
}
