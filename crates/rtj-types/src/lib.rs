//! The ownership/region type system of *Ownership Types for Safe
//! Region-Based Memory Management in Real-Time Java* (PLDI 2003) —
//! the paper's primary contribution.
//!
//! The system unifies **region types** (no dangling references: an object
//! may only point to objects in regions that outlive its own) with
//! **ownership types** (object encapsulation: an object's representation
//! cannot be accessed from outside its owner), extends them to
//! multithreaded programs (shared regions, subregions, typed portal
//! fields), and to real-time programs (LT/VT allocation policies, RT/NoRT
//! subregions, effects clauses that keep `NoHeapRealtimeThread`s away from
//! the garbage-collected heap).
//!
//! Well-typed programs satisfy the paper's Theorems 3 and 4: field reads
//! and writes never follow dangling references and real-time threads never
//! touch heap references — so the RTSJ runtime checks can be elided, which
//! is exactly what `rtj-interp`'s static check mode does.
//!
//! # Example
//!
//! ```
//! use rtj_lang::parser::parse_program;
//! use rtj_types::check_program;
//!
//! // Figure 5: a stack whose nodes are owned by the stack itself.
//! let program = parse_program(r#"
//!     class TStack<Owner stackOwner, Owner TOwner> {
//!         TNode<this, TOwner> head;
//!         void push(T<TOwner> value) {
//!             let TNode<this, TOwner> n = new TNode<this, TOwner>;
//!             n.init(value, this.head);
//!             this.head = n;
//!         }
//!     }
//!     class TNode<Owner nodeOwner, Owner TOwner> {
//!         T<TOwner> value;
//!         TNode<nodeOwner, TOwner> next;
//!         void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
//!             this.value = v;
//!             this.next = n;
//!         }
//!     }
//!     class T<Owner o> { int x; }
//!     {
//!         (RHandle<r1> h1) {
//!             (RHandle<r2> h2) {
//!                 let TStack<r2, r1> s2 = new TStack<r2, r1>;
//!             }
//!         }
//!     }
//! "#).unwrap();
//! let checked = check_program(&program).expect("well-typed");
//! assert!(checked.table.class("TStack").is_some());
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod env;
pub mod error;
pub mod incremental;
pub mod infer;
pub mod kind;
pub mod lower;
pub mod owner;
pub mod profile;
pub mod stype;
pub mod table;

pub use check::{check_program, check_program_in, CheckOptions, CheckStats, Checked};
pub use env::{Effects, Env, FamilyCounters, JudgmentCounters};
pub use error::TypeError;
pub use incremental::{
    CheckBenchReport, ClassEdit, EditBenchRow, IncrementalChecker, RecheckError, RecheckOutcome,
    CHECK_BENCH_SCHEMA,
};
pub use kind::Kind;
pub use owner::Owner;
pub use profile::{CheckProfile, CheckerSnapshot, PhaseSpan, CHECKER_METRICS_SCHEMA};
pub use stype::SType;
pub use table::ProgramTable;
