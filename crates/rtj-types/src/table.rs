//! The program table: indexed class and region-kind declarations with
//! inheritance-aware member lookup and the structural well-formedness
//! predicates of Figure 15 (`WFClasses`, `WFRegionKinds`, `MembersOnce`).
//!
//! `InheritanceOK` (constraint/override compatibility) needs the deduction
//! engine and is checked in [`crate::check`].

use crate::error::TypeError;
use crate::kind::{Kind, RegionKindLookup};
use crate::owner::{Owner, Subst};
use crate::stype::SType;
use rtj_lang::ast::{
    ClassDecl, ConstraintRel, KindAnn, MethodDecl, Policy, Program, RegionKindDecl, ThreadTag, Type,
};
use rtj_lang::intern::Symbol;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A resolved `where`-clause constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SConstraint {
    /// Left operand.
    pub lhs: Owner,
    /// `owns` or `outlives`.
    pub rel: ConstraintRel,
    /// Right operand.
    pub rhs: Owner,
}

impl SConstraint {
    /// Applies an owner substitution to both sides.
    pub fn subst(&self, s: &Subst) -> SConstraint {
        SConstraint {
            lhs: s.apply(&self.lhs),
            rel: self.rel,
            rhs: s.apply(&self.rhs),
        }
    }
}

/// Resolves a surface type to a semantic type. `is_region` distinguishes
/// in-scope region names from formal owner parameters.
pub fn resolve_type(ty: &Type, is_region: &dyn Fn(Symbol) -> bool) -> SType {
    match ty {
        Type::Int(_) => SType::Int,
        Type::Bool(_) => SType::Bool,
        Type::Void(_) => SType::Void,
        Type::Class(ct) => SType::Class {
            name: ct.name.name,
            owners: ct
                .owners
                .iter()
                .map(|o| Owner::resolve(o, is_region))
                .collect(),
        },
        Type::Handle(r, _) => SType::Handle(Owner::resolve(r, is_region)),
    }
}

/// Resolves a surface kind annotation to a semantic kind.
pub fn resolve_kind(k: &KindAnn, is_region: &dyn Fn(Symbol) -> bool) -> Kind {
    match k {
        KindAnn::Owner(_) => Kind::Owner,
        KindAnn::ObjOwner(_) => Kind::ObjOwner,
        KindAnn::Region(_) => Kind::Region,
        KindAnn::GcRegion(_) => Kind::GcRegion,
        KindAnn::NoGcRegion(_) => Kind::NoGcRegion,
        KindAnn::LocalRegion(_) => Kind::LocalRegion,
        KindAnn::SharedRegion(_) => Kind::SharedRegion,
        KindAnn::Named { name, owners } => Kind::Named {
            name: name.name,
            owners: owners
                .iter()
                .map(|o| Owner::resolve(o, is_region))
                .collect(),
        },
        KindAnn::Lt(inner, _) => Kind::Lt(Box::new(resolve_kind(inner, is_region))),
    }
}

fn resolve_constraints(
    cs: &[rtj_lang::ast::Constraint],
    is_region: &dyn Fn(Symbol) -> bool,
) -> Vec<SConstraint> {
    cs.iter()
        .map(|c| SConstraint {
            lhs: Owner::resolve(&c.lhs, is_region),
            rel: c.rel,
            rhs: Owner::resolve(&c.rhs, is_region),
        })
        .collect()
}

/// In declarations, plain owner names are always formals (region names are
/// never in scope at declaration level).
fn no_regions(_: Symbol) -> bool {
    false
}

/// A class with pre-resolved formal kinds and constraints.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// The (default-completed) declaration. Shared (`Arc`): `ClassInfo`
    /// is cloned on hot checking paths, and the declaration — method
    /// bodies included — is by far its heaviest part.
    pub decl: Arc<ClassDecl>,
    /// Names of the formal owner parameters (interned).
    pub formal_names: Vec<Symbol>,
    /// Resolved kinds of the formals.
    pub formal_kinds: Vec<Kind>,
    /// Resolved `where` constraints.
    pub constraints: Vec<SConstraint>,
}

/// A region kind with pre-resolved formal kinds and constraints.
#[derive(Debug, Clone)]
pub struct RegionKindInfo {
    /// The declaration. Shared (`Arc`), like [`ClassInfo::decl`].
    pub decl: Arc<RegionKindDecl>,
    /// Names of the formal owner parameters (interned).
    pub formal_names: Vec<Symbol>,
    /// Resolved kinds of the formals.
    pub formal_kinds: Vec<Kind>,
    /// Resolved `where` constraints.
    pub constraints: Vec<SConstraint>,
}

/// A method signature as seen from a particular receiver type: the class
/// owner parameters of every class on the inheritance path have been
/// substituted away; the method's own formals remain symbolic.
#[derive(Debug, Clone)]
pub struct MethodSig {
    /// The class that declares the method.
    pub declared_in: Symbol,
    /// Method formal owner parameters (name, kind).
    pub formals: Vec<(Symbol, Kind)>,
    /// Value parameters (name, type).
    pub params: Vec<(Symbol, SType)>,
    /// Return type.
    pub ret: SType,
    /// Effects (`accesses`) clause, with the default applied when omitted:
    /// all class and method owner parameters plus `initialRegion`.
    pub effects: Vec<Owner>,
    /// `where` constraints introduced by the method.
    pub constraints: Vec<SConstraint>,
    /// Whether the *declared* signature mentions the literal owner `this`.
    /// Such methods may only be invoked on a receiver that is literally
    /// `this` (otherwise `this` in the signature would be captured by the
    /// caller's context).
    pub declared_mentions_this: bool,
}

impl MethodSig {
    /// Whether the literal owner `this` occurs anywhere in the signature.
    pub fn mentions_this(&self) -> bool {
        self.params.iter().any(|(_, t)| t.mentions_this())
            || self.ret.mentions_this()
            || self.effects.contains(&Owner::This)
            || self
                .constraints
                .iter()
                .any(|c| c.lhs == Owner::This || c.rhs == Owner::This)
    }

    fn subst(&self, s: &Subst) -> MethodSig {
        MethodSig {
            declared_in: self.declared_in,
            declared_mentions_this: self.declared_mentions_this,
            formals: self.formals.iter().map(|(n, k)| (*n, k.subst(s))).collect(),
            params: self.params.iter().map(|(n, t)| (*n, t.subst(s))).collect(),
            ret: self.ret.subst(s),
            effects: s.apply_all(&self.effects),
            constraints: self.constraints.iter().map(|c| c.subst(s)).collect(),
        }
    }
}

/// A resolved subregion declaration as seen from a parent region instance.
#[derive(Debug, Clone)]
pub struct SubregionInfo {
    /// The subregion's kind (owner arguments substituted; `this` still
    /// denotes the parent region and is substituted by the caller).
    pub kind: Kind,
    /// Allocation policy.
    pub policy: Policy,
    /// RT / NoRT reservation.
    pub thread: ThreadTag,
}

/// Indexed program declarations.
#[derive(Debug, Clone)]
pub struct ProgramTable {
    classes: HashMap<Symbol, ClassInfo>,
    region_kinds: HashMap<Symbol, RegionKindInfo>,
}

impl RegionKindLookup for ProgramTable {
    fn super_kind_of(&self, name: Symbol, owners: &[Owner]) -> Option<Kind> {
        let info = self.region_kinds.get(&name)?;
        if owners.len() != info.formal_names.len() {
            return None;
        }
        let s = Subst::from_formals(&info.formal_names, owners);
        Some(match &info.decl.extends {
            Some(k) => resolve_kind(k, &no_regions).subst(&s),
            None => Kind::SharedRegion,
        })
    }
}

impl ProgramTable {
    /// Builds a table from a program, enforcing `WFClasses`,
    /// `WFRegionKinds` (including subregion finiteness), and `MembersOnce`.
    ///
    /// # Errors
    ///
    /// Returns every structural error found (duplicates, cycles, unknown
    /// superclasses/kinds, arity mismatches on `extends`).
    pub fn build(p: &Program) -> Result<ProgramTable, Vec<TypeError>> {
        let mut errors = Vec::new();
        let mut classes = HashMap::new();
        for c in &p.classes {
            if c.name.name == "Object" {
                errors.push(TypeError::new("class `Object` is built in", c.name.span));
                continue;
            }
            let formal_names: Vec<Symbol> = c.formals.iter().map(|f| f.name.name).collect();
            let formal_kinds: Vec<Kind> = c
                .formals
                .iter()
                .map(|f| resolve_kind(&f.kind, &no_regions))
                .collect();
            let constraints = resolve_constraints(&c.where_clauses, &no_regions);
            let info = ClassInfo {
                decl: Arc::new(c.clone()),
                formal_names,
                formal_kinds,
                constraints,
            };
            if classes.insert(c.name.name, info).is_some() {
                errors.push(TypeError::new(
                    format!("class `{}` is defined twice", c.name),
                    c.name.span,
                ));
            }
        }
        let mut region_kinds = HashMap::new();
        for rk in &p.region_kinds {
            if rk.name.name == "SharedRegion" {
                errors.push(TypeError::new(
                    "region kind `SharedRegion` is built in",
                    rk.name.span,
                ));
                continue;
            }
            let formal_names: Vec<Symbol> = rk.formals.iter().map(|f| f.name.name).collect();
            let formal_kinds: Vec<Kind> = rk
                .formals
                .iter()
                .map(|f| resolve_kind(&f.kind, &no_regions))
                .collect();
            let constraints = resolve_constraints(&rk.where_clauses, &no_regions);
            let info = RegionKindInfo {
                decl: Arc::new(rk.clone()),
                formal_names,
                formal_kinds,
                constraints,
            };
            if region_kinds.insert(rk.name.name, info).is_some() {
                errors.push(TypeError::new(
                    format!("region kind `{}` is defined twice", rk.name),
                    rk.name.span,
                ));
            }
        }
        let table = ProgramTable {
            classes,
            region_kinds,
        };
        table.check_class_hierarchy(&mut errors);
        table.check_region_kind_hierarchy(&mut errors);
        table.check_members_once(&mut errors);
        table.check_subregion_finiteness(&mut errors);
        if errors.is_empty() {
            Ok(table)
        } else {
            Err(errors)
        }
    }

    /// Replaces the stored declarations with `p`'s, keeping the resolved
    /// formal kinds and constraints and running no validation.
    ///
    /// Used by the checking driver after owner inference writes elided
    /// owner arguments back into method bodies: elaboration changes
    /// expression-level types only, so the structural facts computed by
    /// [`ProgramTable::build`] still hold and revalidating the hierarchy
    /// would double the table-construction cost of every check.
    pub fn refresh_decls(&mut self, p: &Program) {
        for c in &p.classes {
            if let Some(info) = self.classes.get_mut(&c.name.name) {
                info.decl = Arc::new(c.clone());
            }
        }
        for rk in &p.region_kinds {
            if let Some(info) = self.region_kinds.get_mut(&rk.name.name) {
                info.decl = Arc::new(rk.clone());
            }
        }
    }

    /// Replaces one class's stored declaration, keeping its resolved
    /// formal kinds and constraints (the single-class analogue of
    /// [`ProgramTable::refresh_decls`]). Used by the incremental checker:
    /// when a class's *signature* fingerprint is unchanged, the structural
    /// facts `build` computed still hold, but the declaration's spans (and
    /// possibly its method bodies) moved, so the stored decl — which error
    /// reporting for that class reads — must be the current one.
    pub fn refresh_class_decl(&mut self, name: Symbol, decl: &ClassDecl) {
        if let Some(info) = self.classes.get_mut(&name) {
            info.decl = Arc::new(decl.clone());
        }
    }

    /// Looks up a class.
    pub fn class(&self, name: impl Into<Symbol>) -> Option<&ClassInfo> {
        self.classes.get(&name.into())
    }

    /// Looks up a region kind.
    pub fn region_kind(&self, name: impl Into<Symbol>) -> Option<&RegionKindInfo> {
        self.region_kinds.get(&name.into())
    }

    /// Iterates over all classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassInfo> {
        self.classes.values()
    }

    /// Iterates over all region kinds.
    pub fn region_kinds(&self) -> impl Iterator<Item = &RegionKindInfo> {
        self.region_kinds.values()
    }

    /// The superclass of `name` as a `(class, owner-args)` pair, after
    /// substituting `owners` for `name`'s formals. Every user class without
    /// an `extends` clause (and `Object` itself) returns `None`.
    pub fn superclass(
        &self,
        name: impl Into<Symbol>,
        owners: &[Owner],
    ) -> Option<(Symbol, Vec<Owner>)> {
        let info = self.classes.get(&name.into())?;
        if owners.len() != info.formal_names.len() {
            return None;
        }
        let s = Subst::from_formals(&info.formal_names, owners);
        match &info.decl.extends {
            Some(ct) => {
                let args: Vec<Owner> = ct
                    .owners
                    .iter()
                    .map(|o| s.apply(&Owner::resolve(o, no_regions)))
                    .collect();
                Some((ct.name.name, args))
            }
            None => {
                // Implicit `extends Object<firstFormal>`.
                let first = *owners.first()?;
                Some((Symbol::intern("Object"), vec![first]))
            }
        }
    }

    /// Whether `sub<sub_owners>` is a subtype of `sup<sup_owners>` via the
    /// superclass chain ([SUBTYPE CLASS] closed under reflexivity and
    /// transitivity).
    pub fn is_subclass(
        &self,
        sub: impl Into<Symbol>,
        sub_owners: &[Owner],
        sup: impl Into<Symbol>,
        sup_owners: &[Owner],
    ) -> bool {
        let sup = sup.into();
        let object = Symbol::intern("Object");
        let mut cur = (sub.into(), sub_owners.to_vec());
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur.0) {
                return false; // cyclic hierarchy (reported by build)
            }
            if cur.0 == sup && cur.1 == sup_owners {
                return true;
            }
            if cur.0 == object {
                return false;
            }
            match self.superclass(cur.0, &cur.1) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Semantic subtyping over [`SType`]s: reflexivity, `Null ≤` any class
    /// type, and class subtyping along the superclass chain.
    pub fn is_subtype(&self, sub: &SType, sup: &SType) -> bool {
        match (sub, sup) {
            _ if sub == sup => true,
            (SType::Null, SType::Class { .. }) => true,
            (
                SType::Class {
                    name: n1,
                    owners: o1,
                },
                SType::Class {
                    name: n2,
                    owners: o2,
                },
            ) => self.is_subclass(*n1, o1, *n2, o2),
            _ => false,
        }
    }

    /// The type of field `field` of an object of type `class<owners>`,
    /// searching the inheritance chain and substituting owner arguments.
    /// Any `this` remaining in the result denotes the *receiver*.
    pub fn field_type(
        &self,
        class: impl Into<Symbol>,
        owners: &[Owner],
        field: impl Into<Symbol>,
    ) -> Option<SType> {
        let field = field.into();
        let object = Symbol::intern("Object");
        let mut cur = (class.into(), owners.to_vec());
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur.0) {
                return None; // cyclic hierarchy (reported by build)
            }
            let info = self.classes.get(&cur.0)?;
            if cur.1.len() != info.formal_names.len() {
                return None;
            }
            if let Some(f) = info.decl.fields.iter().find(|f| f.name.name == field) {
                let s = Subst::from_formals(&info.formal_names, &cur.1);
                return Some(resolve_type(&f.ty, &no_regions).subst(&s));
            }
            cur = self.superclass(cur.0, &cur.1)?;
            if cur.0 == object {
                return None;
            }
        }
    }

    /// All fields (inherited first) of `class<owners>` as
    /// `(name, substituted type)` pairs; used by the interpreter to lay out
    /// objects and by the checker to audit field well-formedness.
    pub fn all_fields(&self, class: impl Into<Symbol>, owners: &[Owner]) -> Vec<(Symbol, SType)> {
        let object = Symbol::intern("Object");
        let mut chain = Vec::new();
        let mut cur = (class.into(), owners.to_vec());
        let mut seen = HashSet::new();
        while cur.0 != object {
            if !seen.insert(cur.0) {
                break; // cyclic hierarchy (reported by build)
            }
            let Some(info) = self.classes.get(&cur.0) else {
                break;
            };
            if cur.1.len() != info.formal_names.len() {
                break;
            }
            chain.push(cur.clone());
            match self.superclass(cur.0, &cur.1) {
                Some(next) => cur = next,
                None => break,
            }
        }
        let mut out = Vec::new();
        for (name, owners) in chain.iter().rev() {
            let info = &self.classes[name];
            let s = Subst::from_formals(&info.formal_names, owners);
            for f in &info.decl.fields {
                out.push((f.name.name, resolve_type(&f.ty, &no_regions).subst(&s)));
            }
        }
        out
    }

    /// The signature of method `method` on a receiver of type
    /// `class<owners>`, searching the inheritance chain; class owner
    /// parameters are substituted away, method formals stay symbolic, and
    /// `this`/`initialRegion` are left for the call rule to substitute.
    pub fn method_sig(
        &self,
        class: impl Into<Symbol>,
        owners: &[Owner],
        method: impl Into<Symbol>,
    ) -> Option<MethodSig> {
        let (decl_class, decl_owners, m) = self.resolve_method(class, owners, method)?;
        let info = &self.classes[&decl_class];
        let sig = raw_method_sig(decl_class, info, m);
        let s = Subst::from_formals(&info.formal_names, &decl_owners);
        Some(sig.subst(&s))
    }

    /// Whether the *declared* type of `field` (found along the inheritance
    /// chain of `class`) mentions the literal owner `this`. Such fields can
    /// only be accessed through a receiver that is literally `this`.
    pub fn field_declared_mentions_this(
        &self,
        class: impl Into<Symbol>,
        field: impl Into<Symbol>,
    ) -> Option<bool> {
        let field = field.into();
        let mut cur = class.into();
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur) {
                return None; // cyclic hierarchy (reported by build)
            }
            let info = self.classes.get(&cur)?;
            if let Some(f) = info.decl.fields.iter().find(|f| f.name.name == field) {
                return Some(resolve_type(&f.ty, &no_regions).mentions_this());
            }
            match &info.decl.extends {
                Some(ct) if ct.name.name != "Object" => cur = ct.name.name,
                _ => return None,
            }
        }
    }

    /// Finds the declaring class, its substituted owner arguments, and the
    /// method declaration for a call on `class<owners>`. Used by both the
    /// checker and the interpreter (dynamic dispatch starts at the object's
    /// allocated class).
    pub fn resolve_method(
        &self,
        class: impl Into<Symbol>,
        owners: &[Owner],
        method: impl Into<Symbol>,
    ) -> Option<(Symbol, Vec<Owner>, &MethodDecl)> {
        let method = method.into();
        let object = Symbol::intern("Object");
        let mut cur = (class.into(), owners.to_vec());
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur.0) {
                return None; // cyclic hierarchy (reported by build)
            }
            let info = self.classes.get(&cur.0)?;
            if cur.1.len() != info.formal_names.len() {
                return None;
            }
            if let Some(m) = info.decl.methods.iter().find(|m| m.name.name == method) {
                return Some((cur.0, cur.1.clone(), m));
            }
            cur = self.superclass(cur.0, &cur.1)?;
            if cur.0 == object {
                return None;
            }
        }
    }

    /// The subregion member `sub` of a region of kind `kind<owners>`,
    /// searching the region-kind hierarchy. The returned kind's `this`
    /// still denotes the parent region.
    pub fn subregion(
        &self,
        kind: impl Into<Symbol>,
        owners: &[Owner],
        sub: impl Into<Symbol>,
    ) -> Option<SubregionInfo> {
        let sub = sub.into();
        let mut cur = Kind::Named {
            name: kind.into(),
            owners: owners.to_vec(),
        };
        let mut seen = HashSet::new();
        loop {
            let (name, owners) = match &cur {
                Kind::Named { name, owners } => (*name, owners.clone()),
                _ => return None,
            };
            if !seen.insert(name) {
                return None; // cyclic kind hierarchy (reported by build)
            }
            let info = self.region_kinds.get(&name)?;
            if owners.len() != info.formal_names.len() {
                return None;
            }
            let s = Subst::from_formals(&info.formal_names, &owners);
            if let Some(sr) = info.decl.subregions.iter().find(|s| s.name.name == sub) {
                return Some(SubregionInfo {
                    kind: resolve_kind(&sr.kind, &no_regions).subst(&s),
                    policy: sr.policy,
                    thread: sr.thread,
                });
            }
            cur = self.super_kind_of(name, &owners)?;
        }
    }

    /// The type of portal field `field` of a region of kind `kind<owners>`,
    /// searching the region-kind hierarchy. Any `this` in the result
    /// denotes the region itself (the caller substitutes the region).
    pub fn portal_type(
        &self,
        kind: impl Into<Symbol>,
        owners: &[Owner],
        field: impl Into<Symbol>,
    ) -> Option<SType> {
        let field = field.into();
        let mut cur = Kind::Named {
            name: kind.into(),
            owners: owners.to_vec(),
        };
        let mut seen = HashSet::new();
        loop {
            let (name, owners) = match &cur {
                Kind::Named { name, owners } => (*name, owners.clone()),
                _ => return None,
            };
            if !seen.insert(name) {
                return None; // cyclic kind hierarchy (reported by build)
            }
            let info = self.region_kinds.get(&name)?;
            if owners.len() != info.formal_names.len() {
                return None;
            }
            if let Some(f) = info.decl.portals.iter().find(|f| f.name.name == field) {
                let s = Subst::from_formals(&info.formal_names, &owners);
                return Some(resolve_type(&f.ty, &no_regions).subst(&s));
            }
            cur = self.super_kind_of(name, &owners)?;
        }
    }

    /// All portal fields (inherited first) of a region kind.
    pub fn all_portals(&self, kind: impl Into<Symbol>, owners: &[Owner]) -> Vec<(Symbol, SType)> {
        let mut chain = Vec::new();
        let mut cur = Kind::Named {
            name: kind.into(),
            owners: owners.to_vec(),
        };
        let mut seen = HashSet::new();
        while let Kind::Named { name, owners } = cur.clone() {
            if !self.region_kinds.contains_key(&name) || !seen.insert(name) {
                break;
            }
            chain.push((name, owners.clone()));
            match self.super_kind_of(name, &owners) {
                Some(k) => cur = k,
                None => break,
            }
        }
        let mut out = Vec::new();
        for (name, owners) in chain.iter().rev() {
            let info = &self.region_kinds[name];
            let s = Subst::from_formals(&info.formal_names, owners);
            for f in &info.decl.portals {
                out.push((f.name.name, resolve_type(&f.ty, &no_regions).subst(&s)));
            }
        }
        out
    }

    /// All subregion members (inherited first) of a region kind, with
    /// `this` in subregion kinds left denoting the parent region.
    pub fn all_subregions(
        &self,
        kind: impl Into<Symbol>,
        owners: &[Owner],
    ) -> Vec<(Symbol, SubregionInfo)> {
        let mut out = Vec::new();
        let mut cur = Kind::Named {
            name: kind.into(),
            owners: owners.to_vec(),
        };
        let mut chain = Vec::new();
        let mut seen = HashSet::new();
        while let Kind::Named { name, owners } = cur.clone() {
            if !self.region_kinds.contains_key(&name) || !seen.insert(name) {
                break;
            }
            chain.push((name, owners.clone()));
            match self.super_kind_of(name, &owners) {
                Some(k) => cur = k,
                None => break,
            }
        }
        for (name, owners) in chain.iter().rev() {
            let info = &self.region_kinds[name];
            let s = Subst::from_formals(&info.formal_names, owners);
            for sr in &info.decl.subregions {
                out.push((
                    sr.name.name,
                    SubregionInfo {
                        kind: resolve_kind(&sr.kind, &no_regions).subst(&s),
                        policy: sr.policy,
                        thread: sr.thread,
                    },
                ));
            }
        }
        out
    }

    // ------------------------------------------------- structural WF checks

    fn check_class_hierarchy(&self, errors: &mut Vec<TypeError>) {
        for (name, info) in &self.classes {
            // Detect unknown superclasses and cycles by walking up with a
            // visited set.
            let mut seen = HashSet::new();
            seen.insert(*name);
            let mut cur = info.decl.extends.as_ref().map(|ct| ct.name.name);
            while let Some(c) = cur {
                if c == "Object" {
                    break;
                }
                if !seen.insert(c) {
                    errors.push(TypeError::new(
                        format!("cycle in class hierarchy involving `{name}`"),
                        info.decl.name.span,
                    ));
                    break;
                }
                match self.classes.get(&c) {
                    Some(next) => {
                        cur = next.decl.extends.as_ref().map(|ct| ct.name.name);
                    }
                    None => {
                        errors.push(TypeError::new(
                            format!("unknown superclass `{c}` of `{name}`"),
                            info.decl.name.span,
                        ));
                        break;
                    }
                }
            }
            // The superclass's first owner must be the subclass's first
            // formal ([SUBTYPE CLASS] shape): this preserves "first owner
            // owns the object" along the chain.
            if let Some(ct) = &info.decl.extends {
                if ct.name.name != "Object" || !ct.owners.is_empty() {
                    let first_formal = info.formal_names.first();
                    let ok = match (ct.owners.first(), first_formal) {
                        (Some(rtj_lang::ast::OwnerRef::Name(id)), Some(f)) => *f == id.name,
                        _ => false,
                    };
                    if !ok {
                        errors.push(TypeError::new(
                            format!(
                                "the first owner of the superclass of `{name}` must be \
                                 `{name}`'s first formal owner parameter"
                            ),
                            ct.span,
                        ));
                    }
                }
            }
            // Arity of extends.
            if let Some(ct) = &info.decl.extends {
                if let Some(sup) = self.classes.get(&ct.name.name) {
                    if sup.formal_names.len() != ct.owners.len() {
                        errors.push(TypeError::new(
                            format!(
                                "superclass `{}` expects {} owner argument(s), found {}",
                                ct.name,
                                sup.formal_names.len(),
                                ct.owners.len()
                            ),
                            ct.span,
                        ));
                    }
                } else if ct.name.name == "Object" && ct.owners.len() != 1 {
                    errors.push(TypeError::new(
                        "`Object` expects exactly one owner argument",
                        ct.span,
                    ));
                }
            }
            if info.decl.formals.is_empty() {
                errors.push(TypeError::new(
                    format!(
                        "class `{name}` must declare at least one owner parameter \
                         (the first owner owns the object)"
                    ),
                    info.decl.name.span,
                ));
            }
        }
    }

    fn check_region_kind_hierarchy(&self, errors: &mut Vec<TypeError>) {
        for (name, info) in &self.region_kinds {
            let mut seen = HashSet::new();
            seen.insert(*name);
            let mut cur = info.decl.extends.clone();
            loop {
                match cur {
                    None | Some(KindAnn::SharedRegion(_)) => break,
                    Some(KindAnn::Named { name: n, .. }) => {
                        if !seen.insert(n.name) {
                            errors.push(TypeError::new(
                                format!("cycle in region-kind hierarchy involving `{name}`"),
                                info.decl.name.span,
                            ));
                            break;
                        }
                        match self.region_kinds.get(&n.name) {
                            Some(next) => cur = next.decl.extends.clone(),
                            None => {
                                errors.push(TypeError::new(
                                    format!("unknown super region kind `{n}` of `{name}`"),
                                    n.span,
                                ));
                                break;
                            }
                        }
                    }
                    Some(other) => {
                        errors.push(TypeError::new(
                            format!(
                                "region kinds must extend `SharedRegion` or another \
                                 shared region kind, not `{:?}`",
                                other
                            ),
                            info.decl.name.span,
                        ));
                        break;
                    }
                }
            }
        }
    }

    fn check_members_once(&self, errors: &mut Vec<TypeError>) {
        for info in self.classes.values() {
            let mut field_names = HashSet::new();
            for f in &info.decl.fields {
                if !field_names.insert(f.name.name) {
                    errors.push(TypeError::new(
                        format!("duplicate field `{}`", f.name),
                        f.name.span,
                    ));
                }
            }
            let mut method_names = HashSet::new();
            for m in &info.decl.methods {
                if !method_names.insert(m.name.name) {
                    errors.push(TypeError::new(
                        format!("duplicate method `{}` (no overloading)", m.name),
                        m.name.span,
                    ));
                }
                let mut owner_names: HashSet<Symbol> = info.formal_names.iter().copied().collect();
                for f in &m.formals {
                    if !owner_names.insert(f.name.name) {
                        errors.push(TypeError::new(
                            format!(
                                "method owner parameter `{}` shadows another owner parameter",
                                f.name
                            ),
                            f.name.span,
                        ));
                    }
                }
            }
            let mut formal_set = HashSet::new();
            for f in &info.formal_names {
                if !formal_set.insert(*f) {
                    errors.push(TypeError::new(
                        format!("duplicate owner parameter `{f}`"),
                        info.decl.name.span,
                    ));
                }
            }
            // Fields inherited from superclasses must not be redeclared.
            if let Some((sup, sup_args)) = info
                .decl
                .extends
                .as_ref()
                .filter(|ct| ct.name.name != "Object")
                .map(|ct| {
                    let args: Vec<Owner> = ct
                        .owners
                        .iter()
                        .map(|o| Owner::resolve(o, no_regions))
                        .collect();
                    (ct.name.name, args)
                })
            {
                for (fname, _) in self.all_fields(sup, &sup_args) {
                    if field_names.contains(&fname) {
                        errors.push(TypeError::new(
                            format!("field `{fname}` is already declared in a superclass"),
                            info.decl.name.span,
                        ));
                    }
                }
            }
        }
        for info in self.region_kinds.values() {
            let mut names = HashSet::new();
            for f in &info.decl.portals {
                if !names.insert(f.name.name) {
                    errors.push(TypeError::new(
                        format!("duplicate portal field `{}`", f.name),
                        f.name.span,
                    ));
                }
            }
            for s in &info.decl.subregions {
                if !names.insert(s.name.name) {
                    errors.push(TypeError::new(
                        format!("duplicate subregion `{}`", s.name),
                        s.name.span,
                    ));
                }
            }
        }
    }

    /// "Our system checks that a region has a finite number of transitive
    /// subregions": the graph kind → subregion kinds must be acyclic.
    fn check_subregion_finiteness(&self, errors: &mut Vec<TypeError>) {
        // Edges over kind *names* (inheritance included).
        let edges: HashMap<Symbol, Vec<Symbol>> = self
            .region_kinds
            .iter()
            .map(|(name, info)| {
                let mut outs = Vec::new();
                for sr in &info.decl.subregions {
                    if let KindAnn::Named { name: n, .. } = &sr.kind {
                        outs.push(n.name);
                    }
                }
                (*name, outs)
            })
            .collect();
        // Inherited subregions also count.
        let parents: HashMap<Symbol, Option<Symbol>> = self
            .region_kinds
            .iter()
            .map(|(name, info)| {
                let p = match &info.decl.extends {
                    Some(KindAnn::Named { name: n, .. }) => Some(n.name),
                    _ => None,
                };
                (*name, p)
            })
            .collect();
        let all_subs = |k: Symbol| -> Vec<Symbol> {
            let mut out = Vec::new();
            let mut cur = Some(k);
            while let Some(c) = cur {
                if let Some(es) = edges.get(&c) {
                    out.extend(es.iter().copied());
                }
                cur = parents.get(&c).copied().flatten();
            }
            out
        };
        for name in self.region_kinds.keys() {
            // DFS from `name` through subregion edges looking for `name`.
            let mut stack = all_subs(*name);
            let mut seen = HashSet::new();
            while let Some(k) = stack.pop() {
                if k == *name {
                    errors.push(TypeError::new(
                        format!(
                            "region kind `{name}` has an infinite number of transitive \
                             subregions (cycle through subregion declarations)"
                        ),
                        self.region_kinds[name].decl.name.span,
                    ));
                    break;
                }
                if seen.insert(k) {
                    stack.extend(all_subs(k));
                }
            }
        }
    }
}

/// The signature of a method in its declaring class's own formal context.
pub(crate) fn raw_method_sig(class: Symbol, info: &ClassInfo, m: &MethodDecl) -> MethodSig {
    let formals: Vec<(Symbol, Kind)> = m
        .formals
        .iter()
        .map(|f| (f.name.name, resolve_kind(&f.kind, &no_regions)))
        .collect();
    let params: Vec<(Symbol, SType)> = m
        .params
        .iter()
        .map(|p| (p.name.name, resolve_type(&p.ty, &no_regions)))
        .collect();
    let ret = resolve_type(&m.ret, &no_regions);
    let effects = match &m.effects {
        Some(list) => list.iter().map(|o| Owner::resolve(o, no_regions)).collect(),
        None => {
            // Default: all class and method owner parameters + initialRegion.
            let mut fx: Vec<Owner> = info
                .formal_names
                .iter()
                .map(|n| Owner::Formal(*n))
                .collect();
            fx.extend(formals.iter().map(|(n, _)| Owner::Formal(*n)));
            fx.push(Owner::InitialRegion);
            fx
        }
    };
    let constraints = resolve_constraints(&m.where_clauses, &no_regions);
    let declared_mentions_this = params.iter().any(|(_, t)| t.mentions_this())
        || ret.mentions_this()
        || effects.contains(&Owner::This)
        || constraints
            .iter()
            .any(|c| c.lhs == Owner::This || c.rhs == Owner::This);
    MethodSig {
        declared_in: class,
        formals,
        params,
        ret,
        effects,
        constraints,
        declared_mentions_this,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_lang::parser::parse_program;

    fn table(src: &str) -> Result<ProgramTable, Vec<TypeError>> {
        let p = parse_program(src).unwrap();
        ProgramTable::build(&p)
    }

    #[test]
    fn builds_simple_program() {
        let t = table(
            r#"
            class TStack<Owner stackOwner, Owner TOwner> {
                TNode<this, TOwner> head;
                void push(T<TOwner> value) { }
            }
            class TNode<Owner nodeOwner, Owner TOwner> {
                T<TOwner> value;
                TNode<nodeOwner, TOwner> next;
            }
            class T<Owner o> { int x; }
            { }
            "#,
        )
        .unwrap();
        assert!(t.class("TStack").is_some());
        let ft = t
            .field_type("TStack", &[Owner::Region("r".into()), Owner::Heap], "head")
            .unwrap();
        assert_eq!(ft, SType::class("TNode", vec![Owner::This, Owner::Heap]));
    }

    #[test]
    fn rejects_duplicates_and_cycles() {
        assert!(table("class A<Owner o> { } class A<Owner o> { } { }").is_err());
        assert!(
            table("class A<Owner o> extends B<o> { } class B<Owner o> extends A<o> { } { }")
                .is_err()
        );
        assert!(table("class A<Owner o> { int x; int x; } { }").is_err());
        assert!(
            table("class A<Owner o> { int m() { return 1; } int m() { return 2; } } { }").is_err()
        );
        assert!(table("class A<Owner o, Owner o> { } { }").is_err());
        assert!(table("class A { } { }").is_err(), "zero formals rejected");
    }

    #[test]
    fn rejects_unknown_superclass_and_bad_first_owner() {
        assert!(table("class A<Owner o> extends Ghost<o> { } { }").is_err());
        assert!(
            table("class A<Owner o, Owner p> extends B<p> { } class B<Owner o> { } { }").is_err(),
            "superclass first owner must be the subclass's first formal"
        );
        assert!(
            table("class A<Owner o, Owner p> extends B<o> { } class B<Owner o> { } { }").is_ok()
        );
    }

    #[test]
    fn inherited_fields_and_methods() {
        let t = table(
            r#"
            class B<Owner o> {
                C<o> data;
                C<o> get() { return this.data; }
            }
            class A<Owner o, Owner p> extends B<o> {
                C<p> extra;
            }
            class C<Owner o> { int v; }
            { }
            "#,
        )
        .unwrap();
        let owners = vec![Owner::Heap, Owner::Immortal];
        assert_eq!(
            t.field_type("A", &owners, "data"),
            Some(SType::class("C", vec![Owner::Heap]))
        );
        let fields = t.all_fields("A", &owners);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "data");
        let sig = t.method_sig("A", &owners, "get").unwrap();
        assert_eq!(sig.ret, SType::class("C", vec![Owner::Heap]));
        assert_eq!(sig.declared_in, "B");
        // Default effects: class formals (substituted) + initialRegion.
        assert!(sig.effects.contains(&Owner::Heap));
        assert!(sig.effects.contains(&Owner::InitialRegion));
    }

    #[test]
    fn region_kind_lookup_and_subregions() {
        let t = table(
            r#"
            regionKind BufferRegion extends SharedRegion {
                subregion BufferSubRegion : LT(4096) NoRT b;
            }
            regionKind BufferSubRegion extends SharedRegion {
                Frame<this> f;
            }
            class Frame<Owner o> { int data; }
            { }
            "#,
        )
        .unwrap();
        let sub = t.subregion("BufferRegion", &[], "b").unwrap();
        assert_eq!(sub.policy, Policy::Lt { size: 4096 });
        assert_eq!(sub.thread, ThreadTag::NoRt);
        let pt = t.portal_type("BufferSubRegion", &[], "f").unwrap();
        assert_eq!(pt, SType::class("Frame", vec![Owner::This]));
        assert_eq!(
            t.super_kind_of("BufferRegion".into(), &[]),
            Some(Kind::SharedRegion)
        );
    }

    #[test]
    fn subregion_cycle_is_rejected() {
        let r = table(
            r#"
            regionKind A extends SharedRegion {
                subregion B : VT NoRT b;
            }
            regionKind B extends SharedRegion {
                subregion A : VT NoRT a;
            }
            { }
            "#,
        );
        assert!(r.is_err());
        let msgs = r.unwrap_err();
        assert!(msgs.iter().any(|e| e.message.contains("infinite")));
    }

    #[test]
    fn subtyping_walks_chain() {
        let t = table(
            r#"
            class B<Owner o> { }
            class A<Owner o, Owner p> extends B<o> { }
            { }
            "#,
        )
        .unwrap();
        let a = SType::class("A", vec![Owner::Heap, Owner::Immortal]);
        let b = SType::class("B", vec![Owner::Heap]);
        let obj = SType::class("Object", vec![Owner::Heap]);
        assert!(t.is_subtype(&a, &b));
        assert!(t.is_subtype(&a, &obj));
        assert!(t.is_subtype(&b, &obj));
        assert!(!t.is_subtype(&b, &a));
        assert!(t.is_subtype(&SType::Null, &a));
        let b_wrong = SType::class("B", vec![Owner::Immortal]);
        assert!(!t.is_subtype(&a, &b_wrong), "owner args must match");
    }
}
