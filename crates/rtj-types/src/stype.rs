//! Checker-side (semantic) types.
//!
//! [`SType`] is the span-free, owner-resolved form of the surface
//! [`Type`], plus `Null` (the type of the `null`
//! literal, a subtype of every class type) and `Str` (the type of string
//! literals, accepted only by `print`).

use crate::owner::{Owner, Subst};
use rtj_lang::ast::{ClassType, Ident, Type};
use rtj_lang::intern::Symbol;
use rtj_lang::span::Span;
use std::fmt;

/// A semantic type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SType {
    /// `int`.
    Int,
    /// `bool`.
    Bool,
    /// `void` (method returns only).
    Void,
    /// The type of `null`: a subtype of every class type.
    Null,
    /// The type of string literals (only usable as a `print` argument).
    Str,
    /// A class type `cn<o1..on>`; the first owner owns the object.
    Class {
        /// Class name (interned).
        name: Symbol,
        /// Owner arguments.
        owners: Vec<Owner>,
    },
    /// A region handle `RHandle<r>`.
    Handle(Owner),
}

impl SType {
    /// Builds a class type.
    pub fn class(name: impl Into<Symbol>, owners: Vec<Owner>) -> SType {
        SType::Class {
            name: name.into(),
            owners,
        }
    }

    /// The owner of values of this type, if it is a class type with at
    /// least one owner argument.
    pub fn first_owner(&self) -> Option<&Owner> {
        match self {
            SType::Class { owners, .. } => owners.first(),
            _ => None,
        }
    }

    /// Whether this is a reference (class or null) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, SType::Class { .. } | SType::Null)
    }

    /// Applies an owner substitution.
    pub fn subst(&self, s: &Subst) -> SType {
        match self {
            SType::Class { name, owners } => SType::Class {
                name: *name,
                owners: s.apply_all(owners),
            },
            SType::Handle(o) => SType::Handle(s.apply(o)),
            other => other.clone(),
        }
    }

    /// All owners mentioned in this type.
    pub fn owners(&self) -> Vec<Owner> {
        match self {
            SType::Class { owners, .. } => owners.clone(),
            SType::Handle(o) => vec![*o],
            _ => Vec::new(),
        }
    }

    /// Whether the literal owner `this` appears in this type.
    ///
    /// Field and method signatures mentioning `this` denote the *declaring*
    /// object; they may only be used through a receiver that is literally
    /// `this` (otherwise the owner would be captured incorrectly).
    pub fn mentions_this(&self) -> bool {
        self.owners().contains(&Owner::This)
    }

    /// Converts this semantic type back to a surface type with dummy spans
    /// (used when elaborating inferred `let` types into the AST).
    pub fn to_surface(&self) -> Option<Type> {
        Some(match self {
            SType::Int => Type::Int(Span::DUMMY),
            SType::Bool => Type::Bool(Span::DUMMY),
            SType::Void => Type::Void(Span::DUMMY),
            SType::Null | SType::Str => return None,
            SType::Class { name, owners } => Type::Class(ClassType {
                name: Ident::synthetic(name.as_str().to_owned()),
                owners: owners.iter().map(Owner::to_ref).collect(),
                span: Span::DUMMY,
            }),
            SType::Handle(o) => Type::Handle(o.to_ref(), Span::DUMMY),
        })
    }
}

impl fmt::Display for SType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SType::Int => f.write_str("int"),
            SType::Bool => f.write_str("bool"),
            SType::Void => f.write_str("void"),
            SType::Null => f.write_str("null"),
            SType::Str => f.write_str("String"),
            SType::Class { name, owners } => {
                if owners.is_empty() {
                    f.write_str(name.as_str())
                } else {
                    let os: Vec<String> = owners.iter().map(|o| o.to_string()).collect();
                    write!(f, "{name}<{}>", os.join(", "))
                }
            }
            SType::Handle(o) => write!(f, "RHandle<{o}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subst_class_type() {
        let t = SType::class(
            "TNode",
            vec![
                Owner::Formal("nodeOwner".into()),
                Owner::Formal("TOwner".into()),
            ],
        );
        let s = Subst::from_formals(
            &["nodeOwner".into(), "TOwner".into()],
            &[Owner::This, Owner::Region("r1".into())],
        );
        let t2 = t.subst(&s);
        assert_eq!(
            t2,
            SType::class("TNode", vec![Owner::This, Owner::Region("r1".into())])
        );
        assert!(t2.mentions_this());
    }

    #[test]
    fn first_owner_and_reference() {
        let t = SType::class("C", vec![Owner::Heap]);
        assert_eq!(t.first_owner(), Some(&Owner::Heap));
        assert!(t.is_reference());
        assert!(SType::Null.is_reference());
        assert!(!SType::Int.is_reference());
        assert_eq!(SType::Int.first_owner(), None);
    }

    #[test]
    fn surface_round_trip() {
        let t = SType::class("C", vec![Owner::Heap, Owner::Formal("f".into())]);
        let surf = t.to_surface().unwrap();
        match surf {
            Type::Class(ct) => {
                assert_eq!(ct.name.name, "C");
                assert_eq!(ct.owners.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(SType::Null.to_surface().is_none());
    }

    #[test]
    fn display() {
        assert_eq!(SType::class("C", vec![Owner::Heap]).to_string(), "C<heap>");
        assert_eq!(
            SType::Handle(Owner::Immortal).to_string(),
            "RHandle<immortal>"
        );
    }
}
