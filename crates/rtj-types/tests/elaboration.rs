//! The checker's elaboration contract: on success, the returned program
//! has every `let` annotated, every `new` carrying explicit owners, and
//! every call to an owner-parameterized method carrying explicit owner
//! arguments — the invariants the interpreter relies on.

use rtj_lang::ast::{Block, Expr, Program, Stmt};
use rtj_lang::parse_program;
use rtj_types::{check_program, ProgramTable};

fn walk_block(b: &Block, f: &mut impl FnMut(&Stmt), g: &mut impl FnMut(&Expr)) {
    for s in &b.stmts {
        walk_stmt(s, f, g);
    }
}

fn walk_stmt(s: &Stmt, f: &mut impl FnMut(&Stmt), g: &mut impl FnMut(&Expr)) {
    f(s);
    match s {
        Stmt::Let { init, .. } => walk_expr(init, g),
        Stmt::AssignLocal { value, .. } => walk_expr(value, g),
        Stmt::AssignField { recv, value, .. } => {
            walk_expr(recv, g);
            walk_expr(value, g);
        }
        Stmt::Expr(e) => walk_expr(e, g),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            walk_expr(cond, g);
            walk_block(then_blk, f, g);
            if let Some(eb) = else_blk {
                walk_block(eb, f, g);
            }
        }
        Stmt::While { cond, body, .. } => {
            walk_expr(cond, g);
            walk_block(body, f, g);
        }
        Stmt::Return { value: Some(v), .. } => walk_expr(v, g),
        Stmt::Return { value: None, .. } => {}
        Stmt::LocalRegion { body, .. }
        | Stmt::NewRegion { body, .. }
        | Stmt::EnterSubregion { body, .. } => walk_block(body, f, g),
        Stmt::Fork { call, .. } => walk_expr(call, g),
    }
}

fn walk_expr(e: &Expr, g: &mut impl FnMut(&Expr)) {
    g(e);
    match e {
        Expr::Unary { expr, .. } => walk_expr(expr, g),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, g);
            walk_expr(rhs, g);
        }
        Expr::Field { recv, .. } => walk_expr(recv, g),
        Expr::Call { recv, args, .. } => {
            walk_expr(recv, g);
            for a in args {
                walk_expr(a, g);
            }
        }
        Expr::IntrinsicCall { args, .. } => {
            for a in args {
                walk_expr(a, g);
            }
        }
        _ => {}
    }
}

fn assert_fully_elaborated(p: &Program, table: &ProgramTable) {
    let mut check_stmt = |s: &Stmt| {
        if let Stmt::Let { ty, name, .. } = s {
            assert!(ty.is_some(), "let `{name}` left unannotated");
        }
    };
    let mut check_expr = |e: &Expr| match e {
        Expr::New { class, .. } => {
            let expected = if class.name.name == "Object" {
                1
            } else {
                table
                    .class(class.name.name)
                    .map(|i| i.formal_names.len())
                    .unwrap_or(0)
            };
            assert_eq!(
                class.owners.len(),
                expected,
                "new {} not fully elaborated",
                class.name
            );
        }
        Expr::Call {
            method, owner_args, ..
        } => {
            // Any method with formals must carry explicit owner args after
            // checking. We cannot resolve the receiver statically here, so
            // check the weaker global property: no method named like this
            // anywhere takes more formals than this call supplies.
            let max_formals = table
                .classes()
                .flat_map(|c| c.decl.methods.iter())
                .filter(|m| m.name.name == method.name)
                .map(|m| m.formals.len())
                .max()
                .unwrap_or(0);
            if max_formals > 0 {
                assert_eq!(
                    owner_args.len(),
                    max_formals,
                    "call to `{method}` missing inferred owner args"
                );
            }
        }
        _ => {}
    };
    walk_block(&p.main, &mut check_stmt, &mut check_expr);
    for c in &p.classes {
        for m in &c.methods {
            walk_block(&m.body, &mut check_stmt, &mut check_expr);
        }
    }
}

#[test]
fn inference_results_are_written_back() {
    let src = r#"
        class D<Owner a> { int v; }
        class C<Owner o> {
            int take<Owner q>(D<q> x, D<q> y) { return x.v + y.v; }
        }
        {
            (RHandle<r> h) {
                let c = new C<r>;
                let a = new D<r>;
                let b = new D<r>;
                let z = c.take(a, b);
                let w = new D;
                print(z);
            }
        }
    "#;
    let checked = check_program(&parse_program(src).unwrap()).unwrap();
    assert_fully_elaborated(&checked.program, &checked.table);
}

#[test]
fn corpus_is_fully_elaborated() {
    for bench in rtj_corpus_sources() {
        let checked = check_program(&parse_program(&bench).unwrap()).unwrap();
        assert_fully_elaborated(&checked.program, &checked.table);
    }
}

/// A few representative corpus-like programs (we avoid a dev-dependency
/// cycle on rtj-corpus by inlining small ones).
fn rtj_corpus_sources() -> Vec<String> {
    vec![
        r#"
        class TStack<Owner stackOwner, Owner TOwner> {
            TNode<this, TOwner> head;
            void push(T<TOwner> value) {
                let n = new TNode<this, TOwner>;
                n.value = value;
                n.next = this.head;
                this.head = n;
            }
        }
        class TNode<Owner nodeOwner, Owner TOwner> {
            T<TOwner> value;
            TNode<nodeOwner, TOwner> next;
        }
        class T<Owner o> { int x; }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let s = new TStack<r2, r1>;
                    let t = new T<r1>;
                    s.push(t);
                }
            }
        }
        "#
        .to_string(),
        r#"
        class Cell<Owner o> { int v; Cell<o> next; }
        {
            (RHandle<r> h) {
                let Cell<r> head = null;
                let i = 0;
                while (i < 4) {
                    let c = new Cell<r>;
                    c.next = head;
                    head = c;
                    i = i + 1;
                }
            }
        }
        "#
        .to_string(),
    ]
}
