//! Property tests for the deduction engine: the derived `≽` (outlives)
//! and `≽ₒ` (owns) relations satisfy the algebraic laws the soundness
//! proofs rely on (Figure 1 and Figure 2 of the paper), for arbitrary
//! consistent fact bases.

use proptest::prelude::*;
use rtj_types::env::{Effects, Env};
use rtj_types::{Kind, Owner};

const N_REGIONS: usize = 5;
const N_OBJECTS: usize = 4;

fn region(i: usize) -> Owner {
    Owner::Region(format!("r{i}").into())
}

fn formal(i: usize) -> Owner {
    Owner::Formal(format!("f{i}").into())
}

/// A random but *consistent* environment:
///
/// * regions `r0..r4` with LIFO outlives facts `ri ≽ rj` only for `i < j`
///   (acyclic by construction, as region creation order guarantees);
/// * object formals `f0..f3` with owns facts forming a forest whose roots
///   attach to regions (property O1).
#[derive(Debug, Clone)]
struct Facts {
    region_edges: Vec<(usize, usize)>,
    /// For each object, its owner: `Ok(region index)` or `Err(object
    /// index)` with the invariant `owner object index < object index`.
    object_owner: Vec<Result<usize, usize>>,
}

fn facts_strategy() -> impl Strategy<Value = Facts> {
    let edges = prop::collection::vec(
        (0..N_REGIONS, 0..N_REGIONS).prop_filter_map("i<j", |(a, b)| {
            if a < b {
                Some((a, b))
            } else if b < a {
                Some((b, a))
            } else {
                None
            }
        }),
        0..8,
    );
    let owners = (0..N_OBJECTS)
        .map(|i| {
            if i == 0 {
                (0..N_REGIONS).prop_map(Ok).boxed()
            } else {
                prop_oneof![(0..N_REGIONS).prop_map(Ok), (0..i).prop_map(Err),].boxed()
            }
        })
        .collect::<Vec<_>>();
    (edges, owners).prop_map(|(region_edges, object_owner)| Facts {
        region_edges,
        object_owner,
    })
}

fn build_env(f: &Facts) -> Env {
    let mut env = Env::base();
    for i in 0..N_REGIONS {
        env.declare_owner(region(i), Kind::LocalRegion);
    }
    for i in 0..N_OBJECTS {
        env.declare_owner(formal(i), Kind::ObjOwner);
    }
    for &(a, b) in &f.region_edges {
        env.add_outlives(region(a), region(b));
    }
    for (i, owner) in f.object_owner.iter().enumerate() {
        match owner {
            Ok(r) => env.add_owns(region(*r), formal(i)),
            Err(o) => env.add_owns(formal(*o), formal(i)),
        }
    }
    env
}

fn all_owners() -> Vec<Owner> {
    let mut v: Vec<Owner> = (0..N_REGIONS).map(region).collect();
    v.extend((0..N_OBJECTS).map(formal));
    v.push(Owner::Heap);
    v.push(Owner::Immortal);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `≽` is a preorder containing `≽ₒ`, and `heap`/`immortal` are top
    /// among regions (R1, R2).
    #[test]
    fn outlives_laws(f in facts_strategy()) {
        let env = build_env(&f);
        let owners = all_owners();
        // Reflexivity.
        for o in &owners {
            prop_assert!(env.outlives(o, o));
            prop_assert!(env.owns(o, o));
        }
        // Transitivity (both relations).
        for a in &owners {
            for b in &owners {
                for c in &owners {
                    if env.outlives(a, b) && env.outlives(b, c) {
                        prop_assert!(env.outlives(a, c), "{a} {b} {c}");
                    }
                    if env.owns(a, b) && env.owns(b, c) {
                        prop_assert!(env.owns(a, c), "{a} {b} {c}");
                    }
                }
            }
        }
        // R2: owns implies outlives.
        for a in &owners {
            for b in &owners {
                if env.owns(a, b) {
                    prop_assert!(env.outlives(a, b), "{a} owns {b}");
                }
            }
        }
        // R1: heap and immortal outlive every region.
        for i in 0..N_REGIONS {
            prop_assert!(env.outlives(&Owner::Heap, &region(i)));
            prop_assert!(env.outlives(&Owner::Immortal, &region(i)));
            prop_assert!(!env.outlives(&region(i), &Owner::Heap));
        }
    }

    /// O1: the ownership relation forms a forest — no two distinct owners
    /// both (transitively, properly) own each other.
    #[test]
    fn ownership_is_acyclic(f in facts_strategy()) {
        let env = build_env(&f);
        let owners = all_owners();
        for a in &owners {
            for b in &owners {
                if a != b {
                    prop_assert!(
                        !(env.owns(a, b) && env.owns(b, a)),
                        "cycle between {a} and {b}"
                    );
                }
            }
        }
    }

    /// Effects subsumption is monotone: growing the allowed set never
    /// un-covers an effect, and every owner covers itself.
    #[test]
    fn effects_monotone(f in facts_strategy(), extra in 0..N_REGIONS) {
        let env = build_env(&f);
        let owners = all_owners();
        for a in &owners {
            let just_a: Effects = [*a].into_iter().collect();
            prop_assert!(env.effect_covered(&just_a, a), "{a} covers itself");
            let mut bigger = just_a.clone();
            bigger.insert(region(extra));
            for o in &owners {
                if env.effect_covered(&just_a, o) {
                    prop_assert!(env.effect_covered(&bigger, o));
                }
            }
        }
    }

    /// Handle availability propagates both ways along ownership: an owner
    /// and its owned object live in the same region.
    #[test]
    fn handle_availability_follows_ownership(f in facts_strategy()) {
        let mut env = build_env(&f);
        // Give r0 a handle.
        env.add_handle(region(0));
        for (i, owner) in f.object_owner.iter().enumerate() {
            // Objects rooted (transitively) in r0 have an available handle.
            let mut root = *owner;
            loop {
                match root {
                    Ok(r) => {
                        if r == 0 {
                            prop_assert!(
                                env.handle_available(&formal(i)),
                                "f{i} rooted in r0"
                            );
                        }
                        break;
                    }
                    Err(o) => root = f.object_owner[o],
                }
            }
        }
    }
}
