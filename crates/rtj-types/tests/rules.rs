//! Rule-by-rule tests for the typing judgments of Appendix B: for each
//! rule, at least one program that exercises it positively and one that
//! violates exactly its premise.

use rtj_lang::parse_program;
use rtj_types::{check_program, Checked, TypeError};

fn check(src: &str) -> Result<Checked, Vec<TypeError>> {
    check_program(&parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}")))
}

fn ok(src: &str) {
    if let Err(errs) = check(src) {
        panic!(
            "expected well-typed, got: {:#?}\n{src}",
            errs.iter().map(|e| &e.message).collect::<Vec<_>>()
        );
    }
}

fn err(src: &str, needle: &str) {
    match check(src) {
        Ok(_) => panic!("expected error containing {needle:?}\n{src}"),
        Err(errs) => assert!(
            errs.iter().any(|e| e.message.contains(needle)),
            "no error contains {needle:?}; got {:#?}\n{src}",
            errs.iter().map(|e| &e.message).collect::<Vec<_>>()
        ),
    }
}

// ----------------------------------------------------------------- [PROG]

#[test]
fn prog_main_runs_on_heap_with_heap_effects() {
    // Region creation in main is fine (X ∋ heap)…
    ok("{ (RHandle<r> h) { } }");
    // …and allocation on the heap is fine for the main regular thread.
    ok("class C<Owner o> { } { let C<heap> c = new C<heap>; }");
}

// ------------------------------------------------------------ [CLASS DEF]

#[test]
fn class_formals_scope_and_first_owner() {
    ok("class C<Owner a, Owner b> { D<b> f; } class D<Owner x> { } { }");
    err(
        "class C<Owner a> { D<ghost> f; } class D<Owner x> { } { }",
        "unknown owner",
    );
    // Every class formal outlives the first ([CLASS DEF] records
    // fnᵢ ≽ fn₁), so Pair<a, b> is well-formed by assumption…
    ok("class C<Owner a, Owner b> { Pair<a, b> f; } \
         class Pair<Owner x, Owner y> { } { }");
    // …but the reverse needs a ≽ b, which nothing provides.
    err(
        "class C<Owner a, Owner b> { Pair<b, a> f; } \
         class Pair<Owner x, Owner y> { } { }",
        "must outlive",
    );
    // A where-clause provides the missing fact.
    ok(
        "class C<Owner a, Owner b> where a outlives b { Pair<b, a> f; } \
         class Pair<Owner x, Owner y> { } { }",
    );
}

#[test]
fn class_type_owner_kinds_are_checked() {
    // A formal of Region kind cannot be instantiated with an object owner.
    err(
        r#"
        class R<Region r> { }
        class C<Owner o> {
            void m() {
                let R<this> x = new R<this>;
            }
        }
        { }
        "#,
        "not a subkind",
    );
    ok(r#"
        class R<Region r> { }
        {
            (RHandle<q> h) {
                let R<q> x = new R<q>;
            }
        }
        "#);
}

// --------------------------------------------------------------- [METHOD]

#[test]
fn method_effects_must_have_kinds() {
    err(
        "class C<Owner o> { void m() accesses ghost { } } { }",
        "unknown owner",
    );
    ok("class C<Owner o> { void m() accesses o, this, initialRegion { } } { }");
}

#[test]
fn method_formals_with_constraints() {
    ok(r#"
        class C<Owner o> {
            void m<Owner p, Owner q>(D<p> x, D<q> y) where p outlives q { }
        }
        class D<Owner a> { }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let c = new C<r2>;
                    let a = new D<r1>;
                    let b = new D<r2>;
                    c.m<r1, r2>(a, b);
                }
            }
        }
        "#);
    err(
        r#"
        class C<Owner o> {
            void m<Owner p, Owner q>(D<p> x, D<q> y) where p outlives q { }
        }
        class D<Owner a> { }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let c = new C<r1>;
                    let a = new D<r2>;
                    let b = new D<r1>;
                    c.m<r2, r1>(a, b);
                }
            }
        }
        "#,
        "not satisfied",
    );
}

// ------------------------------------------------------------- [EXPR LET]

#[test]
fn let_subsumption() {
    ok(r#"
        class B<Owner o> { }
        class A<Owner o> extends B<o> { }
        {
            (RHandle<r> h) {
                let B<r> b = new A<r>;
                let Object<r> any = new A<r>;
            }
        }
        "#);
    err(
        r#"
        class B<Owner o> { }
        class A<Owner o> extends B<o> { }
        { (RHandle<r> h) { let A<r> a = new B<r>; } }
        "#,
        "expected",
    );
}

// ------------------------------------------------------------- [EXPR NEW]

#[test]
fn new_requires_effect_and_handle() {
    // `this`-owned allocation inside a method: handle via [AV THIS].
    ok(r#"
        class S<Owner o> {
            N<this> mk() { return new N<this>; }
        }
        class N<Owner o> { }
        { }
        "#);
    // Allocating through an owner whose handle is reachable through the
    // ownership relation ([AV TRANS]): o owns this, handle of this known.
    ok(r#"
        class S<Owner o> {
            void m() accesses o {
                let Object<o> x = new Object<o>;
            }
        }
        { }
        "#);
}

// -------------------------------------------------- [EXPR REF READ/WRITE]

#[test]
fn field_rules() {
    ok(r#"
        class C<Owner o> { int n; D<o> d; }
        class D<Owner o> { }
        {
            (RHandle<r> h) {
                let c = new C<r>;
                c.n = 3;
                c.d = new D<r>;
                let x = c.d;
                let y = c.n + 1;
            }
        }
        "#);
    err(
        "class C<Owner o> { int n; } { (RHandle<r> h) { let c = new C<r>; let x = c.ghost; } }",
        "no field",
    );
    err(
        "class C<Owner o> { int n; } { (RHandle<r> h) { let c = new C<r>; c.n = true; } }",
        "expected",
    );
    err("{ let x = null; }", "annotate");
    err(
        "class C<Owner o> { int n; } { let x = null.n; }",
        "field of `null`",
    );
}

// ----------------------------------------------------------- [EXPR INVOKE]

#[test]
fn invoke_rules() {
    // Renaming initialRegion to the caller's current region.
    ok(r#"
        class F<Owner o> {
            C<initialRegion> mk() accesses initialRegion {
                return new C<initialRegion>;
            }
        }
        class C<Owner o> { }
        {
            (RHandle<r> h) {
                let f = new F<r>;
                let c = f.mk();
                let C<r> typed = c;
            }
        }
        "#);
    // Wrong arity of owner arguments.
    err(
        r#"
        class C<Owner o> { void m<Owner p>(D<p> x) { } }
        class D<Owner a> { }
        {
            (RHandle<r> h) {
                let c = new C<r>;
                let d = new D<r>;
                c.m<r, r>(d);
            }
        }
        "#,
        "owner argument",
    );
    // Wrong arity of value arguments.
    err(
        "class C<Owner o> { void m(int x) { } } \
         { (RHandle<r> h) { let c = new C<r>; c.m(); } }",
        "argument",
    );
    // Object owner arguments must own the receiver's owner.
    err(
        r#"
        class C<Owner o> { void m<Owner p>() { } }
        class D<Owner a> { }
        class Outer<Owner o> {
            D<this> rep;
            void go(C<o> c) {
                c.m<this>();
            }
        }
        { }
        "#,
        "own the receiver's owner",
    );
}

// ----------------------------------------- [EXPR REGION] / [LOCALREGION]

#[test]
fn region_rules() {
    // Nested regions: names must not shadow.
    err("{ (RHandle<r> h) { (RHandle<r> h2) { } } }", "shadows");
    // The new region is inside everything that already exists.
    ok(r#"
        class P<Owner a, Owner b> { }
        {
            (RHandle<r1> h1) {
                (RHandle<r2> h2) {
                    let P<r2, r1> p = new P<r2, r1>;
                    let P<r2, heap> q = new P<r2, heap>;
                    let P<r2, immortal> s = new P<r2, immortal>;
                }
            }
        }
        "#);
}

// --------------------------------------------------------- [EXPR SUBREGION]

#[test]
fn subregion_rules() {
    let decls = r#"
        regionKind K extends SharedRegion {
            subregion S : LT(128) NoRT s;
        }
        regionKind S extends SharedRegion {
            C<this> slot;
        }
        class C<Owner o> { int v; }
    "#;
    ok(&format!(
        "{decls}
        {{
            (RHandle<K : VT r> h) {{
                (RHandle<S r2> h2 = h.s) {{
                    let c = new C<r2>;
                    h2.slot = c;
                    h2.slot = null;
                }}
                (RHandle<S r3> h3 = new h.s) {{ }}
            }}
        }}"
    ));
    // The handle variable must really be a handle.
    err(
        &format!(
            "{decls}
            {{
                let x = 1;
                (RHandle<S r2> h2 = x.s) {{ }}
            }}"
        ),
        "region handle",
    );
    // Portal reads are typed: no downcast from Object needed, and wrong
    // uses are caught statically.
    err(
        &format!(
            "{decls}
            {{
                (RHandle<K : VT r> h) {{
                    (RHandle<S r2> h2 = h.s) {{
                        let bad = h2.slot + 1;
                    }}
                }}
            }}"
        ),
        "requires `int`",
    );
}

// ----------------------------------------------------- [EXPR FORK/RTFORK]

#[test]
fn fork_rules() {
    let worker = r#"
        class W<SharedRegion r> {
            void run(RHandle<r> h) accesses r { }
        }
    "#;
    // Forking with a shared region is fine from main (rcr = heap).
    ok(&format!(
        "{worker}
        {{
            (RHandle<SharedRegion : VT r> h) {{
                fork (new W<r>).run(h);
            }}
        }}"
    ));
    // RT fork cannot target a heap-owned worker (GCRegion is not a
    // subkind of SharedRegion).
    err(
        &format!(
            "{worker}
            {{
                (RHandle<SharedRegion : LT(64) r> h) {{
                    RT fork (new W<heap>).run(h);
                }}
            }}"
        ),
        "not a subkind",
    );
    // RT fork from inside a shared LT region works.
    ok(&format!(
        "{worker}
        {{
            (RHandle<SharedRegion : LT(1024) r> h) {{
                RT fork (new W<r>).run(h);
            }}
        }}"
    ));
    // …but not if the region is VT-allocated and the callee's effects
    // mention it (an RT thread may not allocate in a VT region).
    err(
        &format!(
            "{worker}
            {{
                (RHandle<SharedRegion : VT r> h) {{
                    RT fork (new W<r>).run(h);
                }}
            }}"
        ),
        "may only touch preallocated",
    );
}

// ------------------------------------------------------- kind refinement

#[test]
fn lt_kind_refinement_flows_through() {
    // A class can demand an LT shared region for its owner, so its
    // methods can be called from real-time threads.
    ok(r#"
        class Scratch<SharedRegion : LT r> {
            void fill(RHandle<r> h) accesses r {
                let Object<r> x = new Object<r>;
            }
        }
        {
            (RHandle<SharedRegion : LT(4096) r> h) {
                let s = new Scratch<r>;
                s.fill(h);
            }
        }
        "#);
    err(
        r#"
        class Scratch<SharedRegion : LT r> { }
        {
            (RHandle<SharedRegion : VT r> h) {
                let s = new Scratch<r>;
            }
        }
        "#,
        "not a subkind",
    );
}

// ------------------------------------------------------- inheritance

#[test]
fn inheritance_rules() {
    // Inherited methods see the superclass's owners correctly.
    ok(r#"
        class B<Owner o> {
            C<o> mk() { return null; }
        }
        class A<Owner o, Owner p> extends B<o> { }
        class C<Owner x> { }
        {
            (RHandle<r> h) {
                let a = new A<r, heap>;
                let c = a.mk();
                let C<r> typed = c;
            }
        }
        "#);
    // Handles are never null.
    err(
        "class B<Owner o> { } { let RHandle<heap> x = null; }",
        "expected",
    );
    // Override with different return type is rejected.
    err(
        r#"
        class B<Owner o> { int m() { return 1; } }
        class A<Owner o> extends B<o> { bool m() { return true; } }
        { }
        "#,
        "return type",
    );
    // Constraint on superclass must be implied.
    err(
        r#"
        class B<Owner o, Owner p> where p owns o { }
        class A<Owner o, Owner p> extends B<o, p> { }
        { }
        "#,
        "not implied",
    );
    ok(r#"
        class B<Owner o, Owner p> where p outlives o { }
        class A<Owner o, Owner p> extends B<o, p> where p outlives o { }
        { }
        "#);
}

// ------------------------------------------------------- parameterized kinds

#[test]
fn region_kinds_with_owner_parameters() {
    ok(r#"
        regionKind Mail<Owner sender> extends SharedRegion {
            Msg<sender> inbox;
        }
        class Msg<Owner o> { int payload; }
        {
            (RHandle<Mail<heap> : VT r> h) {
                let m = new Msg<heap>;
                h.inbox = m;
                let got = h.inbox;
                got.payload = 1;
            }
        }
        "#);
    err(
        r#"
        regionKind Mail<Owner sender> extends SharedRegion {
            Msg<sender> inbox;
        }
        class Msg<Owner o> { int payload; }
        {
            (RHandle<r0> h0) {
                (RHandle<Mail<heap> : VT r> h) {
                    let m = new Msg<r0>;
                    h.inbox = m;
                }
            }
        }
        "#,
        "expected",
    );
}
