//! "Its typechecking is fast and scalable": checking time grows roughly
//! linearly with program size, and a 600-class program checks in well
//! under a second.

use std::time::Instant;

fn synth_program(n_classes: usize) -> String {
    let mut src = String::new();
    for i in 0..n_classes {
        let prev = if i == 0 {
            String::new()
        } else {
            format!("C{}<o> prev;", i - 1)
        };
        src.push_str(&format!(
            "class C{i}<Owner o> {{
                int v;
                {prev}
                int get() {{ return this.v; }}
                void set(int x) {{ this.v = x; }}
            }}\n"
        ));
    }
    src.push_str("{ (RHandle<r> h) {\n");
    for i in 0..n_classes.min(64) {
        src.push_str(&format!("let c{i} = new C{i}<r>;\nc{i}.set({i});\n"));
    }
    src.push_str("} }\n");
    src
}

#[test]
fn checking_is_fast_and_scales() {
    let src = synth_program(600);
    let program = rtj_lang::parse_program(&src).unwrap();
    let start = Instant::now();
    rtj_types::check_program(&program).unwrap();
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_millis() < 2_000,
        "600 classes took {elapsed:?} (debug build budget: 2 s)"
    );
}

#[test]
fn checking_grows_roughly_linearly() {
    let time = |n: usize| {
        let src = synth_program(n);
        let program = rtj_lang::parse_program(&src).unwrap();
        let start = Instant::now();
        rtj_types::check_program(&program).unwrap();
        start.elapsed().as_secs_f64()
    };
    // Warm up, then compare 150 vs 600 classes: a quadratic checker would
    // blow the 16x envelope for a 4x input.
    let _ = time(50);
    let t1 = time(150).max(1e-4);
    let t4 = time(600);
    assert!(
        t4 / t1 < 16.0,
        "growth factor {:.1} for 4x the classes (t150={t1:.4}s t600={t4:.4}s)",
        t4 / t1
    );
}
