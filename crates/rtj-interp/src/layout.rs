//! Class and region-kind layouts.
//!
//! Derived once from the checked program's [`ProgramTable`], layouts give
//! the interpreter constant-ish-time access to field indices, primitive
//! field defaults, runtime method resolution along the superclass chain,
//! and ready-made [`RegionSpec`]s for each region kind.
//!
//! Every lookup is keyed by interned [`Symbol`]s, so the hot paths of
//! both engines (tree-walker and bytecode VM) hash and compare pointers,
//! never string contents. The interned class symbol doubles as the VM's
//! *layout id*: two objects share a layout iff their class symbols are
//! pointer-equal, which is what the inline caches key on.

use rtj_lang::ast::{MethodDecl, OwnerRef, Policy, ThreadTag};
use rtj_lang::intern::Symbol;
use rtj_runtime::{AllocPolicy, RegionSpec, Reservation, Value};
use rtj_types::{Owner, ProgramTable, SType};
use std::collections::HashMap;

/// Field metadata for one class.
#[derive(Debug, Clone)]
pub struct ClassLayout {
    /// Field names in slot order (inherited fields first).
    pub field_names: Vec<Symbol>,
    /// Name → slot index.
    pub field_index: HashMap<Symbol, usize>,
    /// Default value per slot (`Int(0)`, `Bool(false)`, or `Null`).
    pub field_defaults: Vec<Value>,
    /// The class's formal owner parameter names (interned).
    pub formal_names: Vec<Symbol>,
}

/// All layouts for a program.
#[derive(Debug, Clone)]
pub struct Layouts {
    classes: HashMap<Symbol, ClassLayout>,
    region_specs: HashMap<Symbol, RegionSpec>,
}

fn default_for(t: &SType) -> Value {
    match t {
        SType::Int => Value::Int(0),
        SType::Bool => Value::Bool(false),
        _ => Value::Null,
    }
}

impl Layouts {
    /// Builds layouts for every class and region kind in the table.
    pub fn new(table: &ProgramTable) -> Layouts {
        let mut classes = HashMap::new();
        classes.insert(
            Symbol::intern("Object"),
            ClassLayout {
                field_names: Vec::new(),
                field_index: HashMap::new(),
                field_defaults: Vec::new(),
                formal_names: vec!["o".into()],
            },
        );
        for info in table.classes() {
            let name = info.decl.name.name;
            let formals: Vec<Owner> = info
                .formal_names
                .iter()
                .map(|n| Owner::Formal(*n))
                .collect();
            let fields = table.all_fields(name, &formals);
            let field_names: Vec<Symbol> = fields.iter().map(|(n, _)| *n).collect();
            let field_index = field_names
                .iter()
                .enumerate()
                .map(|(i, n)| (*n, i))
                .collect();
            let field_defaults = fields.iter().map(|(_, t)| default_for(t)).collect();
            classes.insert(
                name,
                ClassLayout {
                    field_names,
                    field_index,
                    field_defaults,
                    formal_names: info.formal_names.clone(),
                },
            );
        }
        let mut region_specs = HashMap::new();
        for info in table.region_kinds() {
            let name = info.decl.name.name;
            let spec = build_region_spec(table, name, AllocPolicy::Vt, Reservation::Any, 0);
            region_specs.insert(name, spec);
        }
        Layouts {
            classes,
            region_specs,
        }
    }

    /// Layout for a class.
    pub fn class(&self, name: Symbol) -> Option<&ClassLayout> {
        self.classes.get(&name)
    }

    /// A [`RegionSpec`] for creating a *top-level* region of kind
    /// `kind_name` (or a plain shared region when `None`) with the given
    /// policy.
    pub fn region_spec(&self, kind_name: Option<Symbol>, policy: Policy) -> RegionSpec {
        let mut spec = match kind_name {
            Some(k) => self
                .region_specs
                .get(&k)
                .cloned()
                .unwrap_or_else(RegionSpec::plain_vt),
            None => RegionSpec::plain_vt(),
        };
        spec.policy = convert_policy(policy);
        spec
    }
}

fn convert_policy(p: Policy) -> AllocPolicy {
    match p {
        Policy::Lt { size } => AllocPolicy::Lt { capacity: size },
        Policy::Vt => AllocPolicy::Vt,
    }
}

fn convert_tag(t: ThreadTag) -> Reservation {
    match t {
        ThreadTag::Rt => Reservation::RtOnly,
        ThreadTag::NoRt => Reservation::NoRtOnly,
    }
}

/// Recursively builds the spec for a region kind (depth-bounded as a
/// safety net; the checker guarantees finiteness).
fn build_region_spec(
    table: &ProgramTable,
    kind: Symbol,
    policy: AllocPolicy,
    reservation: Reservation,
    depth: usize,
) -> RegionSpec {
    let mut spec = RegionSpec {
        kind_name: Some(kind.as_str().to_owned()),
        policy,
        reservation,
        portals: Vec::new(),
        subregions: Vec::new(),
    };
    if depth > 16 {
        return spec;
    }
    let Some(info) = table.region_kind(kind) else {
        return spec;
    };
    let formals: Vec<Owner> = info
        .formal_names
        .iter()
        .map(|n| Owner::Formal(*n))
        .collect();
    for (name, _) in table.all_portals(kind, &formals) {
        spec.portals.push(name.as_str().to_owned());
    }
    for (member, sub) in table.all_subregions(kind, &formals) {
        let sub_kind = match &sub.kind {
            rtj_types::Kind::Named { name, .. } => *name,
            _ => continue,
        };
        let sub_spec = build_region_spec(
            table,
            sub_kind,
            convert_policy(sub.policy),
            convert_tag(sub.thread),
            depth + 1,
        );
        spec.subregions.push((member.as_str().to_owned(), sub_spec));
    }
    spec
}

/// The superclass hops from the allocated class to the declaring class:
/// `(superclass name, owner refs over the previous class's formals)`.
pub type SuperChain = Vec<(Symbol, Vec<OwnerRef>)>;

/// Resolves the method `method` for an object allocated as `class`,
/// walking the superclass chain. Returns the [`SuperChain`] of hops the
/// caller must evaluate against the object's stored owners, and the
/// method declaration.
pub fn resolve_method_chain(
    table: &ProgramTable,
    class: Symbol,
    method: Symbol,
) -> Option<(SuperChain, &MethodDecl)> {
    let mut chain = Vec::new();
    let mut cur = class;
    let mut seen = std::collections::HashSet::new();
    loop {
        if !seen.insert(cur) {
            return None;
        }
        let info = table.class(cur)?;
        if let Some(m) = info.decl.methods.iter().find(|m| m.name.name == method) {
            return Some((chain, m));
        }
        match &info.decl.extends {
            Some(ct) if ct.name.name != "Object" => {
                chain.push((ct.name.name, ct.owners.clone()));
                cur = ct.name.name;
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_lang::parser::parse_program;
    use rtj_types::check_program;

    fn layouts(src: &str) -> (Layouts, ProgramTable) {
        let checked = check_program(&parse_program(src).unwrap()).unwrap();
        (Layouts::new(&checked.table), checked.table)
    }

    #[test]
    fn class_layout_with_inheritance() {
        let (l, _) = layouts(
            r#"
            class B<Owner o> { int x; C<o> c; }
            class A<Owner o> extends B<o> { bool y; }
            class C<Owner o> { int v; }
            { }
            "#,
        );
        let a = l.class("A".into()).unwrap();
        assert_eq!(a.field_names, vec!["x", "c", "y"]);
        assert_eq!(a.field_index[&Symbol::intern("y")], 2);
        assert_eq!(
            a.field_defaults,
            vec![Value::Int(0), Value::Null, Value::Bool(false)]
        );
    }

    #[test]
    fn region_spec_from_kind() {
        let (l, _) = layouts(
            r#"
            regionKind Buf extends SharedRegion {
                subregion Sub : LT(2048) NoRT b;
            }
            regionKind Sub extends SharedRegion {
                Frame<this> f;
            }
            class Frame<Owner o> { int d; }
            { }
            "#,
        );
        let spec = l.region_spec(Some("Buf".into()), Policy::Vt);
        assert_eq!(spec.kind_name.as_deref(), Some("Buf"));
        assert_eq!(spec.subregions.len(), 1);
        let (member, sub) = &spec.subregions[0];
        assert_eq!(member, "b");
        assert_eq!(sub.policy, AllocPolicy::Lt { capacity: 2048 });
        assert_eq!(sub.reservation, Reservation::NoRtOnly);
        assert_eq!(sub.portals, vec!["f".to_string()]);
    }

    #[test]
    fn method_chain_resolution() {
        let (_, t) = layouts(
            r#"
            class B<Owner o> { int get() { return 1; } }
            class A<Owner o, Owner p> extends B<o> { }
            { }
            "#,
        );
        let (chain, m) = resolve_method_chain(&t, "A".into(), "get".into()).unwrap();
        assert_eq!(m.name.name, "get");
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].0, "B");
        let (chain, _) = resolve_method_chain(&t, "B".into(), "get".into()).unwrap();
        assert!(chain.is_empty());
        assert!(resolve_method_chain(&t, "A".into(), "nope".into()).is_none());
    }
}
