//! The evaluator: a big-step interpreter over the elaborated AST,
//! executing on the simulated RTSJ runtime.
//!
//! Owner parameters are a *runtime* notion here, mirroring the static
//! semantics: every object stores the runtime owners it was allocated
//! with, every frame binds method owner formals to runtime owners, and
//! `new C<o…>` allocates in the region denoted by the first owner —
//! exactly the paper's "an object is allocated in the region of its
//! owner" (property O2).

use crate::layout::{resolve_method_chain, Layouts};
use crate::machine::{Machine, RunError};
use rtj_lang::ast::*;
use rtj_lang::Symbol;
use rtj_runtime::{ObjId, RegionId, Runtime, RuntimeOwner, ThreadClass, ThreadId, Value};
use rtj_types::ProgramTable;
use std::sync::Arc;

/// The immutable program data shared by all threads.
pub struct ProgramData {
    /// The elaborated program.
    pub program: Program,
    /// Its class/region-kind table.
    pub table: ProgramTable,
    /// Precomputed layouts.
    pub layouts: Layouts,
}

impl ProgramData {
    /// Finds a method body by declaring class and name.
    pub fn method_body(&self, class: Symbol, method: Symbol) -> Option<&MethodDecl> {
        self.table
            .class(class)?
            .decl
            .methods
            .iter()
            .find(|m| m.name.name == method)
    }
}

/// A call frame.
#[derive(Debug, Clone, Default)]
pub struct Frame {
    vars: Vec<(String, Value)>,
    regions: Vec<(String, RegionId)>,
    owners: Vec<(String, RuntimeOwner)>,
    this_obj: Option<ObjId>,
    initial_region: Option<RegionId>,
    current_region: Option<RegionId>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    fn assign(&mut self, name: &str, v: Value) -> bool {
        for (n, slot) in self.vars.iter_mut().rev() {
            if n == name {
                *slot = v;
                return true;
            }
        }
        false
    }
}

/// Control flow out of a statement.
enum Flow {
    Normal,
    Return(Value),
}

/// A single thread's evaluator.
pub struct Evaluator {
    machine: Arc<Machine>,
    data: Arc<ProgramData>,
    tid: ThreadId,
    heap: RegionId,
    immortal: RegionId,
    is_rt: bool,
    pending_cycles: u64,
    pending_steps: u64,
    step_cost: u64,
    call_cost: u64,
    call_depth: u32,
}

/// Maximum interpreter call depth (guards the native stack; deep
/// recursion in the interpreted program raises a runtime error instead
/// of aborting the process). Each interpreted call consumes several
/// native frames, so this is deliberately conservative.
pub const MAX_CALL_DEPTH: u32 = 96;

impl Evaluator {
    /// Creates an evaluator for thread `tid`.
    pub fn new(
        machine: Arc<Machine>,
        data: Arc<ProgramData>,
        tid: ThreadId,
        is_rt: bool,
    ) -> Evaluator {
        let (heap, immortal, step_cost, call_cost) = machine.with(|rt| {
            (
                rt.heap(),
                rt.immortal(),
                rt.cost_model().step,
                rt.cost_model().call,
            )
        });
        Evaluator {
            machine,
            data,
            tid,
            heap,
            immortal,
            is_rt,
            pending_cycles: 0,
            pending_steps: 0,
            step_cost,
            call_cost,
            call_depth: 0,
        }
    }

    /// Runs the program's main block (thread 0).
    pub fn run_main(&mut self) -> Result<(), RunError> {
        let main = self.data.program.main.clone();
        let mut frame = Frame {
            initial_region: Some(self.heap),
            current_region: Some(self.heap),
            ..Frame::default()
        };
        match self.eval_block(&mut frame, &main)? {
            Flow::Normal | Flow::Return(_) => {}
        }
        self.flush()?;
        Ok(())
    }

    /// Runs a forked method body in `frame` (already built by the parent).
    pub fn run_method(
        &mut self,
        mut frame: Frame,
        decl_class: Symbol,
        method: Symbol,
    ) -> Result<(), RunError> {
        self.machine.safepoint(self.tid)?;
        let body = self
            .data
            .method_body(decl_class, method)
            .ok_or_else(|| RunError::Interp(format!("no method {decl_class}.{method}")))?
            .body
            .clone();
        self.eval_block(&mut frame, &body)?;
        self.flush()?;
        Ok(())
    }

    // ------------------------------------------------------------- plumbing

    fn step(&mut self) {
        self.pending_cycles += self.step_cost;
        self.pending_steps += 1;
    }

    fn charge(&mut self, cycles: u64) {
        self.pending_cycles += cycles;
    }

    fn flush(&mut self) -> Result<(), RunError> {
        if self.pending_cycles > 0 || self.pending_steps > 0 {
            let (c, s) = (self.pending_cycles, self.pending_steps);
            self.pending_cycles = 0;
            self.pending_steps = 0;
            self.machine.charge_steps(c, s)?;
        }
        Ok(())
    }

    fn rt_op<R>(
        &mut self,
        f: impl FnOnce(&mut Runtime) -> Result<R, rtj_runtime::RtError>,
    ) -> Result<R, RunError> {
        self.flush()?;
        self.machine.with(f).map_err(RunError::from)
    }

    fn safepoint(&mut self) -> Result<(), RunError> {
        self.flush()?;
        self.machine.safepoint(self.tid)
    }

    fn resolve_owner(&self, frame: &Frame, o: &OwnerRef) -> Result<RuntimeOwner, RunError> {
        match o {
            OwnerRef::Name(id) => {
                if let Some((_, ow)) = frame.owners.iter().rev().find(|(n, _)| n == &id.name) {
                    return Ok(*ow);
                }
                if let Some((_, r)) = frame.regions.iter().rev().find(|(n, _)| n == &id.name) {
                    return Ok(RuntimeOwner::Region(*r));
                }
                Err(RunError::Interp(format!("unbound owner `{}`", id.name)))
            }
            OwnerRef::This(_) => frame
                .this_obj
                .map(RuntimeOwner::Object)
                .ok_or_else(|| RunError::Interp("`this` outside a method".into())),
            OwnerRef::InitialRegion(_) => frame
                .initial_region
                .map(RuntimeOwner::Region)
                .ok_or_else(|| RunError::Interp("no initialRegion".into())),
            OwnerRef::Heap(_) => Ok(RuntimeOwner::Region(self.heap)),
            OwnerRef::Immortal(_) => Ok(RuntimeOwner::Region(self.immortal)),
            OwnerRef::Rt(_) => Err(RunError::Interp("`RT` is not a value owner".into())),
        }
    }

    // ----------------------------------------------------------- statements

    fn eval_block(&mut self, frame: &mut Frame, b: &Block) -> Result<Flow, RunError> {
        let vars = frame.vars.len();
        let regions = frame.regions.len();
        let flow = self.eval_stmts(frame, &b.stmts);
        frame.vars.truncate(vars);
        frame.regions.truncate(regions);
        flow
    }

    fn eval_stmts(&mut self, frame: &mut Frame, stmts: &[Stmt]) -> Result<Flow, RunError> {
        for s in stmts {
            match self.eval_stmt(frame, s)? {
                Flow::Normal => {}
                ret => return Ok(ret),
            }
        }
        Ok(Flow::Normal)
    }

    fn eval_stmt(&mut self, frame: &mut Frame, s: &Stmt) -> Result<Flow, RunError> {
        self.step();
        match s {
            Stmt::Let { name, init, .. } => {
                let v = self.eval_expr(frame, init)?;
                frame.vars.push((name.name.to_string(), v));
                Ok(Flow::Normal)
            }
            Stmt::AssignLocal { name, value, .. } => {
                let v = self.eval_expr(frame, value)?;
                if !frame.assign(name.name.as_str(), v) {
                    return Err(RunError::Interp(format!("unbound variable `{name}`")));
                }
                Ok(Flow::Normal)
            }
            Stmt::AssignField {
                recv, field, value, ..
            } => {
                let recv_v = self.eval_expr(frame, recv)?;
                let v = self.eval_expr(frame, value)?;
                match recv_v {
                    Value::Ref(obj) => {
                        let idx = self.field_index(obj, field.name)?;
                        let t = self.tid;
                        self.rt_op(|rt| rt.store_field(t, obj, idx, v))?;
                    }
                    Value::Handle(r) => {
                        let t = self.tid;
                        let name = field.name;
                        self.rt_op(|rt| rt.store_portal(t, r, name.as_str(), v))?;
                    }
                    Value::Null => {
                        return Err(RunError::Interp("null dereference in field write".into()))
                    }
                    other => {
                        return Err(RunError::Interp(format!("cannot write field of `{other}`")))
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval_expr(frame, e)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                let c = self.eval_expr(frame, cond)?;
                match c {
                    Value::Bool(true) => self.eval_block(frame, then_blk),
                    Value::Bool(false) => match else_blk {
                        Some(eb) => self.eval_block(frame, eb),
                        None => Ok(Flow::Normal),
                    },
                    other => Err(RunError::Interp(format!(
                        "if condition evaluated to `{other}`"
                    ))),
                }
            }
            Stmt::While { cond, body, .. } => loop {
                self.safepoint()?;
                let c = self.eval_expr(frame, cond)?;
                match c {
                    Value::Bool(true) => match self.eval_block(frame, body)? {
                        Flow::Normal => {}
                        ret => return Ok(ret),
                    },
                    Value::Bool(false) => return Ok(Flow::Normal),
                    other => {
                        return Err(RunError::Interp(format!(
                            "while condition evaluated to `{other}`"
                        )))
                    }
                }
            },
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval_expr(frame, e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            Stmt::LocalRegion {
                region,
                handle,
                body,
                ..
            } => {
                let t = self.tid;
                let r = self
                    .rt_op(|rt| rt.create_region(t, rtj_runtime::RegionSpec::plain_vt(), false))?;
                let flow = self.with_region(frame, region, handle, r, body);
                let exit = self.rt_op(|rt| rt.exit_created_region(t, r));
                let flow = flow?;
                exit?;
                Ok(flow)
            }
            Stmt::NewRegion {
                kind,
                policy,
                region,
                handle,
                body,
                ..
            } => {
                let kind_name = match kind {
                    KindAnn::Named { name, .. } => Some(name.name),
                    _ => None,
                };
                let spec = self.data.layouts.region_spec(kind_name, *policy);
                let t = self.tid;
                let r = self.rt_op(|rt| rt.create_region(t, spec, true))?;
                let flow = self.with_region(frame, region, handle, r, body);
                let exit = self.rt_op(|rt| rt.exit_created_region(t, r));
                let flow = flow?;
                exit?;
                Ok(flow)
            }
            Stmt::EnterSubregion {
                region,
                handle,
                fresh,
                parent,
                sub,
                body,
                ..
            } => {
                let Some(Value::Handle(pr)) = frame.lookup(parent.name.as_str()).cloned() else {
                    return Err(RunError::Interp(format!(
                        "`{parent}` is not a region handle"
                    )));
                };
                let r = self.locked_enter(pr, sub.name.as_str(), *fresh)?;
                let flow = self.with_region(frame, region, handle, r, body);
                let exit = self.locked_exit(pr, r);
                let flow = flow?;
                exit?;
                Ok(flow)
            }
            Stmt::Fork { rt, call, .. } => {
                self.eval_fork(frame, *rt, call)?;
                Ok(Flow::Normal)
            }
        }
    }

    /// Binds a region name + handle variable, runs the body with the new
    /// region current, and restores the frame.
    fn with_region(
        &mut self,
        frame: &mut Frame,
        region: &Ident,
        handle: &Ident,
        r: RegionId,
        body: &Block,
    ) -> Result<Flow, RunError> {
        frame.regions.push((region.name.to_string(), r));
        frame.vars.push((handle.name.to_string(), Value::Handle(r)));
        let saved = frame.current_region;
        frame.current_region = Some(r);
        let flow = self.eval_block(frame, body);
        frame.current_region = saved;
        frame.vars.pop();
        frame.regions.pop();
        flow
    }

    /// The two-phase subregion entry protocol. Acquiring the parent's
    /// bookkeeping lock may require waiting for another thread — for a
    /// real-time thread this wait is the RTSJ priority-inversion window
    /// and is recorded in the statistics.
    fn locked_enter(
        &mut self,
        parent: RegionId,
        member: &str,
        fresh: bool,
    ) -> Result<RegionId, RunError> {
        let t = self.tid;
        let target = self.rt_op(|rt| rt.subregion_lock_target(parent, member, fresh))?;
        self.acquire_lock(target)?;
        // Safepoint while holding the lock: a regular thread can be paused
        // by the collector right here, which is exactly the inversion the
        // paper's type system rules out by separating RT and NoRT
        // subregions.
        self.safepoint()?;
        let entered = self.rt_op(|rt| rt.enter_subregion_locked(t, parent, member, fresh));
        let unlock = self.rt_op(|rt| rt.unlock_region(t, target));
        let r = entered?;
        unlock?;
        Ok(r)
    }

    fn locked_exit(&mut self, _parent: RegionId, r: RegionId) -> Result<(), RunError> {
        let t = self.tid;
        self.acquire_lock(r)?;
        self.safepoint()?;
        let exited = self.rt_op(|rt| rt.exit_subregion_locked(t, r));
        let unlock = self.rt_op(|rt| rt.unlock_region(t, r));
        exited?;
        unlock?;
        Ok(())
    }

    /// Spins (advancing virtual time) until the bookkeeping lock on
    /// `target` is acquired. Real-time threads' waits are recorded: this
    /// is the RTSJ priority-inversion window.
    fn acquire_lock(&mut self, target: RegionId) -> Result<(), RunError> {
        let t = self.tid;
        let spin = self.machine.with(|rt| rt.cost_model().region_enter_exit);
        let wait_start = self.machine.with(|rt| rt.now());
        let mut waited = false;
        loop {
            self.flush()?;
            let got = self.machine.with(|rt| rt.try_lock_region(t, target));
            if got {
                break;
            }
            waited = true;
            self.charge(spin);
            self.safepoint()?;
        }
        if waited && self.is_rt {
            let now = self.machine.with(|rt| rt.now());
            self.machine
                .with(|rt| rt.note_rt_lock_wait(now - wait_start));
        }
        Ok(())
    }

    // ----------------------------------------------------------- expressions

    fn eval_expr(&mut self, frame: &mut Frame, e: &Expr) -> Result<Value, RunError> {
        self.step();
        match e {
            Expr::Int(n, _) => Ok(Value::Int(*n)),
            Expr::Bool(b, _) => Ok(Value::Bool(*b)),
            Expr::Str(s, _) => Ok(Value::Str(s.clone())),
            Expr::Null(_) => Ok(Value::Null),
            Expr::This(_) => frame
                .this_obj
                .map(Value::Ref)
                .ok_or_else(|| RunError::Interp("`this` outside a method".into())),
            Expr::Var(id) => frame
                .lookup(id.name.as_str())
                .cloned()
                .ok_or_else(|| RunError::Interp(format!("unbound variable `{id}`"))),
            Expr::Unary { op, expr, .. } => {
                let v = self.eval_expr(frame, expr)?;
                match (op, v) {
                    (UnOp::Neg, Value::Int(n)) => Ok(Value::Int(n.wrapping_neg())),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    (op, v) => Err(RunError::Interp(format!("bad operand {v} for {op:?}"))),
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => self.eval_binary(frame, *op, lhs, rhs),
            Expr::Field { recv, field, .. } => {
                let recv_v = self.eval_expr(frame, recv)?;
                match recv_v {
                    Value::Ref(obj) => {
                        let idx = self.field_index(obj, field.name)?;
                        let t = self.tid;
                        self.rt_op(|rt| rt.load_field(t, obj, idx))
                    }
                    Value::Handle(r) => {
                        let t = self.tid;
                        let name = field.name;
                        self.rt_op(|rt| rt.load_portal(t, r, name.as_str()))
                    }
                    Value::Null => Err(RunError::Interp("null dereference in field read".into())),
                    other => Err(RunError::Interp(format!("cannot read field of `{other}`"))),
                }
            }
            Expr::Call {
                recv,
                method,
                owner_args,
                args,
                ..
            } => {
                let recv_v = self.eval_expr(frame, recv)?;
                let Value::Ref(obj) = recv_v else {
                    return Err(RunError::Interp(format!(
                        "method call on non-object `{recv_v}`"
                    )));
                };
                let mut arg_vals = Vec::with_capacity(args.len());
                for a in args {
                    arg_vals.push(self.eval_expr(frame, a)?);
                }
                let (callee_frame, decl_class, mname) =
                    self.build_callee_frame(frame, obj, method.name, owner_args, arg_vals)?;
                self.charge(self.call_cost);
                self.safepoint()?;
                if self.call_depth >= MAX_CALL_DEPTH {
                    return Err(RunError::Interp(format!(
                        "call depth exceeded {MAX_CALL_DEPTH} (unbounded recursion?)"
                    )));
                }
                let body = self
                    .data
                    .method_body(decl_class, mname)
                    .ok_or_else(|| RunError::Interp(format!("no method {decl_class}.{mname}")))?
                    .body
                    .clone();
                let mut callee_frame = callee_frame;
                self.call_depth += 1;
                let flow = self.eval_block(&mut callee_frame, &body);
                self.call_depth -= 1;
                match flow? {
                    Flow::Return(v) => Ok(v),
                    Flow::Normal => Ok(Value::Null),
                }
            }
            Expr::New { class, .. } => {
                let mut owners = Vec::with_capacity(class.owners.len());
                for o in &class.owners {
                    owners.push(self.resolve_owner(frame, o)?);
                }
                let first = owners.first().cloned().ok_or_else(|| {
                    RunError::Interp(format!("`new {}` with no owners", class.name))
                })?;
                let layout =
                    self.data.layouts.class(class.name.name).ok_or_else(|| {
                        RunError::Interp(format!("unknown class `{}`", class.name))
                    })?;
                let n_fields = layout.field_defaults.len();
                let defaults: Vec<(usize, Value)> = layout
                    .field_defaults
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !matches!(v, Value::Null))
                    .map(|(i, v)| (i, v.clone()))
                    .collect();
                let t = self.tid;
                let name = class.name.name;
                let obj = self.rt_op(move |rt| {
                    let obj = rt.alloc(t, first, name, owners, n_fields)?;
                    for (i, v) in defaults {
                        rt.init_field_raw(obj, i, v);
                    }
                    Ok(obj)
                })?;
                Ok(Value::Ref(obj))
            }
            Expr::IntrinsicCall {
                intrinsic, args, ..
            } => match intrinsic {
                Intrinsic::Print => {
                    let v = self.eval_expr(frame, &args[0])?;
                    self.flush()?;
                    self.machine.with(|rt| rt.print(v.to_string()));
                    Ok(Value::Null)
                }
                Intrinsic::Io | Intrinsic::Workload => {
                    let v = self.eval_expr(frame, &args[0])?;
                    let n = v
                        .as_int()
                        .ok_or_else(|| RunError::Interp("io/workload needs int".into()))?;
                    self.charge(n.max(0) as u64);
                    if matches!(intrinsic, Intrinsic::Io) {
                        self.safepoint()?;
                    }
                    Ok(Value::Null)
                }
                Intrinsic::Yield => {
                    self.safepoint()?;
                    Ok(Value::Null)
                }
            },
        }
    }

    fn eval_binary(
        &mut self,
        frame: &mut Frame,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
    ) -> Result<Value, RunError> {
        // Short-circuit logical operators.
        if matches!(op, BinOp::And | BinOp::Or) {
            let l = self.eval_expr(frame, lhs)?;
            let Value::Bool(lb) = l else {
                return Err(RunError::Interp(format!("bad operand {l} for {op}")));
            };
            if (op == BinOp::And && !lb) || (op == BinOp::Or && lb) {
                return Ok(Value::Bool(lb));
            }
            let r = self.eval_expr(frame, rhs)?;
            let Value::Bool(rb) = r else {
                return Err(RunError::Interp(format!("bad operand {r} for {op}")));
            };
            return Ok(Value::Bool(rb));
        }
        let l = self.eval_expr(frame, lhs)?;
        let r = self.eval_expr(frame, rhs)?;
        use BinOp::*;
        let out = match (op, &l, &r) {
            (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
            (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
            (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
            (Div, Value::Int(_), Value::Int(0)) => {
                return Err(RunError::Interp("division by zero".into()))
            }
            (Rem, Value::Int(_), Value::Int(0)) => {
                return Err(RunError::Interp("remainder by zero".into()))
            }
            (Div, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_div(*b)),
            (Rem, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_rem(*b)),
            (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
            (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
            (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
            (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
            (Eq, a, b) => Value::Bool(a == b),
            (Ne, a, b) => Value::Bool(a != b),
            (op, a, b) => return Err(RunError::Interp(format!("bad operands {a}, {b} for {op}"))),
        };
        Ok(out)
    }

    fn field_index(&self, obj: ObjId, field: Symbol) -> Result<usize, RunError> {
        let class = self.machine.with(|rt| rt.object(obj).class_name);
        self.data
            .layouts
            .class(class)
            .and_then(|l| l.field_index.get(&field).copied())
            .ok_or_else(|| RunError::Interp(format!("no field `{field}` on `{class}`")))
    }

    /// Builds a frame for invoking `method` on `obj`, resolving the
    /// declaring class's owner parameters against the object's stored
    /// runtime owners (walking the superclass chain) and binding method
    /// owner formals to the call's owner arguments.
    fn build_callee_frame(
        &mut self,
        caller: &Frame,
        obj: ObjId,
        method: Symbol,
        owner_arg_refs: &[OwnerRef],
        arg_vals: Vec<Value>,
    ) -> Result<(Frame, Symbol, Symbol), RunError> {
        let (class, mut cur_owners) = self
            .machine
            .with(|rt| (rt.object(obj).class_name, rt.object(obj).owners.clone()));
        let (chain, mdecl) = resolve_method_chain(&self.data.table, class, method)
            .ok_or_else(|| RunError::Interp(format!("no method `{method}` on `{class}`")))?;
        let mut cur_class = class;
        for (super_name, super_refs) in &chain {
            let layout = self
                .data
                .layouts
                .class(cur_class)
                .ok_or_else(|| RunError::Interp(format!("unknown class `{cur_class}`")))?;
            let mut next = Vec::with_capacity(super_refs.len());
            for r in super_refs {
                let o = match r {
                    OwnerRef::Name(id) => {
                        let pos = layout
                            .formal_names
                            .iter()
                            .position(|n| n == &id.name)
                            .ok_or_else(|| {
                                RunError::Interp(format!("unbound owner `{}`", id.name))
                            })?;
                        cur_owners[pos]
                    }
                    OwnerRef::This(_) => RuntimeOwner::Object(obj),
                    OwnerRef::Heap(_) => RuntimeOwner::Region(self.heap),
                    OwnerRef::Immortal(_) => RuntimeOwner::Region(self.immortal),
                    other => {
                        return Err(RunError::Interp(format!(
                            "invalid owner `{other:?}` in extends clause"
                        )))
                    }
                };
                next.push(o);
            }
            cur_owners = next;
            cur_class = *super_name;
        }
        let decl_layout = self
            .data
            .layouts
            .class(cur_class)
            .ok_or_else(|| RunError::Interp(format!("unknown class `{cur_class}`")))?;
        let mut owners: Vec<(String, RuntimeOwner)> = decl_layout
            .formal_names
            .iter()
            .map(|n| n.as_str().to_owned())
            .zip(cur_owners)
            .collect();
        if owner_arg_refs.len() != mdecl.formals.len() {
            return Err(RunError::Interp(format!(
                "method `{method}` expects {} owner argument(s), found {} \
                 (was the program checked?)",
                mdecl.formals.len(),
                owner_arg_refs.len()
            )));
        }
        for (f, r) in mdecl.formals.iter().zip(owner_arg_refs) {
            owners.push((f.name.name.to_string(), self.resolve_owner(caller, r)?));
        }
        if arg_vals.len() != mdecl.params.len() {
            return Err(RunError::Interp(format!(
                "method `{method}` expects {} argument(s), found {}",
                mdecl.params.len(),
                arg_vals.len()
            )));
        }
        let vars = mdecl
            .params
            .iter()
            .map(|p| p.name.name.to_string())
            .zip(arg_vals)
            .collect();
        let mname = mdecl.name.name;
        Ok((
            Frame {
                vars,
                regions: Vec::new(),
                owners,
                this_obj: Some(obj),
                initial_region: caller.current_region,
                current_region: caller.current_region,
            },
            cur_class,
            mname,
        ))
    }

    /// `fork` / `RT fork`: evaluates receiver, owner arguments, and value
    /// arguments in the parent, then spawns a runtime thread plus an OS
    /// thread running the method body.
    fn eval_fork(&mut self, frame: &mut Frame, rt: bool, call: &Expr) -> Result<(), RunError> {
        let Expr::Call {
            recv,
            method,
            owner_args,
            args,
            ..
        } = call
        else {
            return Err(RunError::Interp("fork target must be a call".into()));
        };
        let recv_v = self.eval_expr(frame, recv)?;
        let Value::Ref(obj) = recv_v else {
            return Err(RunError::Interp("fork receiver must be an object".into()));
        };
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in args {
            arg_vals.push(self.eval_expr(frame, a)?);
        }
        let (child_frame, decl_class, mname) =
            self.build_callee_frame(frame, obj, method.name, owner_args, arg_vals)?;
        let class = if rt {
            ThreadClass::RealTime
        } else {
            ThreadClass::Regular
        };
        self.flush()?;
        let me = self.tid;
        let child_tid = self.machine.with(|rt| rt.spawn_thread(me, class));
        self.machine.register_thread(child_tid, class);
        let machine = Arc::clone(&self.machine);
        let data = Arc::clone(&self.data);
        let is_rt = rt;
        std::thread::Builder::new()
            .name(format!("rtj-thread-{}", child_tid.0))
            .stack_size(16 << 20)
            .spawn(move || {
                let mut ev = Evaluator::new(Arc::clone(&machine), data, child_tid, is_rt);
                let result = ev.run_method(child_frame, decl_class, mname);
                if let Err(e) = &result {
                    // Step-limit and halts already propagate; only record
                    // real errors once.
                    machine.halt(e.clone());
                }
                let _ = machine.with(|rt| rt.finish_thread(child_tid));
                machine.finish(child_tid);
            })
            .expect("spawn interpreter thread");
        Ok(())
    }
}
