//! Bytecode: a compact, flat instruction encoding of the elaborated AST.
//!
//! The compiler lowers each method body (and the main block) to a flat
//! `Vec<Op>` once per run; the [`crate::vm::Vm`] then dispatches over the
//! vector with no `Box<Expr>` pointer-chasing, no string comparisons
//! (locals, regions, and owner formals are resolved to slot indices at
//! compile time), and no per-call body cloning.
//!
//! # Step parity
//!
//! The tree-walker charges one *step* at the entry of every statement and
//! expression node, accumulating them in a thread-local pending counter
//! that is flushed to the shared clock only at runtime operations,
//! safepoints, and `print`. Between two consecutive flush points only the
//! *totals* matter, never the order, so the compiler keeps a compile-time
//! pending-step counter (bumped pre-order at each node) and materialises
//! it lazily as an [`Op::Step`] before any instruction that may flush at
//! runtime, before jumps, and before jump targets. This makes cycle
//! accounting — and therefore `rtj-metrics/v1` snapshots and trace
//! timestamps — byte-identical between the two engines.
//!
//! # Error parity
//!
//! Name-resolution failures the tree-walker would only discover at
//! runtime (unbound variables, `this` outside a method, …) compile to
//! [`Op::Fail`] instructions or failing [`OwnerOp`]s placed exactly where
//! the tree-walker would raise them, with the identical message.

use crate::eval::ProgramData;
use crate::layout::Layouts;
use rtj_lang::ast::*;
use rtj_lang::Symbol;
use rtj_runtime::{RegionSpec, Value};
use std::collections::HashMap;

/// Which conditional statement a [`Op::JumpIfFalse`] belongs to (the
/// non-boolean-condition error message differs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondCtx {
    /// `if (c) …`
    If,
    /// `while (c) …`
    While,
}

/// How one owner argument at a `new` / call / fork site is produced at
/// runtime. Resolved at compile time against the enclosing function's
/// owner formals and lexically open regions (formals shadow regions, as
/// in the tree-walker's `resolve_owner`).
#[derive(Debug, Clone, Copy)]
pub enum OwnerOp {
    /// The function's owner formal in slot `.0` (class formals first,
    /// then method formals).
    Formal(u32),
    /// The region in region slot `.0` of the current frame.
    Region(u32),
    /// The receiver object (`this`).
    This,
    /// The frame's `initialRegion`.
    InitialRegion,
    /// The garbage-collected heap.
    Heap,
    /// The immortal region.
    Immortal,
    /// Unresolvable name: fails with ``unbound owner `name` ``.
    FailUnbound(Symbol),
    /// `RT` used as a value owner: fails like the tree-walker.
    FailRt,
    /// `this` used outside a method: fails like the tree-walker.
    FailThis,
}

/// A field access site (`recv.f` read or write). The VM keys a
/// monomorphic inline cache on the receiver's interned class symbol; on
/// a hit the field slot is a single pointer-compare away.
#[derive(Debug, Clone)]
pub struct FieldSite {
    /// The field (or portal) name.
    pub field: Symbol,
}

/// A method call or fork site.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Method name.
    pub method: Symbol,
    /// Owner arguments for the method's own formals.
    pub owner_ops: Box<[OwnerOp]>,
    /// Number of value arguments on the operand stack.
    pub n_args: u32,
    /// `Some(is_rt)` when this site is a `fork` statement.
    pub fork_rt: Option<bool>,
}

/// A `new cn<o…>` site with the class layout pre-resolved.
#[derive(Debug, Clone)]
pub struct NewSite {
    /// Allocated class.
    pub class: Symbol,
    /// Owner arguments; the first denotes the allocation region.
    pub owner_ops: Box<[OwnerOp]>,
    /// Total field count from the layout.
    pub n_fields: u32,
    /// Non-null primitive field defaults `(slot, value)`.
    pub defaults: Box<[(u32, Value)]>,
    /// Whether the class has a layout (`false` compiles to the
    /// tree-walker's ``unknown class`` error).
    pub known: bool,
}

/// What kind of region a [`Op::RegionEnter`] creates or enters.
#[derive(Debug, Clone)]
pub enum RegionSiteKind {
    /// `(RHandle<r> h) { … }` — an anonymous `LocalRegion : VT`.
    Local,
    /// `(RHandle<kind : policy r> h) { … }` — a top-level region with a
    /// precomputed spec (cloned per execution).
    New {
        /// The region spec derived from the kind declaration.
        spec: RegionSpec,
    },
    /// `(RHandle<kind r2> h2 = [new] h.sub) { … }` — enter a subregion
    /// through the two-phase locking protocol.
    Sub {
        /// Subregion member name.
        member: Symbol,
        /// `new` present: recreate the subregion instance.
        fresh: bool,
        /// Local slot holding the parent's region handle.
        parent_slot: u32,
        /// Parent variable name (for the not-a-handle error).
        parent_name: Symbol,
    },
}

/// A region statement site.
#[derive(Debug, Clone)]
pub struct RegionSite {
    /// What to create/enter.
    pub kind: RegionSiteKind,
    /// Region slot the new region id is stored into.
    pub region_slot: u32,
    /// Local slot the handle value is stored into.
    pub handle_slot: u32,
}

/// One VM instruction. `u32` operands index the side tables in
/// [`CompiledProgram`].
#[derive(Debug, Clone, Copy)]
pub enum Op {
    /// Accumulate `.0` interpreter steps into the thread's pending
    /// cycle/step counters (lazily flushed, like the tree-walker's).
    Step(u32),
    /// Push an integer literal.
    ConstInt(i64),
    /// Push a boolean literal.
    ConstBool(bool),
    /// Push `null`.
    ConstNull,
    /// Push a string literal from the string pool.
    ConstStr(u32),
    /// Push a copy of local slot `.0`.
    LoadLocal(u32),
    /// Pop into local slot `.0`.
    StoreLocal(u32),
    /// Pop and discard the top of stack.
    Pop,
    /// Push `this` (compile-time guaranteed to be in a method frame).
    This,
    /// Apply a unary operator to the top of stack.
    Unary(UnOp),
    /// Apply a non-short-circuit binary operator to the top two values.
    Binary(BinOp),
    /// Unconditional jump to instruction `.0`.
    Jump(u32),
    /// Pop a boolean; jump to `target` when false. Non-booleans raise
    /// the `ctx`-specific condition error.
    JumpIfFalse {
        /// Jump target.
        target: u32,
        /// Which statement's error message to use.
        ctx: CondCtx,
    },
    /// Short-circuit `&&`: pop; on `false` push `false` and jump, on
    /// `true` fall through to the right operand.
    ScAnd(u32),
    /// Short-circuit `||`: pop; on `true` push `true` and jump.
    ScOr(u32),
    /// Verify the top of stack is a boolean (right operand of `&&`/`||`).
    CheckBool(BinOp),
    /// Pop a receiver and load field/portal [`FieldSite`] `.0`.
    LoadField(u32),
    /// Pop value then receiver and store into [`FieldSite`] `.0`.
    StoreField(u32),
    /// Verify the value under the pending arguments is an object
    /// reference (emitted between receiver and argument code so the
    /// non-object error precedes argument effects, as in the tree).
    CheckRecv {
        /// `true` for fork sites (different error message).
        fork: bool,
    },
    /// Invoke [`CallSite`] `.0`: `[recv, args…]` on the stack.
    Call(u32),
    /// Fork a thread running [`CallSite`] `.0`.
    Fork(u32),
    /// Allocate [`NewSite`] `.0` and push the reference.
    New(u32),
    /// Create/enter the region of [`RegionSite`] `.0` and open a scope.
    RegionEnter(u32),
    /// Close the innermost region scope and run its exit protocol.
    RegionExit,
    /// Pop a value and print it (flushes pending steps first).
    Print,
    /// Pop an int, charge it as I/O cycles, and hit a safepoint; pushes
    /// `null`.
    Io,
    /// Pop an int and charge it as workload cycles; pushes `null`.
    Workload,
    /// Flush pending steps and hit a scheduler safepoint.
    Safepoint,
    /// Pop the current frame, leaving the return value on the stack;
    /// with no caller frame the thread's execution completes.
    Ret,
    /// Raise the interpreter error in the message table at `.0`.
    Fail(u32),
}

/// One compiled function (the main block or a method body).
#[derive(Debug, Clone)]
pub struct Func {
    /// The instruction vector. Always ends with `ConstNull; Ret`.
    pub code: Vec<Op>,
    /// Local value slots (parameters first).
    pub n_locals: u32,
    /// Region slots.
    pub n_regions: u32,
}

/// A whole compiled program: functions plus the side tables instruction
/// operands index into. Shared read-only across threads.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Compiled functions; index 0 is the main block.
    pub funcs: Vec<Func>,
    /// `(declaring class, method name)` → function index.
    pub methods: HashMap<(Symbol, Symbol), u32>,
    /// Call/fork sites.
    pub call_sites: Vec<CallSite>,
    /// Allocation sites.
    pub new_sites: Vec<NewSite>,
    /// Field access sites.
    pub field_sites: Vec<FieldSite>,
    /// Region statement sites.
    pub region_sites: Vec<RegionSite>,
    /// String literal pool.
    pub strings: Vec<String>,
    /// Precomputed interpreter-error messages for [`Op::Fail`].
    pub fail_msgs: Vec<String>,
}

/// Per-function compilation state.
#[derive(Default)]
struct FnState {
    code: Vec<Op>,
    pending: u32,
    vars: Vec<(Symbol, u32)>,
    n_locals: u32,
    max_locals: u32,
    regions: Vec<(Symbol, u32)>,
    n_regions: u32,
    max_regions: u32,
    owners: Vec<Symbol>,
    open_scopes: u32,
    has_this: bool,
}

struct Compiler<'p> {
    layouts: &'p Layouts,
    funcs: Vec<Func>,
    call_sites: Vec<CallSite>,
    new_sites: Vec<NewSite>,
    field_sites: Vec<FieldSite>,
    region_sites: Vec<RegionSite>,
    strings: Vec<String>,
    fail_msgs: Vec<String>,
    f: FnState,
}

/// Compiles every method of every class (plus the main block, which
/// becomes function 0) of a checked program.
pub fn compile(data: &ProgramData) -> CompiledProgram {
    let mut c = Compiler {
        layouts: &data.layouts,
        funcs: Vec::new(),
        call_sites: Vec::new(),
        new_sites: Vec::new(),
        field_sites: Vec::new(),
        region_sites: Vec::new(),
        strings: Vec::new(),
        fail_msgs: Vec::new(),
        f: FnState::default(),
    };
    c.compile_func(Vec::new(), &[], false, &data.program.main);
    let mut methods = HashMap::new();
    let mut infos: Vec<_> = data.table.classes().collect();
    infos.sort_by_key(|i| i.decl.name.name);
    for info in infos {
        let class = info.decl.name.name;
        for m in &info.decl.methods {
            let mut owners = info.formal_names.clone();
            owners.extend(m.formals.iter().map(|f| f.name.name));
            let params: Vec<Symbol> = m.params.iter().map(|p| p.name.name).collect();
            let idx = c.compile_func(owners, &params, true, &m.body);
            methods.insert((class, m.name.name), idx);
        }
    }
    CompiledProgram {
        funcs: c.funcs,
        methods,
        call_sites: c.call_sites,
        new_sites: c.new_sites,
        field_sites: c.field_sites,
        region_sites: c.region_sites,
        strings: c.strings,
        fail_msgs: c.fail_msgs,
    }
}

impl Compiler<'_> {
    fn compile_func(
        &mut self,
        owners: Vec<Symbol>,
        params: &[Symbol],
        has_this: bool,
        body: &Block,
    ) -> u32 {
        self.f = FnState {
            owners,
            has_this,
            ..FnState::default()
        };
        for (i, p) in params.iter().enumerate() {
            self.f.vars.push((*p, i as u32));
        }
        self.f.n_locals = params.len() as u32;
        self.f.max_locals = self.f.n_locals;
        self.block(body);
        self.emit(Op::ConstNull);
        self.emit(Op::Ret);
        let idx = self.funcs.len() as u32;
        self.funcs.push(Func {
            code: std::mem::take(&mut self.f.code),
            n_locals: self.f.max_locals,
            n_regions: self.f.max_regions,
        });
        idx
    }

    // ---------------------------------------------------------- emission

    /// Bump the compile-time pending step counter (one tree-walker
    /// `step()` at a statement/expression node).
    fn bump(&mut self) {
        self.f.pending += 1;
    }

    /// Materialise pending steps as an [`Op::Step`].
    fn flush_steps(&mut self) {
        if self.f.pending > 0 {
            let n = self.f.pending;
            self.f.pending = 0;
            self.f.code.push(Op::Step(n));
        }
    }

    /// Emits `op`, materialising pending steps first when the op may
    /// flush at runtime or transfers control.
    fn emit(&mut self, op: Op) {
        if matches!(
            op,
            Op::LoadField(_)
                | Op::StoreField(_)
                | Op::Call(_)
                | Op::Fork(_)
                | Op::New(_)
                | Op::RegionEnter(_)
                | Op::RegionExit
                | Op::Print
                | Op::Io
                | Op::Safepoint
                | Op::Ret
                | Op::Jump(_)
        ) {
            self.flush_steps();
        }
        self.f.code.push(op);
    }

    /// Emits a to-be-patched jump (target filled in by [`Self::patch`])
    /// and returns its index.
    fn emit_patch(&mut self, op: Op) -> usize {
        self.flush_steps();
        let at = self.f.code.len();
        self.f.code.push(op);
        at
    }

    /// A jump target at the current position (pending steps must be — and
    /// are — flushed so every predecessor agrees on the step count).
    fn label(&mut self) -> u32 {
        self.flush_steps();
        self.f.code.len() as u32
    }

    /// Points the jump at `at` to the current position.
    fn patch(&mut self, at: usize) {
        let target = self.label();
        match &mut self.f.code[at] {
            Op::Jump(t) | Op::JumpIfFalse { target: t, .. } | Op::ScAnd(t) | Op::ScOr(t) => {
                *t = target
            }
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// Emits a [`Op::Fail`] with the exact message the tree-walker would
    /// raise at this point.
    fn fail(&mut self, msg: String) {
        let i = self.fail_msgs.len() as u32;
        self.fail_msgs.push(msg);
        self.f.code.push(Op::Fail(i));
    }

    // ------------------------------------------------------------ scopes

    fn enter_block(&mut self) -> (usize, usize, u32, u32) {
        (
            self.f.vars.len(),
            self.f.regions.len(),
            self.f.n_locals,
            self.f.n_regions,
        )
    }

    fn exit_block(&mut self, saved: (usize, usize, u32, u32)) {
        self.f.vars.truncate(saved.0);
        self.f.regions.truncate(saved.1);
        self.f.n_locals = saved.2;
        self.f.n_regions = saved.3;
    }

    fn alloc_local(&mut self, name: Symbol) -> u32 {
        let slot = self.f.n_locals;
        self.f.n_locals += 1;
        self.f.max_locals = self.f.max_locals.max(self.f.n_locals);
        self.f.vars.push((name, slot));
        slot
    }

    fn alloc_region(&mut self, name: Symbol) -> u32 {
        let slot = self.f.n_regions;
        self.f.n_regions += 1;
        self.f.max_regions = self.f.max_regions.max(self.f.n_regions);
        self.f.regions.push((name, slot));
        slot
    }

    fn lookup_var(&self, name: Symbol) -> Option<u32> {
        self.f
            .vars
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    fn lookup_region(&self, name: Symbol) -> Option<u32> {
        self.f
            .regions
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
    }

    /// Compile-time mirror of the tree-walker's `resolve_owner`: owner
    /// formals (innermost last) shadow region names.
    fn resolve_owner_ref(&self, r: &OwnerRef) -> OwnerOp {
        match r {
            OwnerRef::Name(id) => {
                if let Some(slot) = self.f.owners.iter().rposition(|n| *n == id.name) {
                    return OwnerOp::Formal(slot as u32);
                }
                if let Some(slot) = self.lookup_region(id.name) {
                    return OwnerOp::Region(slot);
                }
                OwnerOp::FailUnbound(id.name)
            }
            OwnerRef::This(_) => {
                if self.f.has_this {
                    OwnerOp::This
                } else {
                    OwnerOp::FailThis
                }
            }
            OwnerRef::InitialRegion(_) => OwnerOp::InitialRegion,
            OwnerRef::Heap(_) => OwnerOp::Heap,
            OwnerRef::Immortal(_) => OwnerOp::Immortal,
            OwnerRef::Rt(_) => OwnerOp::FailRt,
        }
    }

    // -------------------------------------------------------- statements

    fn block(&mut self, b: &Block) {
        let saved = self.enter_block();
        for s in &b.stmts {
            self.stmt(s);
        }
        self.exit_block(saved);
    }

    fn stmt(&mut self, s: &Stmt) {
        self.bump();
        match s {
            Stmt::Let { name, init, .. } => {
                self.expr(init);
                let slot = self.alloc_local(name.name);
                self.emit(Op::StoreLocal(slot));
            }
            Stmt::AssignLocal { name, value, .. } => {
                self.expr(value);
                match self.lookup_var(name.name) {
                    Some(slot) => self.emit(Op::StoreLocal(slot)),
                    None => self.fail(format!("unbound variable `{name}`")),
                }
            }
            Stmt::AssignField {
                recv, field, value, ..
            } => {
                self.expr(recv);
                self.expr(value);
                let site = self.field_sites.len() as u32;
                self.field_sites.push(FieldSite { field: field.name });
                self.emit(Op::StoreField(site));
            }
            Stmt::Expr(e) => {
                self.expr(e);
                self.emit(Op::Pop);
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.expr(cond);
                let j = self.emit_patch(Op::JumpIfFalse {
                    target: 0,
                    ctx: CondCtx::If,
                });
                self.block(then_blk);
                match else_blk {
                    Some(eb) => {
                        let jend = self.emit_patch(Op::Jump(0));
                        self.patch(j);
                        self.block(eb);
                        self.patch(jend);
                    }
                    None => self.patch(j),
                }
            }
            Stmt::While { cond, body, .. } => {
                let head = self.label();
                self.emit(Op::Safepoint);
                self.expr(cond);
                let jexit = self.emit_patch(Op::JumpIfFalse {
                    target: 0,
                    ctx: CondCtx::While,
                });
                self.block(body);
                self.emit(Op::Jump(head));
                self.patch(jexit);
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(e) => self.expr(e),
                    None => self.emit(Op::ConstNull),
                }
                self.flush_steps();
                for _ in 0..self.f.open_scopes {
                    self.emit(Op::RegionExit);
                }
                self.emit(Op::Ret);
            }
            Stmt::LocalRegion {
                region,
                handle,
                body,
                ..
            } => self.region_stmt(RegionSiteKind::Local, region, handle, body),
            Stmt::NewRegion {
                kind,
                policy,
                region,
                handle,
                body,
                ..
            } => {
                let kind_name = match kind {
                    KindAnn::Named { name, .. } => Some(name.name),
                    _ => None,
                };
                let spec = self.layouts.region_spec(kind_name, *policy);
                self.region_stmt(RegionSiteKind::New { spec }, region, handle, body);
            }
            Stmt::EnterSubregion {
                region,
                handle,
                fresh,
                parent,
                sub,
                body,
                ..
            } => match self.lookup_var(parent.name) {
                Some(parent_slot) => self.region_stmt(
                    RegionSiteKind::Sub {
                        member: sub.name,
                        fresh: *fresh,
                        parent_slot,
                        parent_name: parent.name,
                    },
                    region,
                    handle,
                    body,
                ),
                None => self.fail(format!("`{parent}` is not a region handle")),
            },
            Stmt::Fork { rt, call, .. } => match call {
                Expr::Call {
                    recv,
                    method,
                    owner_args,
                    args,
                    ..
                } => self.call_like(recv, method.name, owner_args, args, Some(*rt)),
                _ => self.fail("fork target must be a call".into()),
            },
        }
    }

    fn region_stmt(&mut self, kind: RegionSiteKind, region: &Ident, handle: &Ident, body: &Block) {
        let saved = self.enter_block();
        let region_slot = self.alloc_region(region.name);
        let handle_slot = self.alloc_local(handle.name);
        let site = self.region_sites.len() as u32;
        self.region_sites.push(RegionSite {
            kind,
            region_slot,
            handle_slot,
        });
        self.emit(Op::RegionEnter(site));
        self.f.open_scopes += 1;
        self.block(body);
        self.f.open_scopes -= 1;
        self.emit(Op::RegionExit);
        self.exit_block(saved);
    }

    // ------------------------------------------------------- expressions

    fn expr(&mut self, e: &Expr) {
        self.bump();
        match e {
            Expr::Int(n, _) => self.emit(Op::ConstInt(*n)),
            Expr::Bool(b, _) => self.emit(Op::ConstBool(*b)),
            Expr::Str(s, _) => {
                let i = self.strings.len() as u32;
                self.strings.push(s.clone());
                self.emit(Op::ConstStr(i));
            }
            Expr::Null(_) => self.emit(Op::ConstNull),
            Expr::This(_) => {
                if self.f.has_this {
                    self.emit(Op::This);
                } else {
                    self.fail("`this` outside a method".into());
                }
            }
            Expr::Var(id) => match self.lookup_var(id.name) {
                Some(slot) => self.emit(Op::LoadLocal(slot)),
                None => self.fail(format!("unbound variable `{id}`")),
            },
            Expr::Unary { op, expr, .. } => {
                self.expr(expr);
                self.emit(Op::Unary(*op));
            }
            Expr::Binary { op, lhs, rhs, .. } if matches!(op, BinOp::And | BinOp::Or) => {
                self.expr(lhs);
                let j = self.emit_patch(match op {
                    BinOp::And => Op::ScAnd(0),
                    _ => Op::ScOr(0),
                });
                self.expr(rhs);
                self.emit(Op::CheckBool(*op));
                self.patch(j);
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                self.expr(lhs);
                self.expr(rhs);
                self.emit(Op::Binary(*op));
            }
            Expr::Field { recv, field, .. } => {
                self.expr(recv);
                let site = self.field_sites.len() as u32;
                self.field_sites.push(FieldSite { field: field.name });
                self.emit(Op::LoadField(site));
            }
            Expr::Call {
                recv,
                method,
                owner_args,
                args,
                ..
            } => self.call_like(recv, method.name, owner_args, args, None),
            Expr::New { class, .. } => {
                let owner_ops: Box<[OwnerOp]> = class
                    .owners
                    .iter()
                    .map(|o| self.resolve_owner_ref(o))
                    .collect();
                let (known, n_fields, defaults) = match self.layouts.class(class.name.name) {
                    Some(l) => (
                        true,
                        l.field_defaults.len() as u32,
                        l.field_defaults
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| !matches!(v, Value::Null))
                            .map(|(i, v)| (i as u32, v.clone()))
                            .collect(),
                    ),
                    None => (false, 0, Box::from([])),
                };
                let site = self.new_sites.len() as u32;
                self.new_sites.push(NewSite {
                    class: class.name.name,
                    owner_ops,
                    n_fields,
                    defaults,
                    known,
                });
                self.emit(Op::New(site));
            }
            Expr::IntrinsicCall {
                intrinsic, args, ..
            } => match intrinsic {
                Intrinsic::Print => {
                    self.expr(&args[0]);
                    self.emit(Op::Print);
                }
                Intrinsic::Io => {
                    self.expr(&args[0]);
                    self.emit(Op::Io);
                }
                Intrinsic::Workload => {
                    self.expr(&args[0]);
                    self.emit(Op::Workload);
                }
                Intrinsic::Yield => {
                    self.emit(Op::Safepoint);
                    self.emit(Op::ConstNull);
                }
            },
        }
    }

    /// Shared lowering for calls and forks: receiver, receiver check
    /// (before argument effects, matching the tree-walker's evaluation
    /// order), arguments, then the call/fork instruction.
    fn call_like(
        &mut self,
        recv: &Expr,
        method: Symbol,
        owner_args: &[OwnerRef],
        args: &[Expr],
        fork_rt: Option<bool>,
    ) {
        self.expr(recv);
        if !args.is_empty() {
            self.emit(Op::CheckRecv {
                fork: fork_rt.is_some(),
            });
        }
        for a in args {
            self.expr(a);
        }
        let owner_ops: Box<[OwnerOp]> = owner_args
            .iter()
            .map(|o| self.resolve_owner_ref(o))
            .collect();
        let site = self.call_sites.len() as u32;
        self.call_sites.push(CallSite {
            method,
            owner_ops,
            n_args: args.len() as u32,
            fork_rt,
        });
        self.emit(match fork_rt {
            Some(_) => Op::Fork(site),
            None => Op::Call(site),
        });
    }
}
