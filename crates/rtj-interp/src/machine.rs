//! The machine: shared runtime state plus a deterministic cooperative
//! scheduler.
//!
//! Program threads map to OS threads, but only the **token holder** ever
//! executes — every other thread is parked on a condition variable. At
//! each *safepoint* the running thread hands the token to the next
//! runnable thread (real-time threads first, then round-robin). The
//! result is fully deterministic interleaving on a single virtual clock.
//!
//! The garbage collector is a virtual participant: when a collection is in
//! progress, regular threads are simply not runnable until the collection
//! ends — real-time threads keep running, exactly as on the paper's RTSJ
//! platform. If *only* regular threads exist, the clock jumps over the
//! pause (and the pause is charged to the run).

use rtj_runtime::{Runtime, ThreadClass, ThreadId};
use std::fmt;
use std::sync::{Condvar, Mutex};

/// An error that halts a run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The region runtime raised an error (failed check, LT overflow, …).
    Runtime(rtj_runtime::RtError),
    /// An interpreter-level error (null dereference, division by zero, …).
    Interp(String),
    /// The global step budget was exhausted (runaway loop guard).
    StepLimit,
    /// No thread could make progress.
    Deadlock,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Runtime(e) => write!(f, "runtime error: {e}"),
            RunError::Interp(m) => write!(f, "interpreter error: {m}"),
            RunError::StepLimit => write!(f, "step limit exhausted"),
            RunError::Deadlock => write!(f, "deadlock: no thread can make progress"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<rtj_runtime::RtError> for RunError {
    fn from(e: rtj_runtime::RtError) -> Self {
        RunError::Runtime(e)
    }
}

/// Scheduler-side thread state.
#[derive(Debug, Clone)]
struct TState {
    class: ThreadClass,
    finished: bool,
}

/// State behind the machine's mutex.
pub struct Inner {
    /// The region runtime (regions, objects, clock, stats).
    pub rt: Runtime,
    threads: Vec<TState>,
    token: usize,
    halted: Option<RunError>,
    steps: u64,
    max_steps: u64,
}

/// The shared machine.
pub struct Machine {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Machine {
    /// Wraps a runtime. `max_steps` bounds total interpreter steps across
    /// all threads (0 = unlimited).
    pub fn new(rt: Runtime, max_steps: u64) -> Machine {
        Machine {
            inner: Mutex::new(Inner {
                rt,
                threads: vec![TState {
                    class: ThreadClass::Regular,
                    finished: false,
                }],
                token: 0,
                halted: None,
                steps: 0,
                max_steps: if max_steps == 0 { u64::MAX } else { max_steps },
            }),
            cv: Condvar::new(),
        }
    }

    /// Runs `f` with exclusive access to the runtime. The caller must be
    /// the token holder (i.e. the currently executing thread).
    pub fn with<R>(&self, f: impl FnOnce(&mut Runtime) -> R) -> R {
        let mut g = self.inner.lock().unwrap();
        f(&mut g.rt)
    }

    /// Registers a newly spawned program thread with the scheduler.
    pub fn register_thread(&self, tid: ThreadId, class: ThreadClass) {
        let mut g = self.inner.lock().unwrap();
        debug_assert_eq!(tid.0 as usize, g.threads.len());
        g.threads.push(TState {
            class,
            finished: false,
        });
        self.cv.notify_all();
    }

    /// Charges interpreter steps and enforces the step budget.
    pub fn charge_steps(&self, cycles: u64, steps: u64) -> Result<(), RunError> {
        let mut g = self.inner.lock().unwrap();
        g.rt.charge(cycles);
        g.steps += steps;
        if g.steps > g.max_steps && g.halted.is_none() {
            g.halted = Some(RunError::StepLimit);
            self.cv.notify_all();
        }
        match &g.halted {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Halts every thread with the given error (first error wins).
    pub fn halt(&self, err: RunError) {
        let mut g = self.inner.lock().unwrap();
        if g.halted.is_none() {
            g.halted = Some(err);
        }
        self.cv.notify_all();
    }

    /// The error that halted the run, if any.
    pub fn halt_error(&self) -> Option<RunError> {
        self.inner.lock().unwrap().halted.clone()
    }

    fn runnable(g: &Inner, idx: usize, gc_blocking: bool) -> bool {
        let t = &g.threads[idx];
        !t.finished && (!gc_blocking || t.class != ThreadClass::Regular)
    }

    /// Picks the next thread to run: real-time threads first (round-robin
    /// among them), then round-robin over everything, starting after
    /// `cur`.
    fn pick_next(g: &Inner, cur: usize, gc_blocking: bool) -> Option<usize> {
        let n = g.threads.len();
        let order = (1..=n).map(|d| (cur + d) % n);
        let mut first_any = None;
        for i in order {
            if Self::runnable(g, i, gc_blocking) {
                if g.threads[i].class == ThreadClass::RealTime {
                    return Some(i);
                }
                if first_any.is_none() {
                    first_any = Some(i);
                }
            }
        }
        first_any
    }

    /// A safepoint: polls the collector, hands the token to the next
    /// runnable thread, and blocks until this thread is scheduled again.
    ///
    /// # Errors
    ///
    /// Returns the halt error if the run was halted, or
    /// [`RunError::Deadlock`] when no thread can ever run again.
    pub fn safepoint(&self, tid: ThreadId) -> Result<(), RunError> {
        let me = tid.0 as usize;
        let mut g = self.inner.lock().unwrap();
        // If another thread currently holds the token, this thread has
        // already "yielded" by virtue of having waited.
        let mut yielded = g.token != me;
        loop {
            if let Some(e) = &g.halted {
                return Err(e.clone());
            }
            g.rt.poll_gc();
            let gc_blocking = g.rt.gc_blocking_until().is_some();
            if g.token == me {
                if yielded {
                    if Self::runnable(&g, me, gc_blocking) {
                        return Ok(());
                    }
                    // Token is back but this thread is GC-blocked.
                    if let Some(until) = g.rt.gc_blocking_until() {
                        if Self::pick_next(&g, me, true) == Some(me)
                            || Self::pick_next(&g, me, true).is_none()
                        {
                            // No one else can run either: jump the pause.
                            let now = g.rt.now();
                            g.rt.charge(until - now);
                            g.rt.poll_gc();
                            continue;
                        }
                        // Someone else can run meanwhile.
                        yielded = false;
                        continue;
                    }
                }
                // Hand the token to the next runnable thread (possibly
                // ourselves).
                match Self::pick_next(&g, me, gc_blocking) {
                    Some(next) => {
                        yielded = true;
                        if next == me {
                            if Self::runnable(&g, me, gc_blocking) {
                                return Ok(());
                            }
                            // Only this thread is left but it is blocked:
                            // handled by the yielded branch next iteration.
                            continue;
                        }
                        g.token = next;
                        self.cv.notify_all();
                    }
                    None => {
                        // Nobody is runnable. If the collector is the
                        // reason, jump the clock over the pause.
                        if let Some(until) = g.rt.gc_blocking_until() {
                            let now = g.rt.now();
                            g.rt.charge(until - now);
                            g.rt.poll_gc();
                            continue;
                        }
                        let e = RunError::Deadlock;
                        g.halted = Some(e.clone());
                        self.cv.notify_all();
                        return Err(e);
                    }
                }
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Marks a thread finished and hands the token onward. If every other
    /// live thread is paused by the collector, the clock jumps over the
    /// pause so the token can land on a runnable thread.
    pub fn finish(&self, tid: ThreadId) {
        let me = tid.0 as usize;
        let mut g = self.inner.lock().unwrap();
        g.threads[me].finished = true;
        if g.token == me {
            loop {
                g.rt.poll_gc();
                let gc_blocking = g.rt.gc_blocking_until().is_some();
                if let Some(next) = Self::pick_next(&g, me, gc_blocking) {
                    g.token = next;
                    break;
                }
                if let Some(until) = g.rt.gc_blocking_until() {
                    let unfinished = g
                        .threads
                        .iter()
                        .enumerate()
                        .any(|(i, t)| i != me && !t.finished);
                    if unfinished {
                        let now = g.rt.now();
                        g.rt.charge(until - now);
                        continue;
                    }
                }
                break; // everyone is done
            }
        }
        self.cv.notify_all();
    }

    /// Blocks the calling (main) thread until every *other* program thread
    /// has finished, scheduling them meanwhile. If the run was halted,
    /// still waits for the children to drain (they observe the halt at
    /// their next safepoint) and then reports the halt error.
    pub fn join_all(&self, tid: ThreadId) -> Result<(), RunError> {
        loop {
            {
                let mut g = self.inner.lock().unwrap();
                let all_done = g
                    .threads
                    .iter()
                    .enumerate()
                    .all(|(i, t)| t.finished || i == tid.0 as usize);
                if all_done {
                    return match &g.halted {
                        Some(e) => Err(e.clone()),
                        None => Ok(()),
                    };
                }
                if g.halted.is_some() {
                    // Children are draining; wait for their finish signals.
                    g = self.cv.wait(g).unwrap();
                    continue;
                }
            }
            // Not halted: keep the scheduler turning.
            let _ = self.safepoint(tid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_runtime::CheckMode;
    use std::sync::Arc;

    fn machine() -> Arc<Machine> {
        Arc::new(Machine::new(Runtime::with_mode(CheckMode::Dynamic), 0))
    }

    #[test]
    fn single_thread_safepoint_is_noop() {
        let m = machine();
        let tid = ThreadId(0);
        m.safepoint(tid).unwrap();
        m.safepoint(tid).unwrap();
    }

    #[test]
    fn step_limit_halts() {
        let m = Arc::new(Machine::new(Runtime::with_mode(CheckMode::Dynamic), 10));
        assert!(m.charge_steps(1, 5).is_ok());
        assert!(matches!(m.charge_steps(1, 6), Err(RunError::StepLimit)));
        assert!(matches!(m.safepoint(ThreadId(0)), Err(RunError::StepLimit)));
    }

    #[test]
    fn two_threads_alternate() {
        let m = machine();
        let child = m.with(|rt| rt.spawn_thread(rt.main_thread(), ThreadClass::Regular));
        m.register_thread(child, ThreadClass::Regular);
        let m2 = Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            // The child waits for its turn, does some work, finishes.
            m2.safepoint(child).unwrap();
            m2.with(|rt| rt.charge(5));
            m2.safepoint(child).unwrap();
            m2.with(|rt| rt.finish_thread(child).unwrap());
            m2.finish(child);
        });
        // Main keeps yielding until the child is done.
        m.join_all(ThreadId(0)).unwrap();
        handle.join().unwrap();
        assert!(m.with(|rt| rt.now()) >= 5);
    }

    #[test]
    fn rt_threads_run_during_gc_pauses() {
        let mut rt = Runtime::with_mode(CheckMode::Dynamic);
        rt.enable_gc(true);
        let m = Arc::new(Machine::new(rt, 0));
        let rt_tid = m.with(|r| r.spawn_thread(r.main_thread(), ThreadClass::RealTime));
        m.register_thread(rt_tid, ThreadClass::RealTime);
        // Force a collection: regular threads are paused, the RT thread
        // must still be scheduled.
        m.with(|r| r.force_gc());
        let m2 = Arc::clone(&m);
        let handle = std::thread::spawn(move || {
            // The RT thread gets turns while the GC is collecting.
            for _ in 0..3 {
                m2.safepoint(rt_tid).unwrap();
                m2.with(|r| r.charge(10));
            }
            let still_collecting = m2.with(|r| r.gc_blocking_until().is_some());
            m2.with(|r| r.finish_thread(rt_tid).unwrap());
            m2.finish(rt_tid);
            still_collecting
        });
        // Main (regular) is blocked until the collection ends; when it
        // returns, the pause must be over.
        m.safepoint(ThreadId(0)).unwrap();
        assert!(m.with(|r| r.gc_blocking_until().is_none()));
        let rt_ran_during_gc = handle.join().unwrap();
        assert!(
            rt_ran_during_gc,
            "the real-time thread executed while the collector was running"
        );
        assert_eq!(m.with(|r| r.stats().gc_collections), 1);
    }

    #[test]
    fn rt_threads_have_priority() {
        let m = machine();
        let rt_tid = m.with(|r| r.spawn_thread(r.main_thread(), ThreadClass::RealTime));
        m.register_thread(rt_tid, ThreadClass::RealTime);
        let reg_tid = m.with(|r| r.spawn_thread(r.main_thread(), ThreadClass::Regular));
        m.register_thread(reg_tid, ThreadClass::Regular);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for (tid, name) in [(rt_tid, "rt"), (reg_tid, "regular")] {
            let m2 = Arc::clone(&m);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                m2.safepoint(tid).unwrap();
                order2.lock().unwrap().push(name);
                m2.with(|r| r.finish_thread(tid).unwrap());
                m2.finish(tid);
            }));
        }
        // Let both children run.
        m.join_all(ThreadId(0)).unwrap();
        for h in handles {
            h.join().unwrap();
        }
        let order = order.lock().unwrap().clone();
        assert_eq!(
            order,
            vec!["rt", "regular"],
            "the real-time thread is always scheduled first"
        );
    }

    #[test]
    fn halt_propagates_to_all() {
        let m = machine();
        m.halt(RunError::Interp("boom".into()));
        assert!(matches!(m.safepoint(ThreadId(0)), Err(RunError::Interp(_))));
        assert_eq!(m.halt_error(), Some(RunError::Interp("boom".into())));
    }
}
