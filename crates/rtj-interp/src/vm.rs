//! The bytecode VM: an iterative dispatch loop over [`crate::bytecode`]
//! instructions with monomorphic inline caches.
//!
//! The VM is an alternative *engine* to the tree-walking
//! [`crate::eval::Evaluator`]; both run on the same [`Machine`] and
//! produce byte-identical virtual-cycle accounting, `rtj-metrics/v1`
//! snapshots, and trace event sequences (see the step-parity argument in
//! [`crate::bytecode`]). The speedup is host-level only: flat instruction
//! dispatch instead of `Box<Expr>` recursion, slot-indexed locals instead
//! of linear string-compared lookups, interned-symbol inline caches for
//! field offsets and method resolution instead of per-call hash lookups
//! and method-body clones.
//!
//! Inline caches are keyed on the receiver's interned class [`Symbol`]
//! (the layout id — two objects share a layout iff their class symbols
//! are pointer-equal). Layouts are immutable for the life of a program,
//! so cache entries are never invalidated, only replaced when a site
//! sees a receiver of a different class. Caches are per-thread, so no
//! synchronisation is needed on hits.

use crate::bytecode::{CompiledProgram, CondCtx, Op, OwnerOp, RegionSiteKind};
use crate::eval::{ProgramData, MAX_CALL_DEPTH};
use crate::layout::resolve_method_chain;
use crate::machine::{Machine, RunError};
use rtj_lang::ast::{BinOp, OwnerRef, UnOp};
use rtj_lang::Symbol;
use rtj_runtime::{
    ObjId, RegionId, RegionSpec, Runtime, RuntimeOwner, ThreadClass, ThreadId, Value,
};
use std::rc::Rc;
use std::sync::Arc;

/// How one owner of a resolved callee's declaring class is derived from
/// the receiver, with the superclass chain's extends clauses composed
/// away at cache-fill time.
#[derive(Debug, Clone, Copy)]
enum OwnerSrc {
    /// The receiver's stored owner at index `.0`.
    RecvOwner(u32),
    /// The receiver object itself (`this` in an extends clause).
    RecvObject,
    /// The heap.
    Heap,
    /// The immortal region.
    Immortal,
}

/// A resolved call target, cached per site per receiver class.
#[derive(Clone)]
struct CallTarget {
    func: u32,
    owner_srcs: Rc<[OwnerSrc]>,
    /// Deferred argument-count error: the tree-walker raises it only
    /// after resolving the site's owner arguments.
    arg_err: Option<Rc<str>>,
}

/// One call-site inline-cache entry: the receiver class the entry is
/// valid for, and the resolution outcome (target or cached error).
type CallCacheEntry = Option<(Symbol, Result<CallTarget, Rc<str>>)>;

/// An open region scope (for exits on `return` paths and unwinding).
#[derive(Debug, Clone, Copy)]
enum ScopeExit {
    /// Created by `LocalRegion`/`NewRegion`: plain `exit_created_region`.
    Created(RegionId),
    /// Entered by `EnterSubregion`: the two-phase locked exit.
    Sub(RegionId),
}

#[derive(Debug, Clone, Copy)]
struct RegionScope {
    saved_current: RegionId,
    exit: ScopeExit,
}

/// A call frame of the VM.
#[derive(Debug, Clone, Copy)]
struct CallCtx {
    func: u32,
    /// Saved instruction pointer (where to resume when control returns).
    ip: u32,
    locals_base: u32,
    owners_base: u32,
    regions_base: u32,
    this_obj: Option<ObjId>,
    initial_region: RegionId,
    current_region: RegionId,
}

/// Everything a forked thread needs to start executing a method body.
struct ForkStart {
    func: u32,
    owners: Vec<RuntimeOwner>,
    args: Vec<Value>,
    this_obj: ObjId,
    region: RegionId,
}

/// A single thread's bytecode interpreter.
pub struct Vm {
    machine: Arc<Machine>,
    data: Arc<ProgramData>,
    prog: Arc<CompiledProgram>,
    tid: ThreadId,
    heap: RegionId,
    immortal: RegionId,
    is_rt: bool,
    pending_cycles: u64,
    pending_steps: u64,
    step_cost: u64,
    call_cost: u64,
    stack: Vec<Value>,
    locals: Vec<Value>,
    owners: Vec<RuntimeOwner>,
    regions: Vec<RegionId>,
    scopes: Vec<RegionScope>,
    frames: Vec<CallCtx>,
    field_caches: Vec<Option<(Symbol, u32)>>,
    call_caches: Vec<CallCacheEntry>,
}

impl Vm {
    /// Creates a VM for thread `tid` over a compiled program.
    pub fn new(
        machine: Arc<Machine>,
        data: Arc<ProgramData>,
        prog: Arc<CompiledProgram>,
        tid: ThreadId,
        is_rt: bool,
    ) -> Vm {
        let (heap, immortal, step_cost, call_cost) = machine.with(|rt| {
            (
                rt.heap(),
                rt.immortal(),
                rt.cost_model().step,
                rt.cost_model().call,
            )
        });
        let field_caches = vec![None; prog.field_sites.len()];
        let call_caches = vec![None; prog.call_sites.len()];
        Vm {
            machine,
            data,
            prog,
            tid,
            heap,
            immortal,
            is_rt,
            pending_cycles: 0,
            pending_steps: 0,
            step_cost,
            call_cost,
            stack: Vec::with_capacity(32),
            locals: Vec::with_capacity(64),
            owners: Vec::with_capacity(16),
            regions: Vec::with_capacity(8),
            scopes: Vec::with_capacity(8),
            frames: Vec::with_capacity(16),
            field_caches,
            call_caches,
        }
    }

    /// Runs the program's main block (function 0, thread 0).
    pub fn run_main(&mut self) -> Result<(), RunError> {
        self.push_root_frame(0, Vec::new(), Vec::new(), None, self.heap);
        self.exec()?;
        self.flush()
    }

    /// Runs a forked method body (mirrors the tree-walker's
    /// `run_method`: safepoint first, then the body, then a flush).
    fn run_forked(&mut self, start: ForkStart) -> Result<(), RunError> {
        self.machine.safepoint(self.tid)?;
        self.push_root_frame(
            start.func,
            start.owners,
            start.args,
            Some(start.this_obj),
            start.region,
        );
        self.exec()?;
        self.flush()
    }

    fn push_root_frame(
        &mut self,
        func: u32,
        owners: Vec<RuntimeOwner>,
        args: Vec<Value>,
        this_obj: Option<ObjId>,
        region: RegionId,
    ) {
        let f = &self.prog.funcs[func as usize];
        self.locals.extend(args);
        self.locals.resize(f.n_locals as usize, Value::Null);
        self.regions.resize(f.n_regions as usize, self.heap);
        self.owners.extend(owners);
        self.frames.push(CallCtx {
            func,
            ip: 0,
            locals_base: 0,
            owners_base: 0,
            regions_base: 0,
            this_obj,
            initial_region: region,
            current_region: region,
        });
    }

    // ------------------------------------------------------------- plumbing
    // (identical to the tree-walker's, so flush points line up exactly)

    fn flush(&mut self) -> Result<(), RunError> {
        if self.pending_cycles > 0 || self.pending_steps > 0 {
            let (c, s) = (self.pending_cycles, self.pending_steps);
            self.pending_cycles = 0;
            self.pending_steps = 0;
            self.machine.charge_steps(c, s)?;
        }
        Ok(())
    }

    fn rt_op<R>(
        &mut self,
        f: impl FnOnce(&mut Runtime) -> Result<R, rtj_runtime::RtError>,
    ) -> Result<R, RunError> {
        self.flush()?;
        self.machine.with(f).map_err(RunError::from)
    }

    fn safepoint(&mut self) -> Result<(), RunError> {
        self.flush()?;
        self.machine.safepoint(self.tid)
    }

    /// Spins (advancing virtual time) until the bookkeeping lock on
    /// `target` is acquired — verbatim the tree-walker's protocol.
    fn acquire_lock(&mut self, target: RegionId) -> Result<(), RunError> {
        let t = self.tid;
        let spin = self.machine.with(|rt| rt.cost_model().region_enter_exit);
        let wait_start = self.machine.with(|rt| rt.now());
        let mut waited = false;
        loop {
            self.flush()?;
            let got = self.machine.with(|rt| rt.try_lock_region(t, target));
            if got {
                break;
            }
            waited = true;
            self.pending_cycles += spin;
            self.safepoint()?;
        }
        if waited && self.is_rt {
            let now = self.machine.with(|rt| rt.now());
            self.machine
                .with(|rt| rt.note_rt_lock_wait(now - wait_start));
        }
        Ok(())
    }

    fn locked_enter(
        &mut self,
        parent: RegionId,
        member: Symbol,
        fresh: bool,
    ) -> Result<RegionId, RunError> {
        let t = self.tid;
        let target = self.rt_op(|rt| rt.subregion_lock_target(parent, member.as_str(), fresh))?;
        self.acquire_lock(target)?;
        self.safepoint()?;
        let entered = self.rt_op(|rt| rt.enter_subregion_locked(t, parent, member.as_str(), fresh));
        let unlock = self.rt_op(|rt| rt.unlock_region(t, target));
        let r = entered?;
        unlock?;
        Ok(r)
    }

    fn locked_exit(&mut self, r: RegionId) -> Result<(), RunError> {
        let t = self.tid;
        self.acquire_lock(r)?;
        self.safepoint()?;
        let exited = self.rt_op(|rt| rt.exit_subregion_locked(t, r));
        let unlock = self.rt_op(|rt| rt.unlock_region(t, r));
        exited?;
        unlock?;
        Ok(())
    }

    fn exit_scope(&mut self, exit: ScopeExit) -> Result<(), RunError> {
        let t = self.tid;
        match exit {
            ScopeExit::Created(r) => self.rt_op(|rt| rt.exit_created_region(t, r)).map(|_| ()),
            ScopeExit::Sub(r) => self.locked_exit(r),
        }
    }

    /// Runs the dispatch loop; on error, unwinds every open region scope
    /// (running exits, whose own errors lose to the original — exactly
    /// the tree-walker's eager-binding `let exit = …; flow?; exit?`
    /// pattern at every nesting level).
    fn exec(&mut self) -> Result<(), RunError> {
        match self.dispatch() {
            Ok(()) => Ok(()),
            Err(e) => {
                while let Some(scope) = self.scopes.pop() {
                    if let Some(fr) = self.frames.last_mut() {
                        fr.current_region = scope.saved_current;
                    }
                    let _ = self.exit_scope(scope.exit);
                }
                Err(e)
            }
        }
    }

    // -------------------------------------------------------------- helpers

    fn pop(&mut self) -> Value {
        self.stack.pop().expect("operand stack underflow")
    }

    fn frame(&self) -> CallCtx {
        *self.frames.last().expect("no active frame")
    }

    fn eval_owner_op(&self, frame: &CallCtx, op: &OwnerOp) -> Result<RuntimeOwner, RunError> {
        match op {
            OwnerOp::Formal(i) => Ok(self.owners[frame.owners_base as usize + *i as usize]),
            OwnerOp::Region(s) => Ok(RuntimeOwner::Region(
                self.regions[frame.regions_base as usize + *s as usize],
            )),
            OwnerOp::This => frame
                .this_obj
                .map(RuntimeOwner::Object)
                .ok_or_else(|| RunError::Interp("`this` outside a method".into())),
            OwnerOp::InitialRegion => Ok(RuntimeOwner::Region(frame.initial_region)),
            OwnerOp::Heap => Ok(RuntimeOwner::Region(self.heap)),
            OwnerOp::Immortal => Ok(RuntimeOwner::Region(self.immortal)),
            OwnerOp::FailUnbound(n) => Err(RunError::Interp(format!("unbound owner `{n}`"))),
            OwnerOp::FailRt => Err(RunError::Interp("`RT` is not a value owner".into())),
            OwnerOp::FailThis => Err(RunError::Interp("`this` outside a method".into())),
        }
    }

    /// Field-slot lookup through the site's inline cache. The class read
    /// is one lock acquisition, like the tree-walker's `field_index`.
    fn field_slot(&mut self, site: usize, obj: ObjId) -> Result<usize, RunError> {
        let class = self.machine.with(|rt| rt.object(obj).class_name);
        if let Some((c, slot)) = &self.field_caches[site] {
            if *c == class {
                return Ok(*slot as usize);
            }
        }
        let field = self.prog.field_sites[site].field;
        let slot = self
            .data
            .layouts
            .class(class)
            .and_then(|l| l.field_index.get(&field).copied())
            .ok_or_else(|| RunError::Interp(format!("no field `{field}` on `{class}`")))?;
        self.field_caches[site] = Some((class, slot as u32));
        Ok(slot)
    }

    /// Method resolution through the site's inline cache, composing the
    /// superclass chain's extends clauses into [`OwnerSrc`]s over the
    /// receiver's stored owners. Mirrors `build_callee_frame` up to (and
    /// including) the owner-argument count check; the argument-count
    /// check is deferred via [`CallTarget::arg_err`].
    fn resolve_call(&mut self, site_idx: usize, class: Symbol) -> Result<CallTarget, RunError> {
        if let Some((c, res)) = &self.call_caches[site_idx] {
            if *c == class {
                return res
                    .clone()
                    .map_err(|m| RunError::Interp(m.as_ref().to_owned()));
            }
        }
        let res = self.compute_call_target(site_idx, class);
        self.call_caches[site_idx] = Some((class, res.clone()));
        res.map_err(|m| RunError::Interp(m.as_ref().to_owned()))
    }

    fn compute_call_target(&self, site_idx: usize, class: Symbol) -> Result<CallTarget, Rc<str>> {
        let site = &self.prog.call_sites[site_idx];
        let method = site.method;
        let (chain, mdecl) = resolve_method_chain(&self.data.table, class, method)
            .ok_or_else(|| Rc::from(format!("no method `{method}` on `{class}`")))?;
        // Compose the chain: `cur` maps the current class's formals to
        // sources over the receiver (None = identity over the receiver's
        // own owners).
        let mut cur: Option<Vec<OwnerSrc>> = None;
        let mut cur_class = class;
        for (super_name, super_refs) in &chain {
            let layout = self
                .data
                .layouts
                .class(cur_class)
                .ok_or_else(|| Rc::from(format!("unknown class `{cur_class}`")))?;
            let mut next = Vec::with_capacity(super_refs.len());
            for r in super_refs {
                let s = match r {
                    OwnerRef::Name(id) => {
                        let pos = layout
                            .formal_names
                            .iter()
                            .position(|n| *n == id.name)
                            .ok_or_else(|| Rc::from(format!("unbound owner `{}`", id.name)))?;
                        match &cur {
                            None => OwnerSrc::RecvOwner(pos as u32),
                            Some(v) => v[pos],
                        }
                    }
                    OwnerRef::This(_) => OwnerSrc::RecvObject,
                    OwnerRef::Heap(_) => OwnerSrc::Heap,
                    OwnerRef::Immortal(_) => OwnerSrc::Immortal,
                    other => {
                        return Err(Rc::from(format!(
                            "invalid owner `{other:?}` in extends clause"
                        )))
                    }
                };
                next.push(s);
            }
            cur = Some(next);
            cur_class = *super_name;
        }
        let decl_layout = self
            .data
            .layouts
            .class(cur_class)
            .ok_or_else(|| Rc::from(format!("unknown class `{cur_class}`")))?;
        let owner_srcs: Vec<OwnerSrc> = match cur {
            None => (0..decl_layout.formal_names.len())
                .map(|i| OwnerSrc::RecvOwner(i as u32))
                .collect(),
            Some(v) => v,
        };
        if site.owner_ops.len() != mdecl.formals.len() {
            return Err(Rc::from(format!(
                "method `{method}` expects {} owner argument(s), found {} \
                 (was the program checked?)",
                mdecl.formals.len(),
                site.owner_ops.len()
            )));
        }
        let arg_err = (site.n_args as usize != mdecl.params.len()).then(|| {
            Rc::from(format!(
                "method `{method}` expects {} argument(s), found {}",
                mdecl.params.len(),
                site.n_args
            ))
        });
        let func = *self
            .prog
            .methods
            .get(&(cur_class, mdecl.name.name))
            .ok_or_else(|| Rc::from(format!("no method {cur_class}.{method}")))?;
        Ok(CallTarget {
            func,
            owner_srcs: Rc::from(owner_srcs),
            arg_err,
        })
    }

    /// Reads the receiver and builds the callee's owner vector (declaring
    /// class formals from cache sources, then the site's owner-argument
    /// ops), in the tree-walker's exact error order.
    fn callee_owners(
        &mut self,
        site_idx: usize,
        obj: ObjId,
        frame: &CallCtx,
    ) -> Result<(CallTarget, Vec<RuntimeOwner>), RunError> {
        let (class, recv_owners) = self.machine.with(|rt| {
            let o = rt.object(obj);
            (o.class_name, o.owners.clone())
        });
        let target = self.resolve_call(site_idx, class)?;
        let site = &self.prog.call_sites[site_idx];
        let mut owners = Vec::with_capacity(target.owner_srcs.len() + site.owner_ops.len());
        for src in target.owner_srcs.iter() {
            owners.push(match src {
                OwnerSrc::RecvOwner(i) => recv_owners[*i as usize],
                OwnerSrc::RecvObject => RuntimeOwner::Object(obj),
                OwnerSrc::Heap => RuntimeOwner::Region(self.heap),
                OwnerSrc::Immortal => RuntimeOwner::Region(self.immortal),
            });
        }
        let owner_ops = Arc::clone(&self.prog);
        for op in owner_ops.call_sites[site_idx].owner_ops.iter() {
            owners.push(self.eval_owner_op(frame, op)?);
        }
        if let Some(msg) = &target.arg_err {
            return Err(RunError::Interp(msg.as_ref().to_owned()));
        }
        Ok((target, owners))
    }

    // -------------------------------------------------------- dispatch loop

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self) -> Result<(), RunError> {
        let prog = Arc::clone(&self.prog);
        let mut frame = self.frame();
        let mut code: &[Op] = &prog.funcs[frame.func as usize].code;
        let mut ip: usize = 0;
        macro_rules! reload {
            () => {{
                frame = self.frame();
                code = &prog.funcs[frame.func as usize].code;
                ip = frame.ip as usize;
            }};
        }
        loop {
            let op = code[ip];
            ip += 1;
            match op {
                Op::Step(n) => {
                    self.pending_cycles += n as u64 * self.step_cost;
                    self.pending_steps += n as u64;
                }
                Op::ConstInt(n) => self.stack.push(Value::Int(n)),
                Op::ConstBool(b) => self.stack.push(Value::Bool(b)),
                Op::ConstNull => self.stack.push(Value::Null),
                Op::ConstStr(i) => self
                    .stack
                    .push(Value::Str(prog.strings[i as usize].clone())),
                Op::LoadLocal(s) => {
                    let v = self.locals[frame.locals_base as usize + s as usize].clone();
                    self.stack.push(v);
                }
                Op::StoreLocal(s) => {
                    let v = self.pop();
                    self.locals[frame.locals_base as usize + s as usize] = v;
                }
                Op::Pop => {
                    self.pop();
                }
                Op::This => {
                    let obj = frame
                        .this_obj
                        .ok_or_else(|| RunError::Interp("`this` outside a method".into()))?;
                    self.stack.push(Value::Ref(obj));
                }
                Op::Unary(op) => {
                    let v = self.pop();
                    let out = match (op, v) {
                        (UnOp::Neg, Value::Int(n)) => Value::Int(n.wrapping_neg()),
                        (UnOp::Not, Value::Bool(b)) => Value::Bool(!b),
                        (op, v) => {
                            return Err(RunError::Interp(format!("bad operand {v} for {op:?}")))
                        }
                    };
                    self.stack.push(out);
                }
                Op::Binary(op) => {
                    let r = self.pop();
                    let l = self.pop();
                    self.stack.push(binary(op, l, r)?);
                }
                Op::Jump(t) => ip = t as usize,
                Op::JumpIfFalse { target, ctx } => match self.pop() {
                    Value::Bool(true) => {}
                    Value::Bool(false) => ip = target as usize,
                    other => {
                        let what = match ctx {
                            CondCtx::If => "if",
                            CondCtx::While => "while",
                        };
                        return Err(RunError::Interp(format!(
                            "{what} condition evaluated to `{other}`"
                        )));
                    }
                },
                Op::ScAnd(t) => match self.pop() {
                    Value::Bool(true) => {}
                    Value::Bool(false) => {
                        self.stack.push(Value::Bool(false));
                        ip = t as usize;
                    }
                    l => {
                        return Err(RunError::Interp(format!(
                            "bad operand {l} for {}",
                            BinOp::And
                        )))
                    }
                },
                Op::ScOr(t) => match self.pop() {
                    Value::Bool(false) => {}
                    Value::Bool(true) => {
                        self.stack.push(Value::Bool(true));
                        ip = t as usize;
                    }
                    l => {
                        return Err(RunError::Interp(format!(
                            "bad operand {l} for {}",
                            BinOp::Or
                        )))
                    }
                },
                Op::CheckBool(op) => match self.stack.last() {
                    Some(Value::Bool(_)) => {}
                    Some(r) => return Err(RunError::Interp(format!("bad operand {r} for {op}"))),
                    None => unreachable!("CheckBool on empty stack"),
                },
                Op::LoadField(site) => {
                    let t = self.tid;
                    match self.pop() {
                        Value::Ref(obj) => {
                            let idx = self.field_slot(site as usize, obj)?;
                            let v = self.rt_op(|rt| rt.load_field(t, obj, idx))?;
                            self.stack.push(v);
                        }
                        Value::Handle(r) => {
                            let name = prog.field_sites[site as usize].field;
                            let v = self.rt_op(|rt| rt.load_portal(t, r, name.as_str()))?;
                            self.stack.push(v);
                        }
                        Value::Null => {
                            return Err(RunError::Interp("null dereference in field read".into()))
                        }
                        other => {
                            return Err(RunError::Interp(format!("cannot read field of `{other}`")))
                        }
                    }
                }
                Op::StoreField(site) => {
                    let t = self.tid;
                    let v = self.pop();
                    match self.pop() {
                        Value::Ref(obj) => {
                            let idx = self.field_slot(site as usize, obj)?;
                            self.rt_op(|rt| rt.store_field(t, obj, idx, v))?;
                        }
                        Value::Handle(r) => {
                            let name = prog.field_sites[site as usize].field;
                            self.rt_op(|rt| rt.store_portal(t, r, name.as_str(), v))?;
                        }
                        Value::Null => {
                            return Err(RunError::Interp("null dereference in field write".into()))
                        }
                        other => {
                            return Err(RunError::Interp(format!(
                                "cannot write field of `{other}`"
                            )))
                        }
                    }
                }
                Op::CheckRecv { fork } => match self.stack.last() {
                    Some(Value::Ref(_)) => {}
                    Some(v) => {
                        return Err(if fork {
                            RunError::Interp("fork receiver must be an object".into())
                        } else {
                            RunError::Interp(format!("method call on non-object `{v}`"))
                        })
                    }
                    None => unreachable!("CheckRecv on empty stack"),
                },
                Op::Call(site) => {
                    let site_idx = site as usize;
                    let n_args = prog.call_sites[site_idx].n_args as usize;
                    let recv_pos = self.stack.len() - n_args - 1;
                    let obj = match &self.stack[recv_pos] {
                        Value::Ref(o) => *o,
                        v => {
                            return Err(RunError::Interp(format!(
                                "method call on non-object `{v}`"
                            )))
                        }
                    };
                    let (target, new_owners) = self.callee_owners(site_idx, obj, &frame)?;
                    self.pending_cycles += self.call_cost;
                    self.safepoint()?;
                    if self.frames.len() as u32 > MAX_CALL_DEPTH {
                        return Err(RunError::Interp(format!(
                            "call depth exceeded {MAX_CALL_DEPTH} (unbounded recursion?)"
                        )));
                    }
                    let callee = &prog.funcs[target.func as usize];
                    let locals_base = self.locals.len() as u32;
                    let args_start = self.stack.len() - n_args;
                    self.locals.extend(self.stack.drain(args_start..));
                    self.stack.pop(); // receiver
                    self.locals
                        .resize(locals_base as usize + callee.n_locals as usize, Value::Null);
                    let owners_base = self.owners.len() as u32;
                    self.owners.extend(new_owners);
                    let regions_base = self.regions.len() as u32;
                    self.regions
                        .resize(regions_base as usize + callee.n_regions as usize, self.heap);
                    let cur = frame.current_region;
                    self.frames.last_mut().expect("caller frame").ip = ip as u32;
                    self.frames.push(CallCtx {
                        func: target.func,
                        ip: 0,
                        locals_base,
                        owners_base,
                        regions_base,
                        this_obj: Some(obj),
                        initial_region: cur,
                        current_region: cur,
                    });
                    reload!();
                }
                Op::Fork(site) => {
                    let site_idx = site as usize;
                    let rt = prog.call_sites[site_idx].fork_rt.unwrap_or(false);
                    let n_args = prog.call_sites[site_idx].n_args as usize;
                    let recv_pos = self.stack.len() - n_args - 1;
                    let obj = match &self.stack[recv_pos] {
                        Value::Ref(o) => *o,
                        _ => {
                            return Err(RunError::Interp("fork receiver must be an object".into()))
                        }
                    };
                    let (target, owners) = self.callee_owners(site_idx, obj, &frame)?;
                    let args: Vec<Value> = self.stack.drain(recv_pos + 1..).collect();
                    self.stack.pop(); // receiver
                    let class = if rt {
                        ThreadClass::RealTime
                    } else {
                        ThreadClass::Regular
                    };
                    self.flush()?;
                    let me = self.tid;
                    let child_tid = self.machine.with(|rt| rt.spawn_thread(me, class));
                    self.machine.register_thread(child_tid, class);
                    let machine = Arc::clone(&self.machine);
                    let data = Arc::clone(&self.data);
                    let cprog = Arc::clone(&self.prog);
                    let start = ForkStart {
                        func: target.func,
                        owners,
                        args,
                        this_obj: obj,
                        region: frame.current_region,
                    };
                    std::thread::Builder::new()
                        .name(format!("rtj-thread-{}", child_tid.0))
                        .stack_size(16 << 20)
                        .spawn(move || {
                            let mut vm = Vm::new(Arc::clone(&machine), data, cprog, child_tid, rt);
                            let result = vm.run_forked(start);
                            if let Err(e) = &result {
                                machine.halt(e.clone());
                            }
                            let _ = machine.with(|rt| rt.finish_thread(child_tid));
                            machine.finish(child_tid);
                        })
                        .expect("spawn interpreter thread");
                }
                Op::New(site) => {
                    let site = &prog.new_sites[site as usize];
                    let mut owners = Vec::with_capacity(site.owner_ops.len());
                    for op in site.owner_ops.iter() {
                        owners.push(self.eval_owner_op(&frame, op)?);
                    }
                    let first = owners.first().copied().ok_or_else(|| {
                        RunError::Interp(format!("`new {}` with no owners", site.class))
                    })?;
                    if !site.known {
                        return Err(RunError::Interp(format!("unknown class `{}`", site.class)));
                    }
                    let n_fields = site.n_fields as usize;
                    let t = self.tid;
                    let class = site.class;
                    let obj = self.rt_op(|rt| {
                        let obj = rt.alloc(t, first, class, owners, n_fields)?;
                        for (i, v) in site.defaults.iter() {
                            rt.init_field_raw(obj, *i as usize, v.clone());
                        }
                        Ok(obj)
                    })?;
                    self.stack.push(Value::Ref(obj));
                }
                Op::RegionEnter(site) => {
                    let site = &prog.region_sites[site as usize];
                    let t = self.tid;
                    let (r, exit) = match &site.kind {
                        RegionSiteKind::Local => {
                            let r = self
                                .rt_op(|rt| rt.create_region(t, RegionSpec::plain_vt(), false))?;
                            (r, ScopeExit::Created(r))
                        }
                        RegionSiteKind::New { spec } => {
                            let s = spec.clone();
                            let r = self.rt_op(move |rt| rt.create_region(t, s, true))?;
                            (r, ScopeExit::Created(r))
                        }
                        RegionSiteKind::Sub {
                            member,
                            fresh,
                            parent_slot,
                            parent_name,
                        } => {
                            let pv = self.locals
                                [frame.locals_base as usize + *parent_slot as usize]
                                .clone();
                            let Value::Handle(pr) = pv else {
                                return Err(RunError::Interp(format!(
                                    "`{parent_name}` is not a region handle"
                                )));
                            };
                            let r = self.locked_enter(pr, *member, *fresh)?;
                            (r, ScopeExit::Sub(r))
                        }
                    };
                    self.scopes.push(RegionScope {
                        saved_current: frame.current_region,
                        exit,
                    });
                    let fr = self.frames.last_mut().expect("frame");
                    fr.current_region = r;
                    frame.current_region = r;
                    self.regions[frame.regions_base as usize + site.region_slot as usize] = r;
                    self.locals[frame.locals_base as usize + site.handle_slot as usize] =
                        Value::Handle(r);
                }
                Op::RegionExit => {
                    let scope = self.scopes.pop().expect("region scope");
                    let fr = self.frames.last_mut().expect("frame");
                    fr.current_region = scope.saved_current;
                    frame.current_region = scope.saved_current;
                    self.exit_scope(scope.exit)?;
                }
                Op::Print => {
                    let v = self.pop();
                    self.flush()?;
                    self.machine.with(|rt| rt.print(v.to_string()));
                    self.stack.push(Value::Null);
                }
                Op::Io | Op::Workload => {
                    let v = self.pop();
                    let n = v
                        .as_int()
                        .ok_or_else(|| RunError::Interp("io/workload needs int".into()))?;
                    self.pending_cycles += n.max(0) as u64;
                    if matches!(op, Op::Io) {
                        self.safepoint()?;
                    }
                    self.stack.push(Value::Null);
                }
                Op::Safepoint => self.safepoint()?,
                Op::Ret => {
                    let ctx = self.frames.pop().expect("frame");
                    self.locals.truncate(ctx.locals_base as usize);
                    self.owners.truncate(ctx.owners_base as usize);
                    self.regions.truncate(ctx.regions_base as usize);
                    if self.frames.is_empty() {
                        return Ok(());
                    }
                    reload!();
                }
                Op::Fail(i) => return Err(RunError::Interp(prog.fail_msgs[i as usize].clone())),
            }
        }
    }
}

/// Non-short-circuit binary operator evaluation with the tree-walker's
/// exact semantics and error messages.
fn binary(op: BinOp, l: Value, r: Value) -> Result<Value, RunError> {
    use BinOp::*;
    let out = match (op, &l, &r) {
        (Add, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_add(*b)),
        (Sub, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_sub(*b)),
        (Mul, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_mul(*b)),
        (Div, Value::Int(_), Value::Int(0)) => {
            return Err(RunError::Interp("division by zero".into()))
        }
        (Rem, Value::Int(_), Value::Int(0)) => {
            return Err(RunError::Interp("remainder by zero".into()))
        }
        (Div, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_div(*b)),
        (Rem, Value::Int(a), Value::Int(b)) => Value::Int(a.wrapping_rem(*b)),
        (Lt, Value::Int(a), Value::Int(b)) => Value::Bool(a < b),
        (Le, Value::Int(a), Value::Int(b)) => Value::Bool(a <= b),
        (Gt, Value::Int(a), Value::Int(b)) => Value::Bool(a > b),
        (Ge, Value::Int(a), Value::Int(b)) => Value::Bool(a >= b),
        (Eq, a, b) => Value::Bool(a == b),
        (Ne, a, b) => Value::Bool(a != b),
        (op, a, b) => return Err(RunError::Interp(format!("bad operands {a}, {b} for {op}"))),
    };
    Ok(out)
}
