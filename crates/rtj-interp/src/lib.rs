//! Interpreter for the core real-time Java-like language, executing on
//! the simulated RTSJ region runtime (`rtj-runtime`).
//!
//! The interpreter runs *checked* programs (see [`rtj_types::check_program`])
//! in one of three check modes:
//!
//! * [`CheckMode::Dynamic`] — the RTSJ baseline: every reference load and
//!   store pays for the dynamic memory-area checks;
//! * [`CheckMode::Static`] — the paper's contribution: the type system
//!   guarantees the checks cannot fail, so they are elided;
//! * [`CheckMode::Audit`] — checks run at zero cost and any failure is
//!   reported, which the test-suite uses to validate Theorems 3 and 4.
//!
//! Figure 12 of the paper is exactly `Dynamic` vs `Static` on the same
//! program.
//!
//! # Example
//!
//! ```
//! use rtj_interp::{run_source, RunConfig};
//! use rtj_runtime::CheckMode;
//!
//! let src = r#"
//!     class Cell<Owner o> { int v; }
//!     {
//!         (RHandle<r> h) {
//!             let c = new Cell<r>;
//!             c.v = 41;
//!             c.v = c.v + 1;
//!             print(c.v);
//!         }
//!     }
//! "#;
//! let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
//! assert_eq!(out.trace, vec!["42"]);
//! assert!(out.error.is_none());
//! ```

#![warn(missing_docs)]

pub mod bytecode;
pub mod eval;
pub mod layout;
pub mod machine;
pub mod vm;

use eval::{Evaluator, ProgramData};
use layout::Layouts;
use machine::Machine;
pub use machine::RunError;
use rtj_runtime::{
    CheckMode, CostModel, JsonlSink, MetricsSnapshot, RingSink, Runtime, Stats, ThreadId,
};
use rtj_types::Checked;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How structured trace events are captured during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceCapture {
    /// No tracing (the default): the runtime pays one pointer test per
    /// emission point and constructs no events.
    #[default]
    Off,
    /// Flight-recorder mode: keep only the most recent `n` events.
    Ring(usize),
    /// Keep every event (JSONL lines in [`RunOutcome::events`]).
    Full,
}

/// Which execution engine interprets the program.
///
/// Both engines run on the same [`Machine`] and produce byte-identical
/// virtual-cycle accounting, `rtj-metrics/v1` snapshots, and trace event
/// sequences; they differ only in host-level speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The reference tree-walking interpreter ([`eval::Evaluator`]).
    Tree,
    /// The bytecode VM with inline caches ([`vm::Vm`]) — the default.
    #[default]
    Vm,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Tree => write!(f, "tree"),
            Engine::Vm => write!(f, "vm"),
        }
    }
}

/// Configuration for one run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// How the RTSJ dynamic checks are handled.
    pub mode: CheckMode,
    /// The platform cost model.
    pub cost: CostModel,
    /// Whether the simulated garbage collector runs (off by default, as in
    /// the paper's Figure 12 measurements).
    pub gc_enabled: bool,
    /// Interpreter step budget across all threads (0 = unlimited).
    pub max_steps: u64,
    /// Capture a post-run ownership/outlives graph (DOT) in
    /// [`RunOutcome::graph`] — the paper's Figure 6 rendering.
    pub capture_graph: bool,
    /// Structured-event capture (off by default).
    pub events: TraceCapture,
    /// The execution engine ([`Engine::Vm`] by default).
    pub engine: Engine,
    /// Session (tenant) identifier stamped on the run's [`Runtime`] — `0`
    /// for standalone runs; the multi-tenant server (`rtj-server`) assigns
    /// each session a distinct id.
    pub session: u64,
}

impl RunConfig {
    /// A configuration with the default cost model, no GC, and a generous
    /// step budget.
    pub fn new(mode: CheckMode) -> RunConfig {
        RunConfig {
            mode,
            cost: CostModel::default(),
            gc_enabled: false,
            max_steps: 500_000_000,
            capture_graph: false,
            events: TraceCapture::Off,
            engine: Engine::default(),
            session: 0,
        }
    }
}

/// The result of a run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Virtual cycles consumed (the paper's "execution time").
    pub cycles: u64,
    /// Legacy coarse statistics, derived from [`RunOutcome::metrics`].
    pub stats: Stats,
    /// The full per-check-kind metrics snapshot (`rtj-metrics/v1`):
    /// counters, elision accounting, and cost histograms. Deterministic —
    /// identical for identical programs, regardless of tracing, wall
    /// time, or checker parallelism.
    pub metrics: MetricsSnapshot,
    /// Output of `print`.
    pub trace: Vec<String>,
    /// Structured trace events as JSONL lines, when
    /// [`RunConfig::events`] requested capture.
    pub events: Option<Vec<String>>,
    /// The error that halted the run, if any.
    pub error: Option<RunError>,
    /// Wall-clock duration of the interpretation.
    pub wall: Duration,
    /// Post-run ownership graph in DOT form, when requested.
    pub graph: Option<String>,
    /// Per-region peak usage `(label, policy, peak bytes, capacity
    /// bytes)`, for LT sizing advice.
    pub region_peaks: Vec<(String, rtj_runtime::AllocPolicy, u64, u64)>,
}

/// An error turning source text into a runnable program.
#[derive(Debug, Clone)]
pub enum BuildError {
    /// The source did not parse.
    Parse(rtj_lang::ParseError),
    /// The program is not well-typed.
    Type(Vec<rtj_types::TypeError>),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Parse(e) => write!(f, "{e}"),
            BuildError::Type(errs) => {
                for e in errs {
                    writeln!(f, "{e}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Parses and type-checks source text.
///
/// # Errors
///
/// Returns [`BuildError`] on parse or type errors.
pub fn build(src: &str) -> Result<Checked, BuildError> {
    let program = rtj_lang::parse_program(src).map_err(BuildError::Parse)?;
    rtj_types::check_program(&program).map_err(BuildError::Type)
}

/// A checked program prepared for repeated execution: the elaborated
/// program data (AST, class table, field layouts) and the compiled
/// bytecode, both behind `Arc`s.
///
/// Preparing once and calling [`run_prepared`] many times — possibly from
/// many threads at once — is the multi-tenant serving path (`rtj-server`):
/// every run gets a fresh, fully isolated [`Runtime`], while the immutable
/// program artifacts are shared by reference. [`run_checked`] is the
/// one-shot convenience over the same pair.
#[derive(Clone)]
pub struct Prepared {
    data: Arc<ProgramData>,
    bytecode: Arc<bytecode::CompiledProgram>,
}

/// Elaborates and compiles a checked program for (repeated) execution.
pub fn prepare(checked: &Checked) -> Prepared {
    let data = Arc::new(ProgramData {
        program: checked.program.clone(),
        table: checked.table.clone(),
        layouts: Layouts::new(&checked.table),
    });
    let bytecode = Arc::new(bytecode::compile(&data));
    Prepared { data, bytecode }
}

/// Runs a checked program.
pub fn run_checked(checked: &Checked, cfg: RunConfig) -> RunOutcome {
    run_prepared(&prepare(checked), cfg)
}

/// Runs a prepared program on a fresh, session-local [`Runtime`].
///
/// Reentrant: `&Prepared` is immutable shared state, every mutable piece
/// of run state (runtime, machine, engine frames, inline caches) is local
/// to this call, so any number of sessions may execute the same
/// [`Prepared`] concurrently and each observes the deterministic
/// single-tenant outcome.
pub fn run_prepared(prepared: &Prepared, cfg: RunConfig) -> RunOutcome {
    let data = Arc::clone(&prepared.data);
    let mut rt = Runtime::new(cfg.mode, cfg.cost);
    rt.enable_gc(cfg.gc_enabled);
    rt.set_session(cfg.session);
    match cfg.events {
        TraceCapture::Off => {}
        TraceCapture::Ring(n) => rt.set_trace_sink(Box::new(RingSink::new(n))),
        TraceCapture::Full => rt.set_trace_sink(Box::new(JsonlSink::new())),
    }
    let machine = Arc::new(Machine::new(rt, cfg.max_steps));
    let start = Instant::now();
    let main_tid = ThreadId(0);
    let result = match cfg.engine {
        Engine::Tree => {
            let mut ev = Evaluator::new(Arc::clone(&machine), data, main_tid, false);
            ev.run_main()
        }
        Engine::Vm => {
            let prog = Arc::clone(&prepared.bytecode);
            let mut vm = vm::Vm::new(Arc::clone(&machine), data, prog, main_tid, false);
            vm.run_main()
        }
    };
    if let Err(e) = &result {
        machine.halt(e.clone());
    }
    let joined = machine.join_all(main_tid);
    machine.finish(main_tid);
    let error = result.err().or(joined.err()).or(machine.halt_error());
    let wall = start.elapsed();
    let (cycles, stats, metrics, trace) = machine.with(|rt| {
        (
            rt.now(),
            rt.stats(),
            rt.metrics_snapshot(),
            rt.trace().to_vec(),
        )
    });
    let events = machine
        .with(|rt| rt.take_trace_sink())
        .map(|mut sink| sink.drain_jsonl());
    let graph = if cfg.capture_graph {
        Some(machine.with(|rt| rt.ownership_dot()))
    } else {
        None
    };
    let region_peaks = machine.with(|rt| rt.region_peaks());
    RunOutcome {
        cycles,
        stats,
        metrics,
        trace,
        events,
        error,
        wall,
        graph,
        region_peaks,
    }
}

/// Parses, checks, and runs source text.
///
/// # Errors
///
/// Returns [`BuildError`] if the program does not parse or type-check; a
/// *runtime* failure is reported in [`RunOutcome::error`] instead.
pub fn run_source(src: &str, cfg: RunConfig) -> Result<RunOutcome, BuildError> {
    let checked = build(src)?;
    Ok(run_checked(&checked, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_ok(src: &str) -> RunOutcome {
        let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        assert!(out.error.is_none(), "unexpected error: {:?}", out.error);
        out
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let out = run_ok(
            r#"
            {
                let n = 10;
                let sum = 0;
                let i = 1;
                while (i <= n) {
                    sum = sum + i;
                    i = i + 1;
                }
                print(sum);
                if (sum == 55) { print("ok"); } else { print("bad"); }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["55", "ok"]);
    }

    #[test]
    fn objects_fields_and_methods() {
        let out = run_ok(
            r#"
            class Counter<Owner o> {
                int n;
                void bump(int by) { this.n = this.n + by; }
                int get() { return this.n; }
            }
            {
                (RHandle<r> h) {
                    let c = new Counter<r>;
                    c.bump(3);
                    c.bump(4);
                    print(c.get());
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["7"]);
    }

    #[test]
    fn short_circuit_and_division_guard() {
        let out = run_ok(
            r#"
            {
                let x = 0;
                if (x != 0 && 10 / x > 1) { print("no"); } else { print("safe"); }
                if (x == 0 || 10 / x > 1) { print("safe2"); }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["safe", "safe2"]);
        let out = run_source(
            "{ let x = 0; let y = 1 / x; }",
            RunConfig::new(CheckMode::Dynamic),
        )
        .unwrap();
        assert!(matches!(out.error, Some(RunError::Interp(_))));
    }

    #[test]
    fn region_objects_die_with_region() {
        let out = run_ok(
            r#"
            class Cell<Owner o> { int v; }
            {
                let made = 0;
                (RHandle<r> h) {
                    let c = new Cell<r>;
                    c.v = 1;
                    made = made + c.v;
                }
                (RHandle<r2> h2) {
                    let c2 = new Cell<r2>;
                    made = made + 1;
                }
                print(made);
            }
            "#,
        );
        assert_eq!(out.trace, vec!["2"]);
        assert_eq!(out.stats.regions_deleted, 2);
    }

    #[test]
    fn ownership_allocates_in_owner_region() {
        // TStack from Figure 5: nodes owned by the stack live in the
        // stack's region.
        let out = run_ok(
            r#"
            class TStack<Owner stackOwner, Owner TOwner> {
                TNode<this, TOwner> head;
                void push(T<TOwner> value) {
                    let TNode<this, TOwner> n = new TNode<this, TOwner>;
                    n.init(value, this.head);
                    this.head = n;
                }
                T<TOwner> pop() {
                    let TNode<this, TOwner> h = this.head;
                    if (h == null) { return null; }
                    this.head = h.next;
                    return h.value;
                }
            }
            class TNode<Owner nodeOwner, Owner TOwner> {
                T<TOwner> value;
                TNode<nodeOwner, TOwner> next;
                void init(T<TOwner> v, TNode<nodeOwner, TOwner> n) {
                    this.value = v;
                    this.next = n;
                }
            }
            class T<Owner o> { int x; }
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let TStack<r2, r1> s = new TStack<r2, r1>;
                        let t1 = new T<r1>;
                        t1.x = 11;
                        let t2 = new T<r1>;
                        t2.x = 22;
                        s.push(t1);
                        s.push(t2);
                        let p = s.pop();
                        print(p.x);
                        let q = s.pop();
                        print(q.x);
                        let e = s.pop();
                        if (e == null) { print("empty"); }
                    }
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["22", "11", "empty"]);
    }

    #[test]
    fn full_trace_capture_yields_valid_jsonl() {
        let src = r#"
            class Cell<Owner o> { Cell<o> next; }
            {
                (RHandle<r> h) {
                    let a = new Cell<r>;
                    let b = new Cell<r>;
                    a.next = b;
                }
            }
        "#;
        let mut cfg = RunConfig::new(CheckMode::Dynamic);
        cfg.events = TraceCapture::Full;
        let out = run_source(src, cfg).unwrap();
        assert!(out.error.is_none());
        let lines = out.events.expect("events captured");
        assert!(!lines.is_empty());
        let mut saw_check = false;
        for line in &lines {
            let v = rtj_runtime::Json::parse(line)
                .unwrap_or_else(|e| panic!("invalid JSONL `{line}`: {e}"));
            if v.get("ev").and_then(rtj_runtime::Json::as_str) == Some("check") {
                saw_check = true;
            }
        }
        assert!(saw_check, "trace includes check events");
        // Ring capture bounds the buffer.
        let mut ring_cfg = RunConfig::new(CheckMode::Dynamic);
        ring_cfg.events = TraceCapture::Ring(4);
        let ring_out = run_source(src, ring_cfg).unwrap();
        assert_eq!(ring_out.events.expect("ring captured").len(), 4);
        // Off capture reports none.
        let off = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        assert!(off.events.is_none());
    }

    #[test]
    fn metrics_elisions_mirror_dynamic_checks() {
        let src = r#"
            class Cell<Owner o> { Cell<o> next; int v; }
            {
                (RHandle<r> h) {
                    let head = new Cell<r>;
                    let i = 0;
                    while (i < 50) {
                        let c = new Cell<r>;
                        c.next = head;
                        head = c;
                        i = i + 1;
                    }
                }
            }
        "#;
        let dynamic = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        let static_ = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
        assert!(dynamic.error.is_none() && static_.error.is_none());
        assert!(dynamic.metrics.checks_performed() > 0);
        assert_eq!(dynamic.metrics.checks_elided(), 0);
        assert_eq!(static_.metrics.checks_performed(), 0);
        for kind in rtj_runtime::CheckKind::ALL {
            assert_eq!(
                static_.metrics.check(kind).elided,
                dynamic.metrics.check(kind).performed,
                "elision parity for {}",
                kind.name()
            );
        }
        assert_eq!(dynamic.metrics.total_cycles, dynamic.cycles);
        assert_eq!(dynamic.stats, dynamic.metrics.to_stats());
    }

    #[test]
    fn static_mode_is_cheaper_than_dynamic() {
        let src = r#"
            class Cell<Owner o> { Cell<o> next; int v; }
            {
                (RHandle<r> h) {
                    let head = new Cell<r>;
                    let i = 0;
                    while (i < 200) {
                        let c = new Cell<r>;
                        c.next = head;
                        head = c;
                        i = i + 1;
                    }
                }
            }
        "#;
        let dynamic = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        let static_ = run_source(src, RunConfig::new(CheckMode::Static)).unwrap();
        assert!(dynamic.error.is_none() && static_.error.is_none());
        assert!(dynamic.stats.store_checks > 0);
        assert_eq!(static_.stats.store_checks, 0);
        assert!(
            dynamic.cycles > static_.cycles,
            "dynamic {} should exceed static {}",
            dynamic.cycles,
            static_.cycles
        );
    }

    #[test]
    fn audit_mode_confirms_soundness() {
        let src = r#"
            class Cell<Owner o> { Cell<o> next; }
            class Pair<Owner o, Owner p> { Cell<p> other; Cell<o> mine; }
            {
                (RHandle<r> h) {
                    let a = new Cell<r>;
                    let b = new Cell<heap>;
                    let c = new Cell<immortal>;
                    a.next = a;
                    b.next = b;
                    c.next = c;
                    let pr = new Pair<heap, immortal>;
                    pr.other = c;
                    pr.mine = b;
                }
            }
        "#;
        let out = run_source(src, RunConfig::new(CheckMode::Audit)).unwrap();
        assert!(out.error.is_none(), "{:?}", out.error);
        assert!(out.stats.store_checks > 0, "checks ran");
        assert_eq!(out.stats.check_cycles, 0, "but cost nothing");
    }

    #[test]
    fn owner_arguments_thread_through_calls() {
        // A method allocates into a region passed as an owner parameter,
        // receiving the handle as a value argument — the paper's idiom
        // for cross-region factories.
        let out = run_ok(
            r#"
            class Factory<Owner o> {
                Cell<q> make<Region q>(RHandle<q> h, int v) accesses q {
                    let c = new Cell<q>;
                    c.v = v;
                    return c;
                }
            }
            class Cell<Owner o> { int v; }
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let f = new Factory<r2>;
                        let outer_cell = f.make<r1>(h1, 10);
                        let inner_cell = f.make<r2>(h2, 20);
                        print(outer_cell.v + inner_cell.v);
                    }
                    // r2 is gone; the r1 allocation survives by
                    // construction (the types prove it).
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["30"]);
    }

    #[test]
    fn inherited_fields_share_layout() {
        let out = run_ok(
            r#"
            class Base<Owner o> { int a; }
            class Mid<Owner o> extends Base<o> { int b; }
            class Leaf<Owner o> extends Mid<o> {
                int c;
                int total() { return this.a + this.b + this.c; }
            }
            {
                (RHandle<r> h) {
                    let x = new Leaf<r>;
                    x.a = 1;
                    x.b = 2;
                    x.c = 4;
                    print(x.total());
                    let Base<r> up = x;
                    up.a = 10;
                    print(x.total());
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["7", "16"]);
    }

    #[test]
    fn recursion_depth_is_guarded() {
        let src = r#"
            class R<Owner o> {
                int down(int n) { return this.down(n + 1); }
            }
            {
                (RHandle<r> h) {
                    let r0 = new R<r>;
                    let x = r0.down(0);
                }
            }
        "#;
        let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        match out.error {
            Some(RunError::Interp(m)) => assert!(m.contains("call depth"), "{m}"),
            other => panic!("expected call-depth error, got {other:?}"),
        }
    }

    #[test]
    fn null_method_call_is_an_error_not_a_crash() {
        let src = r#"
            class C<Owner o> { int m() { return 1; } }
            {
                (RHandle<r> h) {
                    let C<r> c = null;
                    let x = c.m();
                }
            }
        "#;
        let out = run_source(src, RunConfig::new(CheckMode::Dynamic)).unwrap();
        assert!(matches!(out.error, Some(RunError::Interp(_))));
    }

    #[test]
    fn region_peaks_are_reported() {
        let out = run_ok(
            r#"
            regionKind K extends SharedRegion {
                subregion S : LT(1024) NoRT s;
            }
            regionKind S extends SharedRegion { }
            class Chunk<Owner o> { int a; }
            {
                (RHandle<K : VT r> h) {
                    (RHandle<S sc> hs = h.s) {
                        let c = new Chunk<sc>;
                        let d = new Chunk<sc>;
                    }
                }
            }
            "#,
        );
        let lt = out
            .region_peaks
            .iter()
            .find(|(label, _, _, _)| label.contains(".s "))
            .expect("LT subregion reported");
        assert_eq!(lt.2, 48, "two 24-byte objects peak");
        assert_eq!(lt.3, 1024);
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut cfg = RunConfig::new(CheckMode::Dynamic);
        cfg.max_steps = 10_000;
        let out = run_source("{ while (true) { } }", cfg).unwrap();
        assert!(matches!(out.error, Some(RunError::StepLimit)));
    }

    #[test]
    fn fork_and_join_with_shared_region() {
        let out = run_ok(
            r#"
            regionKind Mailbox extends SharedRegion {
                Note<this> slot;
            }
            class Note<Owner o> { int v; }
            class Writer<Mailbox r> {
                void run(RHandle<r> h) accesses r {
                    let n = new Note<r>;
                    n.v = 99;
                    h.slot = n;
                }
            }
            {
                (RHandle<Mailbox : VT r> h) {
                    fork (new Writer<r>).run(h);
                    let seen = h.slot;
                    while (seen == null) {
                        yield();
                        seen = h.slot;
                    }
                    print(seen.v);
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["99"]);
        assert_eq!(out.stats.threads_spawned, 1);
    }

    #[test]
    fn producer_consumer_subregion_flushes_per_iteration() {
        // Figure 8, bounded: the producer fills a frame in the subregion,
        // the consumer drains it; the subregion is flushed each iteration,
        // so memory does not grow with the number of iterations.
        let out = run_ok(
            r#"
            regionKind BufferRegion extends SharedRegion {
                subregion BufferSubRegion : LT(4096) NoRT b;
                Token<this> produced;
                Token<this> consumed;
            }
            regionKind BufferSubRegion extends SharedRegion {
                Frame<this> f;
            }
            class Token<Owner o> { int n; }
            class Frame<Owner o> { int data; }
            class Producer<BufferRegion r> {
                void run(RHandle<r> h, int iters) accesses r, heap {
                    let i = 0;
                    while (i < iters) {
                        // Wait until the previous frame was consumed.
                        let c = h.consumed;
                        while (c == null || c.n != i) {
                            yield();
                            c = h.consumed;
                        }
                        (RHandle<BufferSubRegion r2> h2 = h.b) {
                            let frame = new Frame<r2>;
                            frame.data = 100 + i;
                            h2.f = frame;
                        }
                        let t = new Token<r>;
                        t.n = i + 1;
                        h.produced = t;
                        i = i + 1;
                    }
                }
            }
            class Consumer<BufferRegion r> {
                void run(RHandle<r> h, int iters) accesses r, heap {
                    let i = 0;
                    while (i < iters) {
                        let p = h.produced;
                        while (p == null || p.n != i + 1) {
                            yield();
                            p = h.produced;
                        }
                        (RHandle<BufferSubRegion r2> h2 = h.b) {
                            let frame = h2.f;
                            print(frame.data);
                            h2.f = null;
                        }
                        let t = new Token<r>;
                        t.n = i + 1;
                        h.consumed = t;
                        i = i + 1;
                    }
                }
            }
            {
                (RHandle<BufferRegion : VT r> h) {
                    let kick = new Token<r>;
                    kick.n = 0;
                    h.consumed = kick;
                    fork (new Producer<r>).run(h, 3);
                    fork (new Consumer<r>).run(h, 3);
                }
            }
            "#,
        );
        assert_eq!(out.trace, vec!["100", "101", "102"]);
        assert!(
            out.stats.regions_flushed >= 3,
            "subregion flushed per iteration: {:?}",
            out.stats.regions_flushed
        );
    }
}
