//! Experiment drivers shared by the Criterion benches and the
//! EXPERIMENTS report.
//!
//! * [`priority_inversion`] — the Section 2.3 claim: when a regular
//!   thread and a real-time thread share a subregion (as the RTSJ
//!   allows), a garbage collection striking while the regular thread
//!   holds the subregion's bookkeeping lock blocks the real-time thread
//!   for up to a full GC pause. With the type system's RT/NoRT
//!   separation the two threads use disjoint subregions and the
//!   real-time thread never waits.
//! * [`alloc_sweep`] — the LT/VT cost claims: LT allocation is linear in
//!   object size, flushing an LT region retains its memory (re-entry
//!   allocates without growing), VT allocation pays variable chunk costs.

use rtj_runtime::{
    AllocPolicy, CheckMode, CostModel, RegionSpec, Reservation, RtError, Runtime, RuntimeOwner,
    ThreadClass,
};

/// Outcome of one priority-inversion scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyReport {
    /// Worst single wait of the real-time thread for a region lock
    /// (cycles).
    pub max_rt_wait: u64,
    /// Total real-time lock-wait cycles.
    pub total_rt_wait: u64,
    /// Garbage collections that ran.
    pub collections: u64,
}

/// Runs the priority-inversion scenario.
///
/// With `shared = true` (RTSJ-style), the regular and real-time threads
/// enter the *same* subregion; with `shared = false` (the type system's
/// discipline), each thread class has its own subregion.
///
/// Each round: the regular thread enters and begins exiting the
/// subregion; while it holds the bookkeeping lock a collection starts,
/// pausing it; the real-time thread then tries to enter.
///
/// # Panics
///
/// Panics on runtime protocol errors (the scenario is fixed, so these
/// indicate bugs).
pub fn priority_inversion(shared: bool, rounds: u32) -> LatencyReport {
    run_inversion(shared, rounds).expect("scenario is protocol-correct")
}

fn run_inversion(shared: bool, rounds: u32) -> Result<LatencyReport, RtError> {
    // Static mode: the RTSJ has no RT/NoRT reservations, so the shared
    // scenario must be allowed to proceed (it is exactly what the type
    // system forbids).
    let mut rt = Runtime::new(CheckMode::Static, CostModel::default());
    rt.enable_gc(true);
    let regular = rt.main_thread();
    let sub_spec = |_name: &str| RegionSpec {
        kind_name: Some("Scratch".into()),
        policy: AllocPolicy::Lt { capacity: 1 << 16 },
        reservation: Reservation::Any,
        portals: Vec::new(),
        subregions: Vec::new(),
    };
    let spec = RegionSpec {
        kind_name: Some("Comm".into()),
        policy: AllocPolicy::Vt,
        reservation: Reservation::Any,
        portals: Vec::new(),
        subregions: vec![
            ("a".to_string(), sub_spec("a")),
            ("b".to_string(), sub_spec("b")),
        ],
    };
    let parent = rt.create_region(regular, spec, true)?;
    let rt_thread = rt.spawn_thread(regular, ThreadClass::RealTime);
    let rt_member = if shared { "a" } else { "b" };
    let spin = rt.cost_model().region_enter_exit;

    for _ in 0..rounds {
        // Regular thread: enter subregion "a", allocate, begin exit.
        let lock_a = rt.subregion_lock_target(parent, "a", false)?;
        assert!(rt.try_lock_region(regular, lock_a));
        let sub_a = rt.enter_subregion_locked(regular, parent, "a", false)?;
        rt.unlock_region(regular, lock_a)?;
        rt.alloc(regular, RuntimeOwner::Region(sub_a), "Buf", vec![], 4)?;
        // Begin exit: the bookkeeping lock is held…
        assert!(rt.try_lock_region(regular, sub_a));
        // …and a collection strikes right now, pausing the regular thread
        // mid-critical-section.
        rt.force_gc();

        // Real-time thread wants to enter its subregion.
        let lock_rt = rt.subregion_lock_target(parent, rt_member, false)?;
        let wait_start = rt.now();
        let mut waited = false;
        while !rt.try_lock_region(rt_thread, lock_rt) {
            waited = true;
            rt.charge(spin); // the RT thread spins; time passes
            let gc_over = rt.gc_blocking_until().is_none_or(|until| rt.now() >= until);
            if gc_over {
                // The regular thread resumes and completes its exit,
                // releasing the lock.
                rt.exit_subregion_locked(regular, sub_a)?;
                rt.unlock_region(regular, sub_a)?;
            }
        }
        if waited {
            let waited_cycles = rt.now() - wait_start;
            rt.note_rt_lock_wait(waited_cycles);
        }
        let sub_rt = rt.enter_subregion_locked(rt_thread, parent, rt_member, false)?;
        rt.unlock_region(rt_thread, lock_rt)?;
        // The real-time thread does its period's work.
        rt.alloc(rt_thread, RuntimeOwner::Region(sub_rt), "Sample", vec![], 2)?;
        assert!(rt.try_lock_region(rt_thread, sub_rt));
        rt.exit_subregion_locked(rt_thread, sub_rt)?;
        rt.unlock_region(rt_thread, sub_rt)?;

        // If the regular thread never got displaced (disjoint subregions),
        // let the collection finish and complete its exit now.
        if rt.region(sub_a).lock.is_some() {
            if let Some(until) = rt.gc_blocking_until() {
                let now = rt.now();
                rt.charge(until - now);
            }
            rt.exit_subregion_locked(regular, sub_a)?;
            rt.unlock_region(regular, sub_a)?;
        }
        rt.poll_gc();
        // Drain any remaining pause so rounds are independent.
        if let Some(until) = rt.gc_blocking_until() {
            let now = rt.now();
            rt.charge(until - now);
            rt.poll_gc();
        }
    }
    let stats = rt.stats();
    Ok(LatencyReport {
        max_rt_wait: stats.rt_max_lock_wait,
        total_rt_wait: stats.rt_lock_wait_cycles,
        collections: stats.gc_collections,
    })
}

/// One row of the allocation-policy sweep.
#[derive(Debug, Clone)]
pub struct AllocRow {
    /// Object payload size in fields.
    pub fields: usize,
    /// Cycles per LT allocation.
    pub lt_cycles: u64,
    /// Cycles per VT allocation (amortized over many).
    pub vt_cycles: u64,
    /// Cycles per heap allocation.
    pub heap_cycles: u64,
}

/// Measures allocation cost (virtual cycles) per policy across object
/// sizes; used by the `alloc_policies` bench and EXPERIMENTS.md.
pub fn alloc_sweep(sizes: &[usize], per_size: u32) -> Vec<AllocRow> {
    sizes
        .iter()
        .map(|&fields| {
            let mut rt = Runtime::new(CheckMode::Static, CostModel::default());
            let t = rt.main_thread();
            let lt = rt
                .create_region(
                    t,
                    RegionSpec {
                        policy: AllocPolicy::Lt { capacity: 1 << 24 },
                        ..RegionSpec::plain_vt()
                    },
                    false,
                )
                .unwrap();
            let vt = rt.create_region(t, RegionSpec::plain_vt(), false).unwrap();
            let heap = rt.heap();
            let mut measure = |owner: RuntimeOwner| {
                let before = rt.now();
                for _ in 0..per_size {
                    rt.alloc(t, owner, "Obj", vec![], fields).unwrap();
                }
                (rt.now() - before) / per_size as u64
            };
            let lt_cycles = measure(RuntimeOwner::Region(lt));
            let vt_cycles = measure(RuntimeOwner::Region(vt));
            let heap_cycles = measure(RuntimeOwner::Region(heap));
            AllocRow {
                fields,
                lt_cycles,
                vt_cycles,
                heap_cycles,
            }
        })
        .collect()
}

/// Demonstrates that flushing an LT region retains its memory: after a
/// flush, re-filling the region commits no new memory. Returns
/// `(committed_before, committed_after)`.
pub fn lt_flush_retains_memory() -> (u64, u64) {
    let mut rt = Runtime::new(CheckMode::Static, CostModel::default());
    let t = rt.main_thread();
    let spec = RegionSpec {
        kind_name: Some("Comm".into()),
        policy: AllocPolicy::Vt,
        reservation: Reservation::Any,
        portals: Vec::new(),
        subregions: vec![(
            "s".to_string(),
            RegionSpec {
                policy: AllocPolicy::Lt { capacity: 4096 },
                ..RegionSpec::plain_vt()
            },
        )],
    };
    let parent = rt.create_region(t, spec, true).unwrap();
    let lock = rt.subregion_lock_target(parent, "s", false).unwrap();
    let mut fill = || {
        assert!(rt.try_lock_region(t, lock));
        let s = rt.enter_subregion_locked(t, parent, "s", false).unwrap();
        rt.unlock_region(t, lock).unwrap();
        for _ in 0..32 {
            rt.alloc(t, RuntimeOwner::Region(s), "Obj", vec![], 4)
                .unwrap();
        }
        let committed = rt.region(s).committed;
        assert!(rt.try_lock_region(t, s));
        rt.exit_subregion_locked(t, s).unwrap();
        rt.unlock_region(t, s).unwrap();
        committed
    };
    let before = fill();
    let after = fill();
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inversion_blocks_rt_only_when_sharing() {
        let gc_pause = CostModel::default().gc_pause;
        let shared = priority_inversion(true, 4);
        assert!(shared.collections >= 4);
        assert!(
            shared.max_rt_wait >= gc_pause / 2,
            "sharing a subregion exposes the RT thread to GC-length \
             waits: {shared:?}"
        );
        let separated = priority_inversion(false, 4);
        assert_eq!(
            separated.max_rt_wait, 0,
            "with disjoint subregions the RT thread never waits: {separated:?}"
        );
        assert!(separated.collections >= 4, "the GC still ran");
    }

    #[test]
    fn lt_allocation_linear_and_cheaper_than_heap() {
        let rows = alloc_sweep(&[0, 4, 16, 64], 64);
        for w in rows.windows(2) {
            assert!(
                w[1].lt_cycles > w[0].lt_cycles,
                "LT cost grows with size (zeroing)"
            );
        }
        for r in &rows {
            assert!(
                r.heap_cycles > r.lt_cycles,
                "heap allocation is costlier than LT at {} fields",
                r.fields
            );
        }
        // LT cost is linear: cost(64) - cost(16) ≈ 3 * (cost(16) - cost(4))…
        let d1 = rows[2].lt_cycles - rows[1].lt_cycles; // 16 - 4 fields
        let d2 = rows[3].lt_cycles - rows[2].lt_cycles; // 64 - 16 fields
        assert!(
            d2 >= d1 * 3 && d2 <= d1 * 6,
            "zeroing cost should scale with the added bytes: d1={d1} d2={d2}"
        );
    }

    #[test]
    fn lt_flush_keeps_memory_committed() {
        let (before, after) = lt_flush_retains_memory();
        assert_eq!(before, 4096);
        assert_eq!(after, 4096, "flush must not release LT memory");
    }
}
