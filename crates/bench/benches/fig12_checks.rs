//! Figure 12: execution time with the RTSJ dynamic checks vs with them
//! statically elided, for every benchmark in the paper's table.
//!
//! Two measurements per program:
//!
//! * the **virtual-cycle** ratio (printed once, the paper's "Overhead"
//!   column — this is the calibrated, platform-independent number), and
//! * the **wall-clock** time of the interpreter in each mode (the
//!   Criterion measurements), whose ratio must show the same ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtj_corpus::{all, fig12_row, Scale};
use rtj_interp::{build, run_checked, RunConfig};
use rtj_runtime::CheckMode;
use std::hint::black_box;

fn fig12(c: &mut Criterion) {
    // Print the virtual-cycle table once, at smoke scale (the full-scale
    // table is `cargo run -p rtj-cli --release -- fig12`).
    let rows = rtj_corpus::fig12(Scale::Smoke);
    println!("{}", rtj_corpus::render_fig12(&rows));

    let mut group = c.benchmark_group("fig12");
    for bench in all(Scale::Smoke) {
        let checked = build(&bench.source).expect("corpus builds");
        // Sanity: neither mode errs.
        let row = fig12_row(&bench);
        assert!(row.overhead >= 1.0);
        for (mode_name, mode) in [
            ("dynamic", CheckMode::Dynamic),
            ("static", CheckMode::Static),
        ] {
            group.bench_with_input(
                BenchmarkId::new(mode_name, bench.name),
                &checked,
                |b, checked| {
                    b.iter(|| {
                        let out = run_checked(black_box(checked), RunConfig::new(mode));
                        assert!(out.error.is_none());
                        black_box(out.cycles)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig12
}
criterion_main!(benches);
