//! Cost of the observability layer (ISSUE acceptance criterion: tracing
//! *disabled* must not measurably slow the interpreter).
//!
//! Three configurations run the same corpus program:
//!
//! * `off` — `TraceCapture::Off`, the default: the runtime pays one
//!   pointer test per emission point and builds no events;
//! * `ring` — flight-recorder capture of the last 256 events;
//! * `full` — every event rendered to a JSONL line.
//!
//! Whatever the sink, the *virtual* clock is untouched: tracing is pure
//! observation, so cycles and metrics are identical across the three —
//! asserted here before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use rtj_corpus::{all, Scale};
use rtj_interp::{build, run_checked, RunConfig, TraceCapture};
use rtj_runtime::CheckMode;
use std::hint::black_box;

fn cfg(capture: TraceCapture) -> RunConfig {
    let mut cfg = RunConfig::new(CheckMode::Dynamic);
    cfg.events = capture;
    cfg
}

fn trace_overhead(c: &mut Criterion) {
    let bench = all(Scale::Smoke)
        .into_iter()
        .find(|b| b.name == "Array")
        .expect("Array is in the corpus");
    let checked = build(&bench.source).expect("corpus program typechecks");

    let off = run_checked(&checked, cfg(TraceCapture::Off));
    let ring = run_checked(&checked, cfg(TraceCapture::Ring(256)));
    let full = run_checked(&checked, cfg(TraceCapture::Full));
    assert_eq!(
        off.cycles, full.cycles,
        "tracing must not cost virtual time"
    );
    assert_eq!(off.metrics, ring.metrics, "tracing must not change metrics");
    assert_eq!(off.metrics, full.metrics, "tracing must not change metrics");
    println!(
        "trace volume: {} events full, {} retained by ring(256), 0 when off",
        full.events.as_deref().map_or(0, <[String]>::len),
        ring.events.as_deref().map_or(0, <[String]>::len),
    );

    let mut group = c.benchmark_group("trace");
    group.bench_function("off", |b| {
        b.iter(|| black_box(run_checked(&checked, cfg(TraceCapture::Off)).cycles))
    });
    group.bench_function("ring256", |b| {
        b.iter(|| black_box(run_checked(&checked, cfg(TraceCapture::Ring(256))).cycles))
    });
    group.bench_function("full", |b| {
        b.iter(|| black_box(run_checked(&checked, cfg(TraceCapture::Full)).cycles))
    });
    group.finish();
}

criterion_group!(benches, trace_overhead);
criterion_main!(benches);
