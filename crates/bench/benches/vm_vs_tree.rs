//! Engine shoot-out: the tree-walking interpreter vs the bytecode VM on
//! the same programs, plus the region bump-allocation fast path.
//!
//! Both engines charge identical *virtual* cycles (asserted here before
//! measuring); the difference under measurement is pure host-level
//! dispatch efficiency — flat instruction streams, slot-indexed locals,
//! and inline-cached field/method resolution against `Box<Expr>`
//! recursion, string-compared variable lookups, and per-call chain
//! resolution.
//!
//! Set `RTJ_BENCH_SMOKE=1` to run each measurement with a minimal sample
//! count (the CI smoke mode — it verifies the benches run, not timings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtj_corpus::{all, scaled_vm_workload, Scale};
use rtj_interp::{build, run_checked, Engine, RunConfig};
use rtj_runtime::CheckMode;
use std::hint::black_box;

const ENGINES: [Engine; 2] = [Engine::Tree, Engine::Vm];

fn vm_vs_tree(c: &mut Criterion) {
    // Print the wall-clock comparison table once.
    let rows: Vec<rtj_corpus::EngineBenchRow> = [4usize, 16]
        .iter()
        .map(|&n| {
            rtj_corpus::bench_engines(
                &format!("scaled:{n}"),
                &scaled_vm_workload(n),
                CheckMode::Static,
                3,
            )
        })
        .collect();
    println!("{}", rtj_corpus::render_bench(&rows));

    let mut group = c.benchmark_group("vm_vs_tree");
    let mut programs: Vec<(String, String)> = vec![("scaled:8".into(), scaled_vm_workload(8))];
    for bench in all(Scale::Smoke) {
        if matches!(bench.name, "Array" | "Tree" | "Water") {
            programs.push((bench.name.to_owned(), bench.source));
        }
    }
    for (name, src) in &programs {
        let checked = build(src).expect("workload builds");
        // Sanity: the engines agree on the virtual outcome.
        let outs: Vec<_> = ENGINES
            .iter()
            .map(|&engine| {
                let mut cfg = RunConfig::new(CheckMode::Static);
                cfg.engine = engine;
                let out = run_checked(&checked, cfg);
                assert!(out.error.is_none(), "{name}: {:?}", out.error);
                out
            })
            .collect();
        assert_eq!(outs[0].cycles, outs[1].cycles, "{name}");
        assert_eq!(outs[0].metrics, outs[1].metrics, "{name}");
        for engine in ENGINES {
            group.bench_with_input(
                BenchmarkId::new(engine.to_string(), name),
                &checked,
                |b, checked| {
                    b.iter(|| {
                        let mut cfg = RunConfig::new(CheckMode::Static);
                        cfg.engine = engine;
                        let out = run_checked(black_box(checked), cfg);
                        assert!(out.error.is_none());
                        black_box(out.cycles)
                    })
                },
            );
        }
    }
    group.finish();
}

/// The LT-region arena fast path: allocation churn into an LT subregion
/// that is flushed every iteration (bump pointer + O(1) reset) compared
/// with the same churn into a VT region (boxed per-object field
/// storage). Measured end-to-end through the VM.
fn alloc_fast_path(c: &mut Criterion) {
    let lt = r#"
        regionKind Buf extends SharedRegion {
            subregion Frame : LT(65536) NoRT f;
        }
        regionKind Frame extends SharedRegion { }
        class Px<Owner o> { int v; Px<o> next; }
        {
            (RHandle<Buf : VT r> h) {
                let it = 0;
                while (it < 64) {
                    (RHandle<Frame fr> hf = h.f) {
                        let i = 0;
                        let Px<fr> chain = null;
                        while (i < 32) {
                            let p = new Px<fr>;
                            p.v = it + i;
                            p.next = chain;
                            chain = p;
                            i = i + 1;
                        }
                    }
                    it = it + 1;
                }
                print(it);
            }
        }
    "#;
    let vt = r#"
        class Px<Owner o> { int v; Px<o> next; }
        {
            let it = 0;
            while (it < 64) {
                (RHandle<fr> hf) {
                    let i = 0;
                    let Px<fr> chain = null;
                    while (i < 32) {
                        let p = new Px<fr>;
                        p.v = it + i;
                        p.next = chain;
                        chain = p;
                        i = i + 1;
                    }
                }
                it = it + 1;
            }
            print(it);
        }
    "#;
    let mut group = c.benchmark_group("alloc_fast_path");
    for (name, src) in [("lt_arena", lt), ("vt_boxed", vt)] {
        let checked = build(src).expect("alloc workload builds");
        group.bench_function(name, |b| {
            b.iter(|| {
                let out = run_checked(black_box(&checked), RunConfig::new(CheckMode::Static));
                assert!(out.error.is_none());
                black_box(out.cycles)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    let smoke = std::env::var_os("RTJ_BENCH_SMOKE").is_some();
    Criterion::default().sample_size(if smoke { 10 } else { 60 })
}

criterion_group! {
    name = benches;
    config = config();
    targets = vm_vs_tree, alloc_fast_path
}
criterion_main!(benches);
