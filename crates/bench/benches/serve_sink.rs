//! Result-sink contention on the serving hot path: the global
//! `Mutex<Vec<_>>` every completed session used to funnel through,
//! against the per-worker shards that replaced it (sharing serialized by
//! construction — each worker appends to a sink only it touches, merged
//! once after drain).
//!
//! The jobs are synthetic (a short FNV loop standing in for engine work,
//! then one result append), so the measured difference is the
//! aggregation discipline itself, not interpreter throughput.
//!
//! Set `RTJ_BENCH_SMOKE=1` for a minimal-sample CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use rtj_server::Executor;
use std::hint::black_box;
use std::sync::{Arc, Mutex};

const WORKERS: usize = 4;

/// A stand-in for one session's deterministic outcome.
struct Row {
    session: u64,
    digest: u64,
}

/// A few FNV-1a rounds: enough work that workers overlap, little enough
/// that the sink append is a visible fraction of the job.
fn synthetic_work(session: u64) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for i in 0..64u64 {
        hash ^= session.wrapping_add(i);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn jobs_per_iter() -> u64 {
    if std::env::var_os("RTJ_BENCH_SMOKE").is_some() {
        256
    } else {
        4096
    }
}

fn result_sinks(c: &mut Criterion) {
    let jobs = jobs_per_iter();
    let mut group = c.benchmark_group("serve_result_sink");

    // The old design: one lock, every worker contends on every append.
    group.bench_function("mutex_global", |b| {
        let pool = Executor::new(WORKERS, 0);
        b.iter(|| {
            let sink: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
            for session in 0..jobs {
                let sink = Arc::clone(&sink);
                pool.submit(Box::new(move |_worker| {
                    let digest = synthetic_work(session);
                    sink.lock().unwrap().push(Row { session, digest });
                }));
            }
            pool.drain();
            let sink = sink.lock().unwrap();
            assert_eq!(sink.len() as u64, jobs);
            black_box(
                sink.iter()
                    .map(|r| r.digest ^ r.session)
                    .fold(0, u64::wrapping_add),
            )
        })
    });

    // The sharded design: worker `w` appends to shard `w`; the only
    // cross-thread touch is the merge after drain.
    group.bench_function("sharded_per_worker", |b| {
        let pool = Executor::new(WORKERS, 0);
        b.iter(|| {
            let shards: Arc<Vec<Mutex<Vec<Row>>>> =
                Arc::new((0..WORKERS).map(|_| Mutex::new(Vec::new())).collect());
            for session in 0..jobs {
                let shards = Arc::clone(&shards);
                pool.submit(Box::new(move |worker| {
                    let digest = synthetic_work(session);
                    shards[worker].lock().unwrap().push(Row { session, digest });
                }));
            }
            pool.drain();
            let mut merged: Vec<Row> = Vec::with_capacity(jobs as usize);
            for shard in shards.iter() {
                merged.append(&mut shard.lock().unwrap());
            }
            merged.sort_unstable_by_key(|r| r.session);
            assert_eq!(merged.len() as u64, jobs);
            black_box(
                merged
                    .iter()
                    .map(|r| r.digest ^ r.session)
                    .fold(0, u64::wrapping_add),
            )
        })
    });

    group.finish();
}

fn config() -> Criterion {
    let smoke = std::env::var_os("RTJ_BENCH_SMOKE").is_some();
    Criterion::default().sample_size(if smoke { 10 } else { 40 })
}

criterion_group! {
    name = benches;
    config = config();
    targets = result_sinks
}
criterion_main!(benches);
