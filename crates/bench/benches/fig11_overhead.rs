//! Figure 11: programming overhead. The table itself is static analysis
//! (printed once); the Criterion measurement times the annotation
//! analysis over the whole corpus, which also guards against the metric
//! becoming accidentally quadratic.

use criterion::{criterion_group, criterion_main, Criterion};
use rtj_corpus::{all, annotation_report, fig11, render_fig11, Scale};
use std::hint::black_box;

fn fig11_bench(c: &mut Criterion) {
    println!("{}", render_fig11(&fig11()));
    let sources: Vec<String> = all(Scale::Paper).into_iter().map(|b| b.source).collect();
    c.bench_function("fig11/annotation_analysis", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for s in &sources {
                let rep = annotation_report(black_box(s));
                total += rep.annotated;
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, fig11_bench);
criterion_main!(benches);
