//! "Typechecking is fast and scalable": throughput of the parser and the
//! ownership/region type checker over the corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtj_corpus::{all, scaled_classes, Scale};
use rtj_types::{check_program_in, CheckOptions};
use std::hint::black_box;

fn checker_perf(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for bench in all(Scale::Paper) {
        // One entry per distinct program family is enough.
        if !matches!(bench.name, "Array" | "Water" | "ImageRec" | "http") {
            continue;
        }
        let src = bench.source.clone();
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", bench.name), &src, |b, src| {
            b.iter(|| black_box(rtj_lang::parse_program(black_box(src)).unwrap()))
        });
        let parsed = rtj_lang::parse_program(&src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("check", bench.name),
            &parsed,
            |b, parsed| b.iter(|| black_box(rtj_types::check_program(black_box(parsed)).unwrap())),
        );
    }
    group.finish();
}

/// Checker throughput over the replicated-class corpus at 1x / 8x / 64x:
/// the scaling story of the interned + memoized + parallel pipeline.
///
/// `serial` pins `jobs = 1` (the fully serial driver); `parallel` uses
/// `jobs = 0` (one worker per core), so on a multi-core host the gap
/// between the two rows is the parallel speedup. Throughput is reported
/// in class-family replicas per second.
fn scaled_corpus(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker-scaled");
    for copies in [1usize, 8, 64] {
        let src = scaled_classes(copies);
        let parsed = rtj_lang::parse_program(&src).unwrap();
        group.throughput(Throughput::Elements(copies as u64));
        group.bench_with_input(BenchmarkId::new("serial", copies), &parsed, |b, p| {
            b.iter(|| {
                black_box(
                    check_program_in(
                        black_box(p.clone()),
                        &CheckOptions {
                            jobs: 1,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("parallel", copies), &parsed, |b, p| {
            b.iter(|| {
                black_box(
                    check_program_in(
                        black_box(p.clone()),
                        &CheckOptions {
                            jobs: 0,
                            ..Default::default()
                        },
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = checker_perf, scaled_corpus
}
criterion_main!(benches);
