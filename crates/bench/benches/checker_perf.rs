//! "Typechecking is fast and scalable": throughput of the parser and the
//! ownership/region type checker over the corpus.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtj_corpus::{all, Scale};
use std::hint::black_box;

fn checker_perf(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for bench in all(Scale::Paper) {
        // One entry per distinct program family is enough.
        if !matches!(bench.name, "Array" | "Water" | "ImageRec" | "http") {
            continue;
        }
        let src = bench.source.clone();
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", bench.name), &src, |b, src| {
            b.iter(|| black_box(rtj_lang::parse_program(black_box(src)).unwrap()))
        });
        let parsed = rtj_lang::parse_program(&src).unwrap();
        group.bench_with_input(
            BenchmarkId::new("check", bench.name),
            &parsed,
            |b, parsed| b.iter(|| black_box(rtj_types::check_program(black_box(parsed)).unwrap())),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = checker_perf
}
criterion_main!(benches);
