//! Ablation of the Section 2.3 allocation-policy claims:
//!
//! * LT allocation is linear in object size (pointer slide + zeroing);
//! * VT allocation pays variable chunk-acquisition costs;
//! * heap allocation is the most expensive (GC synchronization);
//! * flushing an LT region retains its memory, so periodic real-time
//!   work re-enters and refills it with no new commitment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtj_bench::{alloc_sweep, lt_flush_retains_memory};
use rtj_runtime::{AllocPolicy, CheckMode, CostModel, RegionSpec, Runtime, RuntimeOwner};
use std::hint::black_box;

fn alloc_policies(c: &mut Criterion) {
    // Print the virtual-cycle sweep once.
    println!("allocation cost (virtual cycles per object)");
    println!("fields      LT      VT    heap");
    for row in alloc_sweep(&[0, 4, 16, 64], 128) {
        println!(
            "{:>6} {:>7} {:>7} {:>7}",
            row.fields, row.lt_cycles, row.vt_cycles, row.heap_cycles
        );
    }
    let (before, after) = lt_flush_retains_memory();
    println!("LT flush: committed before = {before}, after = {after} (retained)\n");

    // Wall-clock cost of the simulated allocator itself.
    let mut group = c.benchmark_group("alloc");
    for fields in [0usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("lt", fields), &fields, |b, &fields| {
            b.iter_batched(
                || {
                    let mut rt = Runtime::new(CheckMode::Static, CostModel::default());
                    let t = rt.main_thread();
                    let r = rt
                        .create_region(
                            t,
                            RegionSpec {
                                policy: AllocPolicy::Lt { capacity: 1 << 24 },
                                ..RegionSpec::plain_vt()
                            },
                            false,
                        )
                        .unwrap();
                    (rt, t, r)
                },
                |(mut rt, t, r)| {
                    for _ in 0..1000 {
                        black_box(
                            rt.alloc(t, RuntimeOwner::Region(r), "Obj", vec![], fields)
                                .unwrap(),
                        );
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("vt", fields), &fields, |b, &fields| {
            b.iter_batched(
                || {
                    let mut rt = Runtime::new(CheckMode::Static, CostModel::default());
                    let t = rt.main_thread();
                    let r = rt.create_region(t, RegionSpec::plain_vt(), false).unwrap();
                    (rt, t, r)
                },
                |(mut rt, t, r)| {
                    for _ in 0..1000 {
                        black_box(
                            rt.alloc(t, RuntimeOwner::Region(r), "Obj", vec![], fields)
                                .unwrap(),
                        );
                    }
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = alloc_policies
}
criterion_main!(benches);
