//! Cost of the checker's self-profiling (ISSUE acceptance criterion:
//! profiling *disabled* must not measurably slow the checking pipeline).
//!
//! Two configurations check the same scaled corpus program:
//!
//! * `off` — `CheckOptions::profile = false`, the default: the driver
//!   pays one boolean test per phase boundary and takes no timestamps;
//! * `on` — per-phase and per-class spans recorded, folded into the
//!   `rtj-checker-metrics/v1` snapshot afterwards.
//!
//! Profiling is pure observation: diagnostics, statistics counters, and
//! the span-tree *structure* are invariant across repetitions and the
//! profile flag — asserted here before timing anything.

use criterion::{criterion_group, criterion_main, Criterion};
use rtj_corpus::scaled_classes;
use rtj_lang::parse_program;
use rtj_types::{check_program_in, CheckOptions, CheckerSnapshot};
use std::hint::black_box;

fn opts(profile: bool) -> CheckOptions {
    CheckOptions { jobs: 1, profile }
}

fn check_profile_overhead(c: &mut Criterion) {
    let source = scaled_classes(12);
    let program = parse_program(&source).expect("scaled corpus parses");

    let off = check_program_in(program.clone(), &opts(false)).expect("well-typed");
    let on = check_program_in(program.clone(), &opts(true)).expect("well-typed");
    assert!(off.profile.is_none(), "no span tree when profiling is off");
    let profile = on.profile.as_ref().expect("span tree when profiling is on");
    assert_eq!(
        off.stats.judgments, on.stats.judgments,
        "profiling must not change the judgment cache traffic"
    );
    let again = check_program_in(program.clone(), &opts(true)).expect("well-typed");
    assert_eq!(
        CheckerSnapshot::capture(&on.stats, on.profile.as_ref()).structure(),
        CheckerSnapshot::capture(&again.stats, again.profile.as_ref()).structure(),
        "snapshot structure must be deterministic"
    );
    println!(
        "profile volume: {} top-level phases, {} class spans",
        profile.phases.len(),
        profile
            .phases
            .iter()
            .find(|p| p.name == "classes")
            .map_or(0, |p| p.children.len()),
    );

    let mut group = c.benchmark_group("check_profile");
    group.bench_function("off", |b| {
        b.iter(|| {
            let p = program.clone();
            black_box(check_program_in(p, &opts(false)).expect("well-typed").stats)
        })
    });
    group.bench_function("on", |b| {
        b.iter(|| {
            let p = program.clone();
            black_box(check_program_in(p, &opts(true)).expect("well-typed").stats)
        })
    });
    group.finish();
}

criterion_group!(benches, check_profile_overhead);
criterion_main!(benches);
