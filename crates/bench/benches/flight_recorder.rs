//! Overhead of the server flight recorder (ISSUE acceptance criterion:
//! the disabled path must be within noise of no telemetry at all).
//!
//! Three measurements:
//!
//! * `batch/off` — a fixed saturation batch with `telemetry: None`: the
//!   per-event cost is one `Option` branch that is never taken;
//! * `batch/on` — the same batch with the recorder live, bounding the
//!   full cost of stamping ~9 events per session plus the sampler;
//! * `record` — the raw hot-path append itself (clock read + 24-byte
//!   push onto an uncontended lane).
//!
//! Telemetry is pure observation — asserted here via the results
//! fingerprint before timing anything.
//!
//! Set `RTJ_BENCH_SMOKE=1` for a minimal-sample CI smoke run.

use criterion::{criterion_group, criterion_main, Criterion};
use rtj_interp::Engine;
use rtj_runtime::CheckMode;
use rtj_server::{
    results_fingerprint, run_batch, EventKind, FlightRecorder, ServeConfig, TelemetryConfig,
};
use std::hint::black_box;

fn batch_config(telemetry: bool) -> ServeConfig {
    ServeConfig {
        workers: 4,
        programs: vec!["http".into(), "game".into(), "phone".into()],
        variants: 1,
        modes: vec![CheckMode::Static, CheckMode::Dynamic],
        engines: vec![Engine::Vm],
        telemetry: telemetry.then(TelemetryConfig::default),
        ..ServeConfig::default()
    }
}

fn rounds() -> u64 {
    if std::env::var_os("RTJ_BENCH_SMOKE").is_some() {
        1
    } else {
        4
    }
}

fn telemetry_overhead(c: &mut Criterion) {
    // Observation must not perturb: identical fingerprints on and off.
    let off = run_batch(&batch_config(false), 2).expect("serve");
    let on = run_batch(&batch_config(true), 2).expect("serve");
    assert_eq!(
        results_fingerprint(&off.results),
        results_fingerprint(&on.results),
        "telemetry changed session results"
    );
    let events: u64 = on
        .telemetry
        .expect("telemetry on")
        .trace
        .counts()
        .iter()
        .sum();
    println!(
        "flight recorder: {events} events over {} sessions\n",
        on.results.len()
    );

    let rounds = rounds();
    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("batch/off", |b| {
        b.iter(|| black_box(run_batch(&batch_config(false), rounds).expect("serve")))
    });
    group.bench_function("batch/on", |b| {
        b.iter(|| black_box(run_batch(&batch_config(true), rounds).expect("serve")))
    });
    group.finish();

    // The raw hot-path append, on an otherwise idle recorder lane.
    c.bench_function("telemetry_record", |b| {
        let rec = FlightRecorder::new(1);
        let mut session = 0u64;
        b.iter(|| {
            session += 1;
            rec.record(0, black_box(EventKind::Dequeue), Some(black_box(session)));
            // Bound the lane's growth across criterion's many
            // iterations; amortized to nothing.
            if session.is_multiple_of(1 << 16) {
                black_box(rec.drain());
            }
        });
    });
}

fn criterion() -> Criterion {
    let smoke = std::env::var_os("RTJ_BENCH_SMOKE").is_some();
    Criterion::default().sample_size(if smoke { 10 } else { 30 })
}

criterion_group! {
    name = benches;
    config = criterion();
    targets = telemetry_overhead
}
criterion_main!(benches);
