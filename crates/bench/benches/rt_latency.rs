//! The Section 2.3 priority-inversion experiment: worst-case real-time
//! thread blocking when RT and regular threads share a subregion (as the
//! RTSJ allows) versus the type system's RT/NoRT separation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtj_bench::priority_inversion;
use std::hint::black_box;

fn rt_latency(c: &mut Criterion) {
    let shared = priority_inversion(true, 8);
    let separated = priority_inversion(false, 8);
    println!("priority inversion (worst RT wait, virtual cycles)");
    println!(
        "  RTSJ shared subregion : max wait {:>8} cycles over {} collections",
        shared.max_rt_wait, shared.collections
    );
    println!(
        "  typed RT/NoRT split   : max wait {:>8} cycles over {} collections\n",
        separated.max_rt_wait, separated.collections
    );
    assert!(shared.max_rt_wait > 0);
    assert_eq!(separated.max_rt_wait, 0);

    let mut group = c.benchmark_group("rt_latency");
    for (name, is_shared) in [("rtsj_shared", true), ("typed_separated", false)] {
        group.bench_with_input(BenchmarkId::new(name, 8), &is_shared, |b, &s| {
            b.iter(|| black_box(priority_inversion(s, 8)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = rt_latency
}
criterion_main!(benches);
