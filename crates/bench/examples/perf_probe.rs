//! Quick checker-throughput probe over the replicated-class corpus.
//!
//! ```text
//! cargo run --release -p rtj-bench --example perf_probe [copies] [dump.rtj]
//! ```
//!
//! Times the serial (`jobs = 1`) and auto-parallel (`jobs = 0`) drivers on
//! `scaled_classes(copies)`; with a second argument, also writes the
//! generated source to a file (handy for feeding external tools).

use rtj_types::{check_program_in, CheckOptions};

fn main() {
    let mut args = std::env::args().skip(1);
    let copies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let src = rtj_corpus::scaled_classes(copies);
    if let Some(out) = args.next() {
        std::fs::write(&out, &src).unwrap();
    }
    let p = rtj_lang::parse_program(&src).unwrap();
    println!("copies={copies} ({} bytes)", src.len());
    for jobs in [1usize, 0] {
        let opts = CheckOptions {
            jobs,
            ..Default::default()
        };
        for _ in 0..3 {
            check_program_in(p.clone(), &opts).unwrap();
        }
        let iters = 30u32;
        let t = std::time::Instant::now();
        let mut threads = 0;
        for _ in 0..iters {
            let c = std::hint::black_box(
                check_program_in(std::hint::black_box(p.clone()), &opts).unwrap(),
            );
            threads = c.stats.threads_used;
        }
        println!(
            "jobs={jobs} ({threads} thread(s)): {:?} per check",
            t.elapsed() / iters
        );
    }
}
