//! Seeded single-class edit batches against [`scaled_classes`], the
//! workload of the incremental re-checking bench (`rtjc bench
//! incremental:N`) and of the CI differential smoke (`rtjc check --edits`).
//!
//! Each batch replaces one whole class declaration of one replica with a
//! batch-unique variant:
//!
//! * `body` — pads `Stack{r}::size` with a self-cancelling local, so only
//!   the class's *full* fingerprint changes (the fast path: nothing else
//!   re-checks);
//! * `signature` — adds a method to `Item{r}`, changing its *signature*
//!   fingerprint (the dirty closure pulls in `Node{r}` and `Stack{r}`);
//! * `body_error` — makes `Base{r}::bump` reference an undeclared
//!   variable, so the batch must produce a diagnostic (and a later batch
//!   on the same replica heals it) — exercising cached-diagnostic reuse.
//!
//! Generation is a pure function of `(copies, batches, seed)` via an MMIX
//! LCG, like the request mixes in `rtj-server`.

use crate::programs::scaled_classes;
use rtj_lang::json::{Json, JsonError};
use rtj_lang::parser::parse_program;

/// Schema identifier for serialized edit scripts.
pub const EDITS_SCHEMA: &str = "rtj-edits/v1";

/// One single-class edit batch: replace the declaration of `class` with
/// `source`.
#[derive(Debug, Clone, PartialEq)]
pub struct EditBatch {
    /// Batch index (application order).
    pub id: usize,
    /// `"body"`, `"signature"`, or `"body_error"`.
    pub kind: String,
    /// The class whose declaration is replaced.
    pub class: String,
    /// The full replacement declaration text.
    pub source: String,
}

/// A generated edit script: the workload it applies to plus the batches
/// in application order.
#[derive(Debug, Clone, PartialEq)]
pub struct EditScript {
    /// Workload label, e.g. `"scaled:64"` (apply to [`scaled_classes`]).
    pub workload: String,
    /// Replica count of the workload.
    pub copies: usize,
    /// Generator seed.
    pub seed: u64,
    /// The batches, in application order.
    pub batches: Vec<EditBatch>,
}

const MMIX_MUL: u64 = 6364136223846793005;
const MMIX_INC: u64 = 1442695040888963407;

fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(MMIX_MUL).wrapping_add(MMIX_INC);
    *state >> 16
}

/// Generates `batches` seeded single-class edit batches against
/// `scaled_classes(copies)`.
///
/// Roughly five in eight batches are body-only, two are
/// signature-changing, one introduces (or, by replacing the whole
/// declaration, heals) a type error.
///
/// # Panics
///
/// Panics if [`scaled_classes`] stops parsing or its class bodies lose
/// the needles the edits splice against — both are corpus invariants
/// covered by tests.
pub fn edit_batches(copies: usize, batches: usize, seed: u64) -> EditScript {
    let copies = copies.max(1);
    let source = scaled_classes(copies);
    let program = parse_program(&source).expect("scaled_classes parses");
    let class_text = |name: &str| -> &str {
        let decl = program
            .classes
            .iter()
            .find(|c| c.name.name.as_str() == name)
            .unwrap_or_else(|| panic!("scaled_classes has no class {name}"));
        &source[decl.span.start as usize..decl.span.end as usize]
    };

    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut out = Vec::with_capacity(batches);
    for id in 0..batches {
        let replica = (next(&mut state) as usize) % copies;
        let v = next(&mut state) % 1000;
        let (kind, class, source) = match next(&mut state) % 8 {
            0..=4 => {
                let class = format!("Stack{replica}");
                let needle = "let c = 0;";
                let text = class_text(&class);
                assert!(text.contains(needle), "{class} lost its size() preamble");
                let patched = text.replacen(
                    needle,
                    &format!("let c = 0;\n        let pad{id} = {v};\n        c = c + pad{id} - pad{id};"),
                    1,
                );
                ("body", class, patched)
            }
            5..=6 => {
                let class = format!("Item{replica}");
                let text = class_text(&class);
                let close = text.rfind('}').expect("class body closes");
                let mut patched = text[..close].to_string();
                patched.push_str(&format!("int probe{id}(int x) {{ return x + {v}; }} }}"));
                ("signature", class, patched)
            }
            _ => {
                let class = format!("Base{replica}");
                let needle = "this.tag = this.tag + x;";
                let text = class_text(&class);
                assert!(text.contains(needle), "{class} lost its bump() body");
                let patched = text.replacen(needle, &format!("this.tag = oops{id} + x;"), 1);
                ("body_error", class, patched)
            }
        };
        out.push(EditBatch {
            id,
            kind: kind.to_string(),
            class,
            source,
        });
    }
    EditScript {
        workload: format!("scaled:{copies}"),
        copies,
        seed,
        batches: out,
    }
}

/// Serializes an edit script as a versioned `rtj-edits/v1` document.
pub fn edits_json(script: &EditScript) -> Json {
    Json::obj(vec![
        ("schema", Json::Str(EDITS_SCHEMA.to_string())),
        ("workload", Json::Str(script.workload.clone())),
        ("copies", Json::Int(script.copies as i64)),
        ("seed", Json::Int(script.seed as i64)),
        (
            "batches",
            Json::Arr(
                script
                    .batches
                    .iter()
                    .map(|b| {
                        Json::obj(vec![
                            ("id", Json::Int(b.id as i64)),
                            ("kind", Json::Str(b.kind.clone())),
                            ("class", Json::Str(b.class.clone())),
                            ("source", Json::Str(b.source.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses an `rtj-edits/v1` document back into an [`EditScript`].
///
/// # Errors
///
/// Rejects documents with a missing/unknown schema or missing fields.
pub fn parse_edits(doc: &Json) -> Result<EditScript, JsonError> {
    let fail = |m: String| JsonError { at: 0, message: m };
    match doc.get("schema").and_then(Json::as_str) {
        Some(EDITS_SCHEMA) => {}
        other => {
            return Err(fail(format!(
                "expected schema {EDITS_SCHEMA:?}, found {other:?}"
            )))
        }
    }
    let str_of = |v: &Json, k: &str| {
        v.get(k)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| fail(format!("missing string `{k}`")))
    };
    let mut batches = Vec::new();
    for b in doc
        .get("batches")
        .and_then(Json::as_arr)
        .ok_or_else(|| fail("missing `batches`".to_string()))?
    {
        batches.push(EditBatch {
            id: b
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("batch missing `id`".to_string()))? as usize,
            kind: str_of(b, "kind")?,
            class: str_of(b, "class")?,
            source: str_of(b, "source")?,
        });
    }
    Ok(EditScript {
        workload: str_of(doc, "workload")?,
        copies: doc
            .get("copies")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing `copies`".to_string()))? as usize,
        seed: doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing `seed`".to_string()))?,
        batches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtj_types::{CheckOptions, ClassEdit, IncrementalChecker};

    #[test]
    fn generation_is_deterministic_and_covers_all_kinds() {
        let a = edit_batches(4, 32, 7);
        let b = edit_batches(4, 32, 7);
        assert_eq!(a, b);
        for kind in ["body", "signature", "body_error"] {
            assert!(
                a.batches.iter().any(|e| e.kind == kind),
                "32 batches should include a {kind} edit"
            );
        }
        assert_ne!(a, edit_batches(4, 32, 8), "seed must matter");
    }

    #[test]
    fn edits_round_trip_through_json() {
        let script = edit_batches(2, 6, 1);
        let back = parse_edits(&edits_json(&script)).unwrap();
        assert_eq!(script, back);
    }

    #[test]
    fn batches_apply_cleanly_to_the_engine() {
        let script = edit_batches(2, 12, 3);
        let mut eng = IncrementalChecker::new(CheckOptions::default());
        eng.check_source(&scaled_classes(2)).unwrap();
        for b in &script.batches {
            let out = eng
                .recheck(&[ClassEdit {
                    class: b.class.clone(),
                    source: b.source.clone(),
                }])
                .unwrap_or_else(|e| panic!("batch {}: {e}", b.id));
            match b.kind.as_str() {
                "body" => assert!(
                    !out.full_rebuild,
                    "batch {} (body) must take the fast path",
                    b.id
                ),
                "signature" => assert!(
                    out.dirty.len() >= 3,
                    "batch {} (signature) must invalidate dependents",
                    b.id
                ),
                _ => assert!(
                    !out.ok(),
                    "batch {} (body_error) must produce a diagnostic",
                    b.id
                ),
            }
        }
    }
}
