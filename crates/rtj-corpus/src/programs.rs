//! The paper's benchmark programs (Section 3), re-implemented in the core
//! language with the same memory behaviour:
//!
//! * **Array**, **Tree** — micro-benchmarks written specifically to
//!   maximize the ratio of (checked) reference assignments to other
//!   computation;
//! * **Water**, **Barnes** — scientific computations: arithmetic-heavy
//!   time-stepped simulations over object graphs allocated in regions;
//! * **ImageRec** — an image-recognition pipeline with six stages
//!   (`load`, `cross`, `threshold`, `hysteresis`, `thinning`, `save`);
//! * **http**, **game**, **phone** — servers whose running time is
//!   dominated by (simulated) network I/O, handled per-request in a shared
//!   region's subregion.
//!
//! Every program allocates its primary data structures in regions (never
//! the garbage-collected heap), as in the paper's implementations.

/// Workload scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny inputs for unit/integration tests.
    Smoke,
    /// Inputs big enough for stable Figure 12 ratios.
    Paper,
}

/// Which group a benchmark belongs to (used for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Check-density micro-benchmark.
    Micro,
    /// Scientific computation.
    Scientific,
    /// The whole image-recognition pipeline.
    ImageRec,
    /// One stage of the image-recognition pipeline.
    ImageStage,
    /// Network server.
    Server,
}

impl Category {
    /// Stable lower-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Category::Micro => "micro",
            Category::Scientific => "scientific",
            Category::ImageRec => "image_rec",
            Category::ImageStage => "image_stage",
            Category::Server => "server",
        }
    }
}

/// A benchmark program: name, source text, category.
#[derive(Debug, Clone)]
pub struct BenchProgram {
    /// Program name as in the paper's tables.
    pub name: &'static str,
    /// Full source text in the core language.
    pub source: String,
    /// Reporting category.
    pub category: Category,
}

/// All benchmark programs at the given scale, in the paper's table order.
pub fn all(scale: Scale) -> Vec<BenchProgram> {
    vec![
        BenchProgram {
            name: "Array",
            source: array(scale),
            category: Category::Micro,
        },
        BenchProgram {
            name: "Tree",
            source: tree(scale),
            category: Category::Micro,
        },
        BenchProgram {
            name: "Water",
            source: water(scale),
            category: Category::Scientific,
        },
        BenchProgram {
            name: "Barnes",
            source: barnes(scale),
            category: Category::Scientific,
        },
        BenchProgram {
            name: "ImageRec",
            source: imagerec(scale, ImageStage::All),
            category: Category::ImageRec,
        },
        BenchProgram {
            name: "load",
            source: imagerec(scale, ImageStage::Load),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "cross",
            source: imagerec(scale, ImageStage::Cross),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "threshold",
            source: imagerec(scale, ImageStage::Threshold),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "hysteresis",
            source: imagerec(scale, ImageStage::Hysteresis),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "thinning",
            source: imagerec(scale, ImageStage::Thinning),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "save",
            source: imagerec(scale, ImageStage::Save),
            category: Category::ImageStage,
        },
        BenchProgram {
            name: "http",
            source: http(scale),
            category: Category::Server,
        },
        BenchProgram {
            name: "game",
            source: game(scale),
            category: Category::Server,
        },
        BenchProgram {
            name: "phone",
            source: phone(scale),
            category: Category::Server,
        },
    ]
}

/// The `Array` micro-benchmark: two parallel cell chains in one region;
/// every pass copies item references between them with the assignments
/// unrolled, maximizing the assignment/computation ratio.
pub fn array(scale: Scale) -> String {
    let (n, passes) = match scale {
        Scale::Smoke => (16, 2),
        Scale::Paper => (512, 60),
    };
    format!(
        r#"// Array: reference-assignment micro-benchmark (Figure 12, row 1).
class Item<Owner o> {{ int v; }}
class Cell<Owner o> {{ Item<o> item; Cell<o> next; }}
{{
    (RHandle<r> h) {{
        let n = {n};
        let Cell<r> src = null;
        let Cell<r> dst = null;
        let i = 0;
        while (i < n) {{
            let c = new Cell<r>;
            let it = new Item<r>;
            it.v = i;
            c.item = it;
            c.next = src;
            src = c;
            let d = new Cell<r>;
            d.next = dst;
            dst = d;
            i = i + 1;
        }}
        let p = 0;
        while (p < {passes}) {{
            let s = src;
            let d = dst;
            while (s != null) {{
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                d.item = s.item;
                s = s.next;
                d = d.next;
            }}
            p = p + 1;
        }}
        let check = 0;
        let d2 = dst;
        while (d2 != null) {{
            check = check + d2.item.v;
            d2 = d2.next;
        }}
        print(check);
    }}
}}
"#
    )
}

/// The `Tree` micro-benchmark: builds a binary tree in a region, then
/// repeatedly swaps children (reference assignments with recursion
/// overhead).
pub fn tree(scale: Scale) -> String {
    let (depth, passes) = match scale {
        Scale::Smoke => (4, 2),
        Scale::Paper => (12, 24),
    };
    format!(
        r#"// Tree: pointer-swap micro-benchmark (Figure 12, row 2).
class TreeNode<Owner o> {{ TreeNode<o> left; TreeNode<o> right; int v; }}
class TreeBench<Owner o> {{
    TreeNode<o> build(int depth) {{
        if (depth == 0) {{ return null; }}
        let n = new TreeNode<o>;
        n.v = depth;
        n.left = this.build(depth - 1);
        n.right = this.build(depth - 1);
        return n;
    }}
    void swap(TreeNode<o> n) {{
        if (n == null) {{ return; }}
        let l = n.left;
        let r = n.right;
        n.left = r;
        n.right = l;
        n.left = l;
        n.right = r;
        n.left = r;
        n.right = l;
        n.left = l;
        n.right = r;
        n.left = r;
        n.right = l;
        n.left = l;
        n.right = r;
        n.left = r;
        n.right = l;
        n.left = r;
        n.right = l;
        if (l != null) {{ this.swap(l); }}
        if (r != null) {{ this.swap(r); }}
    }}
    int sum(TreeNode<o> n) {{
        if (n == null) {{ return 0; }}
        return n.v + this.sum(n.left) + this.sum(n.right);
    }}
}}
{{
    (RHandle<r> h) {{
        let b = new TreeBench<r>;
        let root = b.build({depth});
        let p = 0;
        while (p < {passes}) {{
            b.swap(root);
            p = p + 1;
        }}
        print(b.sum(root));
    }}
}}
"#
    )
}

/// The `Water` scientific benchmark: a chain of molecules advanced through
/// time steps with neighbour interactions — arithmetic-heavy with
/// moderate reference traffic.
pub fn water(scale: Scale) -> String {
    let (n, steps) = match scale {
        Scale::Smoke => (8, 2),
        Scale::Paper => (216, 24),
    };
    format!(
        r#"// Water: time-stepped simulation of water molecules (Figure 12, row 3).
// Each molecule has three atoms (H-O-H); every step runs the classic
// phases: predict, intra-molecular forces, inter-molecular forces,
// correct, and boundary wrap-around, double-buffering atom positions.
class Vec3<Owner o> {{ int x; int y; int z; }}
class Atom<Owner o> {{
    Vec3<o> pos;
    Vec3<o> vel;
    Vec3<o> old;
    Vec3<o> oldVel;
}}
class Molecule<Owner o> {{
    Atom<o> h1;
    Atom<o> oxy;
    Atom<o> h2;
    Molecule<o> cache;
    Molecule<o> next;
}}
class Sim<Owner o> {{
    Molecule<o> first;
    int boxSize;

    // Predictor: advance each atom by its velocity, remembering the
    // previous position object (the double-buffer reference store).
    void predictAtom(Atom<o> a) {{
        a.old = a.pos;
        let p = a.pos;
        let v = a.vel;
        p.x = p.x + v.x / 16;
        p.y = p.y + v.y / 16;
        p.z = p.z + v.z / 16;
    }}
    void predict() {{
        let m = this.first;
        while (m != null) {{
            this.predictAtom(m.h1);
            this.predictAtom(m.oxy);
            this.predictAtom(m.h2);
            m = m.next;
        }}
    }}

    // Intra-molecular forces: bond stretching between O and each H.
    void bond(Atom<o> a, Atom<o> b) {{
        let pa = a.pos;
        let pb = b.pos;
        let dx = pa.x - pb.x;
        let dy = pa.y - pb.y;
        let dz = pa.z - pb.z;
        let d2 = dx * dx + dy * dy + dz * dz + 1;
        let stretch = d2 - 96;
        let k = stretch * 128 / d2;
        let va = a.vel;
        let vb = b.vel;
        va.x = va.x - k * dx / 64;
        va.y = va.y - k * dy / 64;
        va.z = va.z - k * dz / 64;
        vb.x = vb.x + k * dx / 64;
        vb.y = vb.y + k * dy / 64;
        vb.z = vb.z + k * dz / 64;
    }}
    void intraf() {{
        let m = this.first;
        while (m != null) {{
            this.bond(m.oxy, m.h1);
            this.bond(m.oxy, m.h2);
            m = m.next;
        }}
    }}

    // Inter-molecular forces: Lennard-Jones between oxygen centres of
    // neighbouring molecules (neighbour list along the chain).
    void interact(Molecule<o> a, Molecule<o> b) {{
        let pa = a.oxy.pos;
        let pb = b.oxy.pos;
        let dx = pa.x - pb.x;
        let dy = pa.y - pb.y;
        let dz = pa.z - pb.z;
        let d2 = dx * dx + dy * dy + dz * dz + 1;
        let inv = 100000000 / d2;
        let inv2 = inv / d2 + 1;
        let r6 = inv2 * inv2 * inv2 % 1000003;
        let r12 = r6 * r6 % 1000003;
        let shifted = (r12 - r6) / 4096;
        let damped = shifted * 31 / 32 + shifted / 64;
        let f = damped + inv / 512;
        let fx = f * dx / d2;
        let fy = f * dy / d2;
        let fz = f * dz / d2;
        let va = a.oxy.vel;
        let vb = b.oxy.vel;
        va.x = va.x + fx / 16;
        va.y = va.y + fy / 16;
        va.z = va.z + fz / 16;
        vb.x = vb.x - fx / 16;
        vb.y = vb.y - fy / 16;
        vb.z = vb.z - fz / 16;
    }}
    void interf() {{
        let m = this.first;
        while (m != null) {{
            let nb = m.next;
            if (nb != null) {{
                m.cache = nb;
                nb.cache = m;
                this.interact(m, nb);
                let nb2 = nb.next;
                if (nb2 != null) {{
                    this.interact(m, nb2);
                }}
            }}
            m = m.next;
        }}
    }}

    // Corrector: damp velocities (the paper's higher-order corrector,
    // folded into one damping pass in fixed point).
    void correctAtom(Atom<o> a) {{
        let v = a.vel;
        v.x = v.x * 15 / 16;
        v.y = v.y * 15 / 16;
        v.z = v.z * 15 / 16;
    }}
    void correct() {{
        let m = this.first;
        while (m != null) {{
            // The corrector double-buffers the oxygen velocity.
            m.oxy.oldVel = m.oxy.vel;
            this.correctAtom(m.h1);
            this.correctAtom(m.oxy);
            this.correctAtom(m.h2);
            m = m.next;
        }}
    }}

    // Periodic boundary conditions on the oxygen centre.
    void boundary() {{
        let box = this.boxSize;
        let m = this.first;
        while (m != null) {{
            let p = m.oxy.pos;
            if (p.x > box) {{ p.x = p.x - box; }}
            if (p.x < 0) {{ p.x = p.x + box; }}
            if (p.y > box) {{ p.y = p.y - box; }}
            if (p.y < 0) {{ p.y = p.y + box; }}
            if (p.z > box) {{ p.z = p.z - box; }}
            if (p.z < 0) {{ p.z = p.z + box; }}
            m = m.next;
        }}
    }}

    void step() {{
        this.predict();
        this.intraf();
        this.interf();
        this.correct();
        this.boundary();
    }}

    int kineticEnergy() {{
        let e = 0;
        let m = this.first;
        while (m != null) {{
            let v = m.oxy.vel;
            e = e + v.x * v.x + v.y * v.y + v.z * v.z;
            let vh = m.h1.vel;
            e = e + (vh.x * vh.x + vh.y * vh.y + vh.z * vh.z) / 16;
            let vh2 = m.h2.vel;
            e = e + (vh2.x * vh2.x + vh2.y * vh2.y + vh2.z * vh2.z) / 16;
            m = m.next;
        }}
        return e;
    }}
}}
class Builder<Owner o> {{
    Atom<o> atom(int x, int y, int z) {{
        let a = new Atom<o>;
        let p = new Vec3<o>;
        p.x = x;
        p.y = y;
        p.z = z;
        a.pos = p;
        a.vel = new Vec3<o>;
        return a;
    }}
    Molecule<o> molecule(int seed) {{
        let m = new Molecule<o>;
        let x = seed * 37 % 100;
        let y = seed * 73 % 100;
        let z = seed * 19 % 100;
        m.oxy = this.atom(x, y, z);
        m.h1 = this.atom(x + 6, y + 4, z);
        m.h2 = this.atom(x - 6, y + 4, z);
        return m;
    }}
}}
{{
    (RHandle<r> h) {{
        let sim = new Sim<r>;
        sim.boxSize = 128;
        let maker = new Builder<r>;
        let i = 0;
        let Molecule<r> chain = null;
        while (i < {n}) {{
            let m = maker.molecule(i);
            m.next = chain;
            chain = m;
            i = i + 1;
        }}
        sim.first = chain;
        let s = 0;
        while (s < {steps}) {{
            sim.step();
            s = s + 1;
        }}
        print(sim.kineticEnergy());
    }}
}}
"#
    )
}

/// The `Barnes` scientific benchmark: builds a space-partitioning tree and
/// computes per-body forces by walking it — the most arithmetic per
/// reference of the group.
pub fn barnes(scale: Scale) -> String {
    let (depth, bodies, steps) = match scale {
        Scale::Smoke => (2, 8, 2),
        Scale::Paper => (4, 128, 12),
    };
    format!(
        r#"// Barnes: Barnes-Hut N-body simulation (Figure 12, row 4).
// Every step rebuilds the quad-tree, recomputes centres of mass bottom-up,
// computes per-body forces with the opening criterion, and advances bodies.
class Pos<Owner o> {{ int x; int y; }}
class QTree<Owner o> {{
    QTree<o> nw; QTree<o> ne; QTree<o> sw; QTree<o> se;
    Body<o> members;
    int mass;
    int cx; int cy;
    int size;
}}
class Body<Owner o> {{
    Pos<o> pos;
    Pos<o> old;
    QTree<o> cell;
    Body<o> sib; // sibling in the same leaf cell
    int mass;
    int vx; int vy;
    Body<o> next;
}}
class Nbody<Owner o> {{
    QTree<o> root;
    Body<o> bodies;
    int theta2; // squared opening threshold

    // Rebuild the spatial tree (fresh nodes each step, as Barnes-Hut
    // implementations do; the old tree dies with the enclosing region).
    QTree<o> build(int depth, int cx, int cy, int size) {{
        let n = new QTree<o>;
        n.cx = cx;
        n.cy = cy;
        n.size = size;
        n.mass = 0;
        if (depth > 0) {{
            let half = size / 2;
            n.nw = this.build(depth - 1, cx - half, cy - half, half);
            n.ne = this.build(depth - 1, cx + half, cy - half, half);
            n.sw = this.build(depth - 1, cx - half, cy + half, half);
            n.se = this.build(depth - 1, cx + half, cy + half, half);
        }}
        return n;
    }}

    QTree<o> quadrantFor(QTree<o> node, int x, int y) {{
        if (x < node.cx) {{
            if (y < node.cy) {{ return node.nw; }}
            return node.sw;
        }}
        if (y < node.cy) {{ return node.ne; }}
        return node.se;
    }}

    // Insert each body: walk to its leaf, adding mass on the way, and
    // remember the leaf in the body (a reference store per level).
    void insert(Body<o> b) {{
        let node = this.root;
        let p = b.pos;
        let QTree<o> leaf = null;
        while (node != null) {{
            node.mass = node.mass + b.mass;
            b.cell = node;
            leaf = node;
            node = this.quadrantFor(node, p.x, p.y);
        }}
        if (leaf != null) {{
            b.sib = leaf.members;
            leaf.members = b;
        }}
    }}

    // Centre-of-mass pass: weighted average of children, bottom-up.
    void summarize(QTree<o> node) {{
        if (node == null) {{ return; }}
        if (node.nw == null) {{ return; }}
        this.summarize(node.nw);
        this.summarize(node.ne);
        this.summarize(node.sw);
        this.summarize(node.se);
        let total = node.nw.mass + node.ne.mass + node.sw.mass + node.se.mass;
        if (total > 0) {{
            let wx = node.nw.cx * node.nw.mass + node.ne.cx * node.ne.mass
                   + node.sw.cx * node.sw.mass + node.se.cx * node.se.mass;
            let wy = node.nw.cy * node.nw.mass + node.ne.cy * node.ne.mass
                   + node.sw.cy * node.sw.mass + node.se.cy * node.se.mass;
            node.cx = wx / total;
            node.cy = wy / total;
        }}
    }}

    void force(Body<o> body, QTree<o> node) {{
        if (node == null) {{ return; }}
        if (node.mass == 0) {{ return; }}
        let p = body.pos;
        let dx = node.cx - p.x;
        let dy = node.cy - p.y;
        let d2 = dx * dx + dy * dy + 1;
        // Opening criterion: s^2 / d^2 < theta^2 uses the summary;
        // otherwise recurse into the children.
        if (node.nw == null || node.size * node.size < d2 * this.theta2 / 64) {{
            let inv = 100000000 / d2;
            let f = node.mass * inv / 1024;
            body.vx = body.vx + f * dx / d2 / 64;
            body.vy = body.vy + f * dy / d2 / 64;
            return;
        }}
        this.force(body, node.nw);
        this.force(body, node.ne);
        this.force(body, node.sw);
        this.force(body, node.se);
    }}

    void advance(Body<o> b) {{
        b.old = b.pos;
        let p = b.pos;
        p.x = p.x + b.vx / 16;
        p.y = p.y + b.vy / 16;
        if (p.x > 128) {{ p.x = 128; }}
        if (p.x < -128) {{ p.x = -128; }}
        if (p.y > 128) {{ p.y = 128; }}
        if (p.y < -128) {{ p.y = -128; }}
    }}

    void step(int depth) {{
        this.root = this.build(depth, 0, 0, 128);
        let b = this.bodies;
        while (b != null) {{
            this.insert(b);
            b = b.next;
        }}
        this.summarize(this.root);
        b = this.bodies;
        while (b != null) {{
            this.force(b, this.root);
            this.advance(b);
            b = b.next;
        }}
    }}

    int energy() {{
        let e = 0;
        let q = this.bodies;
        while (q != null) {{
            e = e + q.vx * q.vx + q.vy * q.vy;
            q = q.next;
        }}
        return e;
    }}
}}
{{
    (RHandle<r> h) {{
        let sim = new Nbody<r>;
        sim.theta2 = 16;
        let i = 0;
        let Body<r> chain = null;
        while (i < {bodies}) {{
            let b = new Body<r>;
            let p = new Pos<r>;
            p.x = i * 29 % 121 - 60;
            p.y = i * 53 % 121 - 60;
            b.pos = p;
            b.mass = 1 + i % 3;
            b.next = chain;
            chain = b;
            i = i + 1;
        }}
        sim.bodies = chain;
        let s = 0;
        while (s < {steps}) {{
            sim.step({depth});
            s = s + 1;
        }}
        print(sim.energy());
    }}
}}
"#
    )
}

/// Which part of the image-recognition pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageStage {
    /// All six stages in sequence.
    All,
    /// Build the pixel chain (allocations + pointer stores).
    Load,
    /// Cross-correlation over a sliding window.
    Cross,
    /// Per-pixel thresholding.
    Threshold,
    /// Two-level hysteresis thresholding.
    Hysteresis,
    /// Morphological thinning.
    Thinning,
    /// Copy out to the output chain.
    Save,
}

/// The `ImageRec` pipeline or one of its stages.
pub fn imagerec(scale: Scale, stage: ImageStage) -> String {
    let pixels = match scale {
        Scale::Smoke => 64,
        Scale::Paper => 4096,
    };
    // Each stage loops several times so the stage itself (not building
    // the input image) dominates the measurement, mirroring the paper's
    // per-stage timings.
    let passes = match scale {
        Scale::Smoke => 2,
        Scale::Paper => 16,
    };
    let gate = |on: bool, body: &str| if on { body.to_string() } else { String::new() };
    let cross = gate(
        matches!(stage, ImageStage::All | ImageStage::Cross),
        "            pipe.cross();\n",
    );
    let threshold = gate(
        matches!(stage, ImageStage::All | ImageStage::Threshold),
        "            pipe.threshold(128);\n",
    );
    let hysteresis = gate(
        matches!(stage, ImageStage::All | ImageStage::Hysteresis),
        "            pipe.hysteresis(64, 192);\n",
    );
    let thinning = gate(
        matches!(stage, ImageStage::All | ImageStage::Thinning),
        "            pipe.thinning();\n",
    );
    let save = gate(
        matches!(stage, ImageStage::All | ImageStage::Save),
        "            pipe.save();\n",
    );
    format!(
        r#"// ImageRec: image-recognition pipeline (Figure 12, rows 5-11).
class Pixel<Owner o> {{ int v; Pixel<o> next; }}
class Pipeline<Owner o> {{
    Pixel<o> image;
    Pixel<o> output;
    void load(int n) {{
        io(n * 80); // read the raw image from disk
        let i = 0;
        let Pixel<o> chain = null;
        while (i < n) {{
            let p = new Pixel<o>;
            p.v = (i * 31 + i / 7) % 256;
            p.next = chain;
            chain = p;
            i = i + 1;
        }}
        this.image = chain;
    }}
    void cross() {{
        let p = this.image;
        let prev = 0;
        while (p != null) {{
            let nx = p.next;
            let nv = 0;
            if (nx != null) {{ nv = nx.v; }}
            let a = prev * 3 + p.v * 10 + nv * 3;
            let b = a / 16;
            let c = b * b % 257;
            p.v = (b + c) / 2 % 256;
            prev = p.v;
            p = nx;
        }}
    }}
    void threshold(int t) {{
        let p = this.image;
        while (p != null) {{
            let v = p.v;
            let s = v * 2 - t;
            if (s > t) {{ p.v = 255; }} else {{ p.v = 0; }}
            p = p.next;
        }}
    }}
    void hysteresis(int lo, int hi) {{
        let p = this.image;
        let strong = false;
        while (p != null) {{
            let v = p.v;
            if (v >= hi) {{
                p.v = 255;
                strong = true;
            }} else {{
                if (v >= lo && strong) {{ p.v = 255; }} else {{ p.v = 0; strong = false; }}
            }}
            p = p.next;
        }}
    }}
    void thinning() {{
        // Remove interior pixels of runs by unlinking them (pointer
        // rewiring gives this stage its small check overhead).
        let p = this.image;
        while (p != null) {{
            let nx = p.next;
            let keep = true;
            if (nx != null) {{
                let n2 = nx.next;
                if (n2 != null) {{
                    if (p.v > 64 && nx.v > 64 && n2.v > 64) {{ keep = false; }}
                }}
            }}
            if (!keep) {{
                let n2 = nx.next;
                p.next = n2;
            }}
            p = p.next;
        }}
    }}
    void save() {{
        // Copy the image into a fresh output chain, then write it out.
        let p = this.image;
        let Pixel<o> out = null;
        let n = 0;
        while (p != null) {{
            let q = new Pixel<o>;
            q.v = p.v;
            q.next = out;
            out = q;
            p = p.next;
            n = n + 1;
        }}
        this.output = out;
        io(n * 180); // write the result to disk
    }}
}}
{{
    (RHandle<r> h) {{
        let pipe = new Pipeline<r>;
        pipe.load({pixels});
        let pass = 0;
        while (pass < {passes}) {{
{cross}{threshold}{hysteresis}{thinning}{save}            pass = pass + 1;
        }}
        let sum = 0;
        let p = pipe.image;
        while (p != null) {{
            sum = sum + p.v;
            p = p.next;
        }}
        print(sum);
    }}
}}
"#
    )
}

/// The `http` server: connection handling, header parsing, routing, and
/// response generation, with per-request state in an LT subregion.
/// Running time is dominated by (simulated) network I/O.
pub fn http(scale: Scale) -> String {
    let requests = match scale {
        Scale::Smoke => 4,
        Scale::Paper => 64,
    };
    format!(
        r#"// http: web server; running time dominated by network processing.
regionKind ConnectionRegion extends SharedRegion {{
    subregion RequestRegion : LT(16384) NoRT req;
}}
regionKind RequestRegion extends SharedRegion {{
    Response<this> resp;
}}

class Header<Owner o> {{ int key; int value; Header<o> next; }}
class Request<Owner o> {{
    int method;        // 0 = GET, 1 = POST, 2 = HEAD
    int path;          // interned path id
    int version;
    Header<o> headers;
    int bodyLength;
}}
class Response<Owner o> {{
    int status;
    int length;
    Header<o> headers;
}}
class Route<Owner o> {{
    int path;
    int handler;
    Route<o> next;
}}
class Router<Owner o> {{
    Route<o> routes;
    void install(int path, int handler) {{
        let r = new Route<o>;
        r.path = path;
        r.handler = handler;
        r.next = this.routes;
        this.routes = r;
    }}
    int dispatch(int path) {{
        let r = this.routes;
        while (r != null) {{
            if (r.path == path) {{ return r.handler; }}
            r = r.next;
        }}
        return -1;
    }}
}}
class Stats<Owner o> {{
    int served;
    int errors;
    int bytes;
    void record(int status, int length) {{
        if (status == 200) {{ this.served = this.served + 1; }} else {{ this.errors = this.errors + 1; }}
        this.bytes = this.bytes + length;
    }}
}}
class Handler<ConnectionRegion conn> {{
    // Parses one request into the request region and builds the response.
    Request<rq> parse<Region rq>(RHandle<rq> h, int seq) accesses rq {{
        let req = new Request<rq>;
        req.method = seq % 3;
        req.path = seq % 7;
        req.version = 11;
        let i = 0;
        let Header<rq> hs = null;
        while (i < 8) {{
            let hd = new Header<rq>;
            hd.key = i;
            hd.value = seq * 7 + i;
            hd.next = hs;
            hs = hd;
            i = i + 1;
        }}
        req.headers = hs;
        let len = 0;
        let w = hs;
        while (w != null) {{
            len = len + w.value;
            w = w.next;
        }}
        req.bodyLength = len % 512;
        return req;
    }}
    Response<rq> respond<Region rq>(RHandle<rq> h, Request<rq> req, int handler)
        accesses rq {{
        let r = new Response<rq>;
        if (handler < 0) {{
            r.status = 404;
            r.length = 64;
            return r;
        }}
        if (req.method == 1) {{
            r.status = 201;
        }} else {{
            r.status = 200;
        }}
        let i = 0;
        let Header<rq> hs = null;
        while (i < 4) {{
            let hd = new Header<rq>;
            hd.key = 100 + i;
            hd.value = req.bodyLength + i;
            hd.next = hs;
            hs = hd;
            i = i + 1;
        }}
        r.headers = hs;
        r.length = 512 + req.bodyLength;
        return r;
    }}
}}
{{
    // The router and statistics live in immortal memory: they outlive
    // every connection.
    let router = new Router<immortal>;
    router.install(0, 10);
    router.install(1, 11);
    router.install(2, 12);
    router.install(3, 13);
    router.install(4, 14);
    let stats = new Stats<immortal>;
    (RHandle<ConnectionRegion : VT conn> h) {{
        let handler = new Handler<conn>;
        let n = 0;
        while (n < {requests}) {{
            io(9000); // accept + read the request from the network
            (RHandle<RequestRegion rq> hq = h.req) {{
                let req = handler.parse<rq>(hq, n);
                let which = router.dispatch(req.path);
                let resp = handler.respond<rq>(hq, req, which);
                hq.resp = resp;
                io(6000); // write the response to the network
                stats.record(resp.status, resp.length);
                hq.resp = null;
            }} // request region flushed: per-request state is gone
            n = n + 1;
        }}
        print(stats.served);
        print(stats.errors);
    }}
}}
"#
    )
}

/// The `game` server: per-tick world simulation (players, projectiles,
/// collisions) between network sends; I/O dominated.
pub fn game(scale: Scale) -> String {
    let ticks = match scale {
        Scale::Smoke => 4,
        Scale::Paper => 64,
    };
    format!(
        r#"// game: game server; per-tick updates to a small world state.
class Player<Owner o> {{
    int x; int y;
    int vx; int vy;
    int score; int hp;
    Player<o> next;
}}
class Projectile<Owner o> {{
    int x; int y;
    int dx; int dy;
    int ttl;
    Projectile<o> next;
}}
class World<Owner o> {{
    Player<o> players;
    Projectile<o> projectiles;
    int tickCount;

    void spawnPlayer(int seed) {{
        let p = new Player<o>;
        p.x = seed * 5 % 64;
        p.y = seed * 9 % 64;
        p.hp = 100;
        p.next = this.players;
        this.players = p;
    }}

    void fire(Player<o> from) {{
        let pr = new Projectile<o>;
        pr.x = from.x;
        pr.y = from.y;
        pr.dx = (from.score % 3) - 1;
        pr.dy = (from.x % 3) - 1;
        pr.ttl = 16;
        pr.next = this.projectiles;
        this.projectiles = pr;
    }}

    void movePlayers() {{
        let p = this.players;
        while (p != null) {{
            p.vx = p.vx + (p.score % 3) - 1;
            p.vy = p.vy + (p.x % 3) - 1;
            p.x = (p.x + p.vx) % 64;
            p.y = (p.y + p.vy) % 64;
            if (p.x < 0) {{ p.x = p.x + 64; }}
            if (p.y < 0) {{ p.y = p.y + 64; }}
            p.score = p.score + 1;
            p = p.next;
        }}
    }}

    void moveProjectiles() {{
        let pr = this.projectiles;
        while (pr != null) {{
            pr.x = pr.x + pr.dx;
            pr.y = pr.y + pr.dy;
            pr.ttl = pr.ttl - 1;
            pr = pr.next;
        }}
    }}

    void collide() {{
        let pr = this.projectiles;
        while (pr != null) {{
            if (pr.ttl > 0) {{
                let p = this.players;
                while (p != null) {{
                    let dx = p.x - pr.x;
                    let dy = p.y - pr.y;
                    if (dx * dx + dy * dy < 4) {{
                        p.hp = p.hp - 10;
                        pr.ttl = 0;
                    }}
                    p = p.next;
                }}
            }}
            pr = pr.next;
        }}
    }}

    void tick() {{
        this.movePlayers();
        this.moveProjectiles();
        this.collide();
        let p = this.players;
        while (p != null) {{
            if (p.score % 8 == 0) {{ this.fire(p); }}
            p = p.next;
        }}
        this.tickCount = this.tickCount + 1;
    }}

    int totalScore() {{
        let total = 0;
        let p = this.players;
        while (p != null) {{
            total = total + p.score;
            p = p.next;
        }}
        return total;
    }}
}}
{{
    (RHandle<r> h) {{
        let w = new World<r>;
        let i = 0;
        while (i < 8) {{
            w.spawnPlayer(i);
            i = i + 1;
        }}
        let t = 0;
        while (t < {ticks}) {{
            io(5000); // receive player inputs
            w.tick();
            io(3000); // broadcast the new state
            t = t + 1;
        }}
        print(w.totalScore());
    }}
}}
"#
    )
}

/// The `phone` server: a database-backed information server — bucketed
/// directory in immortal memory, per-query session objects in a local
/// region; I/O dominated.
pub fn phone(scale: Scale) -> String {
    let (queries, db_size) = match scale {
        Scale::Smoke => (4, 16),
        Scale::Paper => (64, 64),
    };
    format!(
        r#"// phone: database-backed information server.
class Entry<Owner o> {{
    int name;
    int number;
    int district;
    Entry<o> next;
}}
class Bucket<Owner o> {{
    Entry<o> entries;
    int count;
    void insert(Entry<o> e) {{
        e.next = this.entries;
        this.entries = e;
        this.count = this.count + 1;
    }}
    int lookup(int name) {{
        let e = this.entries;
        while (e != null) {{
            if (e.name == name) {{ return e.number; }}
            e = e.next;
        }}
        return -1;
    }}
}}
class Directory<Owner o> {{
    Bucket<o> b0; Bucket<o> b1; Bucket<o> b2; Bucket<o> b3;
    void init() {{
        this.b0 = new Bucket<o>;
        this.b1 = new Bucket<o>;
        this.b2 = new Bucket<o>;
        this.b3 = new Bucket<o>;
    }}
    Bucket<o> bucketFor(int name) {{
        let k = name % 4;
        if (k == 0) {{ return this.b0; }}
        if (k == 1) {{ return this.b1; }}
        if (k == 2) {{ return this.b2; }}
        return this.b3;
    }}
    void add(int name, int number, int district) {{
        let e = new Entry<o>;
        e.name = name;
        e.number = number;
        e.district = district;
        this.bucketFor(name).insert(e);
    }}
    int lookup(int name) {{
        return this.bucketFor(name).lookup(name);
    }}
}}
class Session<Owner o> {{
    int query;
    int answer;
    int billingUnits;
}}
{{
    // The database lives in immortal memory; it outlives every request.
    let db = new Directory<immortal>;
    db.init();
    let i = 0;
    while (i < {db_size}) {{
        db.add(i * 17 % {db_size}, 555000 + i, i % 9);
        i = i + 1;
    }}
    let answered = 0;
    let billed = 0;
    let q = 0;
    while (q < {queries}) {{
        io(7000); // receive a query from the network
        (RHandle<call> hc) {{
            let s = new Session<call>;
            s.query = q % {db_size};
            s.answer = db.lookup(s.query);
            if (s.answer > 0) {{
                s.billingUnits = 1 + s.query % 3;
                answered = answered + 1;
                billed = billed + s.billingUnits;
            }}
            io(3000); // send the answer
        }} // per-call region deleted
        q = q + 1;
    }}
    print(answered);
    print(billed);
}}
"#
    )
}

/// The server programs that have single-request variants for the
/// multi-tenant serving path (`rtjc serve` / `rtjc load`).
pub const SERVER_PROGRAMS: [&str; 3] = ["http", "game", "phone"];

/// A single-request variant of one of the [`SERVER_PROGRAMS`]: the same
/// classes and region discipline as the batch benchmark, but the main
/// block handles exactly **one** request (one connection / one tick / one
/// query), with `seq` baked in as the request payload.
///
/// These are the tenants of the multi-tenant server: each serving session
/// compiles a variant once (per distinct `seq`) and executes it on its
/// own session-local runtime, so a session is precisely "one request
/// through the paper's server workload". Returns `None` for names outside
/// [`SERVER_PROGRAMS`].
pub fn request_program(name: &str, seq: u32) -> Option<String> {
    match name {
        "http" => Some(http_request(seq)),
        "game" => Some(game_request(seq)),
        "phone" => Some(phone_request(seq)),
        _ => None,
    }
}

/// The first `variants` single-request programs (`seq = 0..variants`) of
/// a server benchmark, for round-robin request mixes. `None` for unknown
/// names.
pub fn request_variants(name: &str, variants: u32) -> Option<Vec<String>> {
    (0..variants.max(1))
        .map(|seq| request_program(name, seq))
        .collect()
}

/// `http`, request-shaped: route table in immortal memory, one request
/// parsed/dispatched/answered in an LT request subregion, then flushed.
fn http_request(seq: u32) -> String {
    let seq = seq % 64;
    format!(
        r#"// http (single request {seq}): one connection, one request-region cycle.
regionKind ConnectionRegion extends SharedRegion {{
    subregion RequestRegion : LT(16384) NoRT req;
}}
regionKind RequestRegion extends SharedRegion {{
    Response<this> resp;
}}

class Header<Owner o> {{ int key; int value; Header<o> next; }}
class Request<Owner o> {{
    int method;
    int path;
    int version;
    Header<o> headers;
    int bodyLength;
}}
class Response<Owner o> {{
    int status;
    int length;
    Header<o> headers;
}}
class Route<Owner o> {{
    int path;
    int handler;
    Route<o> next;
}}
class Router<Owner o> {{
    Route<o> routes;
    void install(int path, int handler) {{
        let r = new Route<o>;
        r.path = path;
        r.handler = handler;
        r.next = this.routes;
        this.routes = r;
    }}
    int dispatch(int path) {{
        let r = this.routes;
        while (r != null) {{
            if (r.path == path) {{ return r.handler; }}
            r = r.next;
        }}
        return -1;
    }}
}}
class Handler<ConnectionRegion conn> {{
    Request<rq> parse<Region rq>(RHandle<rq> h, int seq) accesses rq {{
        let req = new Request<rq>;
        req.method = seq % 3;
        req.path = seq % 7;
        req.version = 11;
        let i = 0;
        let Header<rq> hs = null;
        while (i < 8) {{
            let hd = new Header<rq>;
            hd.key = i;
            hd.value = seq * 7 + i;
            hd.next = hs;
            hs = hd;
            i = i + 1;
        }}
        req.headers = hs;
        let len = 0;
        let w = hs;
        while (w != null) {{
            len = len + w.value;
            w = w.next;
        }}
        req.bodyLength = len % 512;
        return req;
    }}
    Response<rq> respond<Region rq>(RHandle<rq> h, Request<rq> req, int handler)
        accesses rq {{
        let r = new Response<rq>;
        if (handler < 0) {{
            r.status = 404;
            r.length = 64;
            return r;
        }}
        if (req.method == 1) {{
            r.status = 201;
        }} else {{
            r.status = 200;
        }}
        let i = 0;
        let Header<rq> hs = null;
        while (i < 4) {{
            let hd = new Header<rq>;
            hd.key = 100 + i;
            hd.value = req.bodyLength + i;
            hd.next = hs;
            hs = hd;
            i = i + 1;
        }}
        r.headers = hs;
        r.length = 512 + req.bodyLength;
        return r;
    }}
}}
{{
    let router = new Router<immortal>;
    router.install(0, 10);
    router.install(1, 11);
    router.install(2, 12);
    router.install(3, 13);
    router.install(4, 14);
    (RHandle<ConnectionRegion : VT conn> h) {{
        let handler = new Handler<conn>;
        io(9000); // accept + read the request from the network
        (RHandle<RequestRegion rq> hq = h.req) {{
            let req = handler.parse<rq>(hq, {seq});
            let which = router.dispatch(req.path);
            let resp = handler.respond<rq>(hq, req, which);
            hq.resp = resp;
            io(6000); // write the response to the network
            print(resp.status);
            hq.resp = null;
        }} // request region flushed: per-request state is gone
    }}
}}
"#
    )
}

/// `game`, request-shaped: one tick of the world simulation — receive
/// inputs, update players/projectiles/collisions, broadcast.
fn game_request(seq: u32) -> String {
    let seq = seq % 64;
    format!(
        r#"// game (single tick {seq}): one simulation step of the world.
class Player<Owner o> {{
    int x; int y;
    int vx; int vy;
    int score; int hp;
    Player<o> next;
}}
class Projectile<Owner o> {{
    int x; int y;
    int dx; int dy;
    int ttl;
    Projectile<o> next;
}}
class World<Owner o> {{
    Player<o> players;
    Projectile<o> projectiles;
    int tickCount;

    void spawnPlayer(int seed) {{
        let p = new Player<o>;
        p.x = seed * 5 % 64;
        p.y = seed * 9 % 64;
        p.score = seed % 7;
        p.hp = 100;
        p.next = this.players;
        this.players = p;
    }}

    void fire(Player<o> from) {{
        let pr = new Projectile<o>;
        pr.x = from.x;
        pr.y = from.y;
        pr.dx = (from.score % 3) - 1;
        pr.dy = (from.x % 3) - 1;
        pr.ttl = 16;
        pr.next = this.projectiles;
        this.projectiles = pr;
    }}

    void movePlayers() {{
        let p = this.players;
        while (p != null) {{
            p.vx = p.vx + (p.score % 3) - 1;
            p.vy = p.vy + (p.x % 3) - 1;
            p.x = (p.x + p.vx) % 64;
            p.y = (p.y + p.vy) % 64;
            if (p.x < 0) {{ p.x = p.x + 64; }}
            if (p.y < 0) {{ p.y = p.y + 64; }}
            p.score = p.score + 1;
            p = p.next;
        }}
    }}

    void moveProjectiles() {{
        let pr = this.projectiles;
        while (pr != null) {{
            pr.x = pr.x + pr.dx;
            pr.y = pr.y + pr.dy;
            pr.ttl = pr.ttl - 1;
            pr = pr.next;
        }}
    }}

    void collide() {{
        let pr = this.projectiles;
        while (pr != null) {{
            if (pr.ttl > 0) {{
                let p = this.players;
                while (p != null) {{
                    let dx = p.x - pr.x;
                    let dy = p.y - pr.y;
                    if (dx * dx + dy * dy < 4) {{
                        p.hp = p.hp - 10;
                        pr.ttl = 0;
                    }}
                    p = p.next;
                }}
            }}
            pr = pr.next;
        }}
    }}

    void tick() {{
        this.movePlayers();
        this.moveProjectiles();
        this.collide();
        let p = this.players;
        while (p != null) {{
            if (p.score % 8 == 0) {{ this.fire(p); }}
            p = p.next;
        }}
        this.tickCount = this.tickCount + 1;
    }}

    int totalScore() {{
        let total = 0;
        let p = this.players;
        while (p != null) {{
            total = total + p.score;
            p = p.next;
        }}
        return total;
    }}
}}
{{
    (RHandle<r> h) {{
        let w = new World<r>;
        let i = 0;
        while (i < 8) {{
            w.spawnPlayer(i + {seq});
            i = i + 1;
        }}
        io(5000); // receive player inputs
        w.tick();
        io(3000); // broadcast the new state
        print(w.totalScore());
    }}
}}
"#
    )
}

/// `phone`, request-shaped: directory in immortal memory, one query
/// answered in a per-call region that dies with the call.
fn phone_request(seq: u32) -> String {
    let db_size = 16;
    let seq = seq % db_size;
    format!(
        r#"// phone (single query {seq}): one lookup against the immortal directory.
class Entry<Owner o> {{
    int name;
    int number;
    int district;
    Entry<o> next;
}}
class Bucket<Owner o> {{
    Entry<o> entries;
    int count;
    void insert(Entry<o> e) {{
        e.next = this.entries;
        this.entries = e;
        this.count = this.count + 1;
    }}
    int lookup(int name) {{
        let e = this.entries;
        while (e != null) {{
            if (e.name == name) {{ return e.number; }}
            e = e.next;
        }}
        return -1;
    }}
}}
class Directory<Owner o> {{
    Bucket<o> b0; Bucket<o> b1; Bucket<o> b2; Bucket<o> b3;
    void init() {{
        this.b0 = new Bucket<o>;
        this.b1 = new Bucket<o>;
        this.b2 = new Bucket<o>;
        this.b3 = new Bucket<o>;
    }}
    Bucket<o> bucketFor(int name) {{
        let k = name % 4;
        if (k == 0) {{ return this.b0; }}
        if (k == 1) {{ return this.b1; }}
        if (k == 2) {{ return this.b2; }}
        return this.b3;
    }}
    void add(int name, int number, int district) {{
        let e = new Entry<o>;
        e.name = name;
        e.number = number;
        e.district = district;
        this.bucketFor(name).insert(e);
    }}
    int lookup(int name) {{
        return this.bucketFor(name).lookup(name);
    }}
}}
class Session<Owner o> {{
    int query;
    int answer;
    int billingUnits;
}}
{{
    let db = new Directory<immortal>;
    db.init();
    let i = 0;
    while (i < {db_size}) {{
        db.add(i * 17 % {db_size}, 555000 + i, i % 9);
        i = i + 1;
    }}
    io(7000); // receive a query from the network
    (RHandle<call> hc) {{
        let s = new Session<call>;
        s.query = {seq};
        s.answer = db.lookup(s.query);
        if (s.answer > 0) {{
            s.billingUnits = 1 + s.query % 3;
        }}
        io(3000); // send the answer
        print(s.answer);
    }} // per-call region deleted
}}
"#
    )
}

/// A deterministic checker-throughput corpus: `copies` renamed replicas of
/// an ownership-heavy class family, plus one small main block.
///
/// Each replica contains a `TStack`-style stack with a `this`-owned spine
/// (exercising owner inference, `this`-encapsulation, and method-call
/// substitution) and a three-deep subtype chain (exercising the subtype
/// walk and override checks). Replica `i` gets globally distinct class
/// names, so class-level checking fans out across `copies` independent
/// units — the shape the parallel driver and the judgment caches are
/// benchmarked on at 1x / 8x / 64x.
pub fn scaled_classes(copies: usize) -> String {
    let copies = copies.max(1);
    let mut src = String::with_capacity(copies * 1200 + 256);
    src.push_str("// Scaled checker-throughput corpus (replicated class families).\n");
    for i in 0..copies {
        src.push_str(&format!(
            r#"class Item{i}<Owner o> {{ int v; }}
class Node{i}<Owner no, Owner vo> {{
    Item{i}<vo> value;
    Node{i}<no, vo> next;
    void init(Item{i}<vo> v, Node{i}<no, vo> n) {{
        this.value = v;
        this.next = n;
    }}
}}
class Stack{i}<Owner so, Owner vo> {{
    Node{i}<this, vo> head;
    void push(Item{i}<vo> value) {{
        let Node{i}<this, vo> n = new Node{i}<this, vo>;
        n.init(value, this.head);
        this.head = n;
    }}
    Item{i}<vo> peek() {{
        if (this.head == null) {{ return null; }}
        return this.head.value;
    }}
    int size() {{
        let c = 0;
        let Node{i}<this, vo> n = this.head;
        while (n != null) {{
            c = c + 1;
            n = n.next;
        }}
        return c;
    }}
}}
class Base{i}<Owner o> {{
    int tag;
    int bump(int x) {{
        this.tag = this.tag + x;
        return this.tag;
    }}
}}
class Mid{i}<Owner o> extends Base{i}<o> {{
    Base{i}<o> peer;
    void link(Base{i}<o> p) {{ this.peer = p; }}
    int poke() {{ return this.bump(2); }}
}}
class Leaf{i}<Owner o> extends Mid{i}<o> {{
    int probe() {{
        this.link(this);
        return this.poke() + this.bump(1);
    }}
}}
"#
        ));
    }
    src.push_str(
        r#"{
    (RHandle<outer> ho) {
        (RHandle<inner> hi) {
            let Stack0<inner, outer> s = new Stack0<inner, outer>;
            let it = new Item0<outer>;
            it.v = 1;
            s.push(it);
            let Leaf0<inner> l = new Leaf0<inner>;
            print(l.probe() + s.size());
        }
    }
}
"#,
    );
    src
}

/// An interpreter-throughput workload: `copies` renamed replicas of a
/// call- and field-heavy class family, each churned through a fixed-size
/// arithmetic loop from the main block.
///
/// Where [`scaled_classes`] stresses the *checker* (its main block is
/// trivial), this corpus stresses the *engines*: almost all of its
/// virtual time is spent in method dispatch, local-variable traffic,
/// field reads/writes, and integer arithmetic — the paths where the
/// bytecode VM's flat dispatch and inline caches pay off against the
/// tree-walker. Replica `i` gets globally distinct class names, so
/// call/field sites see distinct layouts and the benchmark also covers
/// cache-fill behaviour, not just steady-state hits.
pub fn scaled_vm_workload(copies: usize) -> String {
    let copies = copies.max(1);
    let mut src = String::with_capacity(copies * 1100 + 512);
    src.push_str("// Scaled interpreter-throughput corpus (replicated call/field churn).\n");
    for i in 0..copies {
        src.push_str(&format!(
            r#"class Gauge{i}<Owner o> {{
    int total;
    int samples;
    void add(int v) {{
        this.total = this.total + v;
        this.samples = this.samples + 1;
    }}
    int mean() {{
        if (this.samples == 0) {{ return 0; }}
        return this.total / this.samples;
    }}
}}
class Mixer{i}<Owner o> {{
    Gauge{i}<o> gauge;
    int mix(int a, int b) {{
        let x = a * 3 + b;
        let y = x / 2 + a % 7;
        return x + y * 2 - b;
    }}
    int churn(int n) {{
        let i = 0;
        let t = 1;
        while (i < n) {{
            t = this.mix(t, i) % 10007 + this.mix(i, t) % 97;
            this.gauge.add(t % 31);
            i = i + 1;
        }}
        return t;
    }}
}}
"#
        ));
    }
    src.push_str("{\n    (RHandle<r> h) {\n        let sum = 0;\n");
    for i in 0..copies {
        src.push_str(&format!(
            "        let m{i} = new Mixer{i}<r>;\n\
             \x20       let g{i} = new Gauge{i}<r>;\n\
             \x20       m{i}.gauge = g{i};\n\
             \x20       sum = sum + m{i}.churn(64) % 1009 + g{i}.mean();\n"
        ));
    }
    src.push_str("        print(sum % 100003);\n    }\n}\n");
    src
}

/// Deliberately ill-typed programs, one per typing-rule family, used to
/// differential-test the serial and parallel checking drivers: both must
/// produce the same diagnostics in the same (span-sorted) order.
///
/// Every program parses; all errors are type errors.
pub fn negatives() -> Vec<(&'static str, String)> {
    vec![
        (
            "dangling-region",
            r#"class P<Owner o, Owner q> { }
{ (RHandle<a> ha) { (RHandle<b> hb) {
    let P<a, b> p = new P<a, b>;
} } }
"#
            .to_owned(),
        ),
        (
            // The field `E<q, p>` needs `p ≽ q`, which fails — but the
            // reverse direction `q ≽ p` holds through the two declared
            // `where` edges (`q ≽ r ≽ p`), so `--explain` surfaces a
            // multi-step derivation chain for the failure.
            "outlives-chain",
            r#"class E<Owner x, Owner y> { }
class D<Owner o, Owner p, Owner q, Owner r> where q outlives r, r outlives p {
    E<q, p> f;
}
{ }
"#
            .to_owned(),
        ),
        (
            "unknown-owner",
            "class C<Owner o> { } { let C<ghost> c = new C<ghost>; }\n".to_owned(),
        ),
        (
            "arity-mismatch",
            "class C<Owner o, Owner p> { } { (RHandle<r> h) { let C<r> c = new C<r>; } }\n"
                .to_owned(),
        ),
        (
            "encapsulation-violation",
            r#"class S<Owner o> { N<this> rep; }
class N<Owner o> { int v; }
{ (RHandle<r> h) { let S<r> s = new S<r>; let x = s.rep; } }
"#
            .to_owned(),
        ),
        (
            "scoped-region-escape",
            r#"class C<Owner o> { }
{
    (RHandle<a> ha) { }
    let C<a> c = new C<a>;
}
"#
            .to_owned(),
        ),
        (
            // Several independently ill-typed classes: errors originate in
            // different class units, so the parallel driver's merge order
            // (span-sorted) is actually exercised.
            "many-bad-classes",
            r#"class A0<Owner o> { Missing0<o> f; }
class A1<Owner o> { Missing1<o> f; }
class A2<Owner o> { Missing2<o> f; }
class A3<Owner o> { Missing3<o> f; }
class A4<Owner o> { Missing4<o> f; }
class A5<Owner o> { Missing5<o> f; }
{ let A0<ghost> a = null; }
"#
            .to_owned(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_variants_parse_and_check() {
        for name in SERVER_PROGRAMS {
            for (seq, src) in request_variants(name, 3)
                .expect("server program")
                .iter()
                .enumerate()
            {
                let program = rtj_lang::parse_program(src)
                    .unwrap_or_else(|e| panic!("{name} request {seq}: parse error: {e}"));
                rtj_types::check_program(&program).unwrap_or_else(|errs| {
                    panic!(
                        "{name} request {seq}: type errors: {}",
                        errs.iter()
                            .map(|e| e.message.clone())
                            .collect::<Vec<_>>()
                            .join("; ")
                    )
                });
            }
        }
        assert!(request_program("unknown", 0).is_none());
    }

    #[test]
    fn scaled_corpus_is_well_typed() {
        let program = rtj_lang::parse_program(&scaled_classes(3)).expect("parses");
        rtj_types::check_program(&program).expect("well-typed");
    }

    #[test]
    fn scaled_vm_workload_is_well_typed() {
        let program = rtj_lang::parse_program(&scaled_vm_workload(3)).expect("parses");
        rtj_types::check_program(&program).expect("well-typed");
    }

    #[test]
    fn negatives_parse_but_do_not_check() {
        for (name, src) in negatives() {
            let program = rtj_lang::parse_program(&src)
                .unwrap_or_else(|e| panic!("{name}: parse error: {e}"));
            assert!(
                rtj_types::check_program(&program).is_err(),
                "{name}: expected type errors"
            );
        }
    }

    #[test]
    fn all_programs_parse_and_check() {
        for bench in all(Scale::Smoke) {
            let program = rtj_lang::parse_program(&bench.source)
                .unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name));
            rtj_types::check_program(&program).unwrap_or_else(|errs| {
                panic!(
                    "{}: type errors: {}",
                    bench.name,
                    errs.iter()
                        .map(|e| e.message.clone())
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            });
        }
    }

    #[test]
    fn paper_scale_parses_too() {
        for bench in all(Scale::Paper) {
            rtj_lang::parse_program(&bench.source)
                .unwrap_or_else(|e| panic!("{}: parse error: {e}", bench.name));
        }
    }

    #[test]
    fn fourteen_programs() {
        assert_eq!(all(Scale::Smoke).len(), 14);
        // Paper order: the eight Figure 11 programs first appear as
        // Array, Tree, Water, Barnes, ImageRec, …, http, game, phone.
        let names: Vec<&str> = all(Scale::Smoke).iter().map(|b| b.name).collect();
        assert_eq!(names[0], "Array");
        assert_eq!(names[13], "phone");
    }
}
