//! Experiment harnesses regenerating the paper's evaluation tables.
//!
//! * [`fig11`] — programming overhead: per-program lines of code and
//!   annotated lines (paper Figure 11);
//! * [`fig12`] — dynamic checking overhead: execution time with the RTSJ
//!   dynamic checks vs with them statically elided, and the ratio (paper
//!   Figure 12).
//!
//! Paper-reported values are included in each row so reports can show
//! paper-vs-measured side by side.

use crate::metrics::annotation_report;
use crate::programs::{all, BenchProgram, Category, Scale};
use rtj_interp::{build, run_checked, Engine, RunConfig, RunOutcome};
use rtj_runtime::{CheckMode, Json, MetricsSnapshot};

/// Schema identifier for [`fig11_json`] documents.
pub const FIG11_SCHEMA: &str = "rtj-fig11/v1";

/// Schema identifier for [`fig12_json`] documents.
pub const FIG12_SCHEMA: &str = "rtj-fig12/v1";

/// Schema identifier for [`bench_json`] documents.
pub const BENCH_SCHEMA: &str = "rtj-bench/v1";

/// One row of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Program name.
    pub name: &'static str,
    /// Our lines of code.
    pub loc: usize,
    /// Our annotated ("changed") lines.
    pub annotated: usize,
    /// The paper's lines of code (for reference).
    pub paper_loc: Option<u32>,
    /// The paper's changed lines (for reference).
    pub paper_changed: Option<u32>,
}

/// Paper Figure 11 values: (program, lines of code, lines changed).
pub const PAPER_FIG11: [(&str, u32, u32); 8] = [
    ("Array", 56, 4),
    ("Tree", 83, 8),
    ("Water", 1850, 31),
    ("Barnes", 1850, 16),
    ("ImageRec", 567, 8),
    ("http", 603, 20),
    ("game", 97, 10),
    ("phone", 244, 24),
];

/// Paper Figure 12 overhead ratios (execution time with dynamic checks /
/// without).
pub const PAPER_FIG12: [(&str, f64); 11] = [
    ("Array", 7.23),
    ("Tree", 4.83),
    ("Water", 1.24),
    ("Barnes", 1.13),
    ("ImageRec", 1.21),
    ("load", 1.25),
    ("cross", 1.0),
    ("threshold", 1.0),
    ("hysteresis", 1.0),
    ("thinning", 1.1),
    ("save", 1.18),
];

/// The paper's ratio for a program, if reported.
pub fn paper_ratio(name: &str) -> Option<f64> {
    PAPER_FIG12
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, r)| *r)
}

/// Computes Figure 11 (annotation overhead) over the eight Figure 11
/// programs.
pub fn fig11() -> Vec<Fig11Row> {
    all(Scale::Paper)
        .into_iter()
        .filter(|b| !matches!(b.category, Category::ImageStage))
        .map(|b| {
            let rep = annotation_report(&b.source);
            let paper = PAPER_FIG11.iter().find(|(n, _, _)| *n == b.name);
            Fig11Row {
                name: b.name,
                loc: rep.loc,
                annotated: rep.annotated,
                paper_loc: paper.map(|(_, l, _)| *l),
                paper_changed: paper.map(|(_, _, c)| *c),
            }
        })
        .collect()
}

/// One row of Figure 12.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Program name.
    pub name: &'static str,
    /// Reporting category.
    pub category: Category,
    /// Virtual cycles with the type system (checks elided).
    pub static_cycles: u64,
    /// Virtual cycles in RTSJ mode (dynamic checks).
    pub dynamic_cycles: u64,
    /// `dynamic_cycles / static_cycles` — the paper's "Overhead" column.
    pub overhead: f64,
    /// Wall-clock overhead ratio for the same pair of runs.
    pub wall_overhead: f64,
    /// Checks performed in the dynamic run (all kinds, from the metrics
    /// registry).
    pub checks: u64,
    /// Checks elided in the static run. The deterministic scheduler
    /// guarantees `elided == checks` — asserted by [`fig12_row`].
    pub elided: u64,
    /// Virtual cycles the dynamic run spent in checks.
    pub check_cycles: u64,
    /// The paper's reported overhead, when available.
    pub paper_overhead: Option<f64>,
    /// Full metrics snapshot of the dynamic run.
    pub dynamic_metrics: MetricsSnapshot,
    /// Full metrics snapshot of the static run.
    pub static_metrics: MetricsSnapshot,
}

/// Runs one benchmark in both modes with the default engine and returns
/// its Figure 12 row.
///
/// # Panics
///
/// Panics if the benchmark fails to build or run — corpus programs are
/// supposed to be well-typed and terminate.
pub fn fig12_row(bench: &BenchProgram) -> Fig12Row {
    fig12_row_on(bench, Engine::default())
}

/// Runs one benchmark in both modes on the given engine and returns its
/// Figure 12 row. The row is engine-independent by construction: both
/// engines produce identical virtual-cycle accounting and metrics
/// snapshots (see `tests/vm_differential.rs`).
///
/// # Panics
///
/// Panics if the benchmark fails to build or run.
pub fn fig12_row_on(bench: &BenchProgram, engine: Engine) -> Fig12Row {
    let checked =
        build(&bench.source).unwrap_or_else(|e| panic!("{}: failed to build: {e}", bench.name));
    let run = |mode: CheckMode| -> RunOutcome {
        let mut cfg = RunConfig::new(mode);
        cfg.engine = engine;
        let out = run_checked(&checked, cfg);
        assert!(
            out.error.is_none(),
            "{} ({mode:?}): runtime error: {:?}",
            bench.name,
            out.error
        );
        out
    };
    let dynamic = run(CheckMode::Dynamic);
    let static_ = run(CheckMode::Static);
    assert_eq!(
        dynamic.trace, static_.trace,
        "{}: check mode changed program output",
        bench.name
    );
    let overhead = dynamic.cycles as f64 / static_.cycles.max(1) as f64;
    let wall_overhead = dynamic.wall.as_secs_f64() / static_.wall.as_secs_f64().max(1e-9);
    let checks = dynamic.metrics.checks_performed();
    let elided = static_.metrics.checks_elided();
    assert_eq!(
        checks, elided,
        "{}: the static run must elide exactly the checks the dynamic run \
         performs (deterministic schedule)",
        bench.name
    );
    Fig12Row {
        name: bench.name,
        category: bench.category,
        static_cycles: static_.cycles,
        dynamic_cycles: dynamic.cycles,
        overhead,
        wall_overhead,
        checks,
        elided,
        check_cycles: dynamic.metrics.check_cycles(),
        paper_overhead: paper_ratio(bench.name),
        dynamic_metrics: dynamic.metrics,
        static_metrics: static_.metrics,
    }
}

/// Computes Figure 12 (dynamic checking overhead) for every benchmark
/// with the default engine.
pub fn fig12(scale: Scale) -> Vec<Fig12Row> {
    fig12_on(scale, Engine::default())
}

/// Computes Figure 12 for every benchmark on the given engine.
pub fn fig12_on(scale: Scale, engine: Engine) -> Vec<Fig12Row> {
    all(scale).iter().map(|b| fig12_row_on(b, engine)).collect()
}

/// One row of an engine-comparison benchmark: the same program run under
/// the tree-walker and the bytecode VM.
#[derive(Debug, Clone)]
pub struct EngineBenchRow {
    /// Workload name.
    pub name: String,
    /// Best-of-N wall time of the tree-walking engine, in nanoseconds.
    pub tree_wall_ns: u64,
    /// Best-of-N wall time of the bytecode VM, in nanoseconds.
    pub vm_wall_ns: u64,
    /// `tree_wall_ns / vm_wall_ns` — how much faster the VM is.
    pub speedup: f64,
    /// Virtual cycles of the run — asserted identical across engines.
    pub cycles: u64,
    /// Dynamic checks performed — asserted identical across engines.
    pub checks: u64,
}

/// Benchmarks one program under both engines, asserting the engines
/// agree on everything the virtual machine model defines (cycles,
/// metrics snapshot, print trace) before comparing wall time. Each
/// engine runs `iters` times; the row records the fastest run.
///
/// # Panics
///
/// Panics if the program fails to build or run, or if the engines
/// diverge on any deterministic observable.
pub fn bench_engines(name: &str, source: &str, mode: CheckMode, iters: u32) -> EngineBenchRow {
    let checked = build(source).unwrap_or_else(|e| panic!("{name}: failed to build: {e}"));
    let iters = iters.max(1);
    let run = |engine: Engine| -> (u64, RunOutcome) {
        let mut best = u64::MAX;
        let mut last = None;
        for _ in 0..iters {
            let mut cfg = RunConfig::new(mode);
            cfg.engine = engine;
            let out = run_checked(&checked, cfg);
            assert!(out.error.is_none(), "{name} ({engine}): {:?}", out.error);
            best = best.min(out.wall.as_nanos() as u64);
            last = Some(out);
        }
        (best, last.expect("at least one iteration"))
    };
    let (tree_wall_ns, tree) = run(Engine::Tree);
    let (vm_wall_ns, vm) = run(Engine::Vm);
    assert_eq!(tree.cycles, vm.cycles, "{name}: engines disagree on cycles");
    assert_eq!(tree.trace, vm.trace, "{name}: engines disagree on output");
    assert_eq!(
        tree.metrics, vm.metrics,
        "{name}: engines disagree on the metrics snapshot"
    );
    EngineBenchRow {
        name: name.to_owned(),
        tree_wall_ns,
        vm_wall_ns,
        speedup: tree_wall_ns as f64 / vm_wall_ns.max(1) as f64,
        cycles: vm.cycles,
        checks: vm.metrics.checks_performed(),
    }
}

/// Geometric mean of the rows' speedups (1.0 for an empty slice).
pub fn geomean_speedup(rows: &[EngineBenchRow]) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = rows.iter().map(|r| r.speedup.max(1e-9).ln()).sum();
    (log_sum / rows.len() as f64).exp()
}

/// Serializes engine-comparison rows as an `rtj-bench/v1` JSON document.
///
/// Unlike the fig11/fig12 documents, this one records *wall-clock*
/// measurements and is therefore machine-dependent; `cycles` and
/// `checks` are included so readers can verify the engines ran the same
/// virtual work.
pub fn bench_json(rows: &[EngineBenchRow], workload: &str, mode: CheckMode) -> String {
    Json::obj(vec![
        ("schema", Json::Str(BENCH_SCHEMA.into())),
        ("workload", Json::Str(workload.into())),
        ("mode", Json::Str(mode.name().into())),
        ("geomean_speedup", Json::Float(geomean_speedup(rows))),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.clone())),
                            ("tree_wall_ns", Json::Int(r.tree_wall_ns as i64)),
                            ("vm_wall_ns", Json::Int(r.vm_wall_ns as i64)),
                            ("speedup", Json::Float(r.speedup)),
                            ("cycles", Json::Int(r.cycles as i64)),
                            ("checks", Json::Int(r.checks as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Renders engine-comparison rows as an aligned text table.
pub fn render_bench(rows: &[EngineBenchRow]) -> String {
    let mut out = String::from(
        "Engine comparison: tree-walker vs bytecode VM (wall clock)\n\
         workload          tree-ns      vm-ns   speedup     cycles   checks\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>10} {:>10} {:>8.2}x {:>10} {:>8}\n",
            r.name, r.tree_wall_ns, r.vm_wall_ns, r.speedup, r.cycles, r.checks,
        ));
    }
    out.push_str(&format!("geomean speedup: {:.2}x\n", geomean_speedup(rows)));
    out
}

/// Ablation: how the Figure 12 overhead of a benchmark scales with the
/// cost of one RTSJ assignment check. Returns `(store_check_cycles,
/// overhead)` pairs; the zero-cost point isolates the *bookkeeping-free*
/// ratio, and the spread shows how strongly each benchmark's overhead is
/// driven by check cost (micro-benchmarks: strongly; servers: not at all).
pub fn check_cost_ablation(bench: &BenchProgram, costs: &[u64]) -> Vec<(u64, f64)> {
    let checked =
        build(&bench.source).unwrap_or_else(|e| panic!("{}: failed to build: {e}", bench.name));
    costs
        .iter()
        .map(|&store_check| {
            let mut cfg = RunConfig::new(CheckMode::Dynamic);
            cfg.cost.store_check = store_check;
            let dynamic = run_checked(&checked, cfg);
            assert!(
                dynamic.error.is_none(),
                "{}: {:?}",
                bench.name,
                dynamic.error
            );
            let mut cfg = RunConfig::new(CheckMode::Static);
            cfg.cost.store_check = store_check;
            let static_ = run_checked(&checked, cfg);
            assert!(static_.error.is_none());
            (
                store_check,
                dynamic.cycles as f64 / static_.cycles.max(1) as f64,
            )
        })
        .collect()
}

/// Peak live memory of a streaming producer/consumer workload under the
/// two memory-management disciplines the paper compares: per-iteration
/// subregion flushing versus accumulating garbage on the collected heap.
/// Returns `(region_peak_bytes, heap_peak_bytes)` — the paper's
/// related-work point that "region-based memory management may enable
/// programmers to obtain a smaller space overhead".
pub fn memory_footprint(iterations: u32) -> (u64, u64) {
    let regioned = format!(
        r#"
        regionKind Buf extends SharedRegion {{
            subregion Frame : LT(8192) NoRT f;
        }}
        regionKind Frame extends SharedRegion {{ }}
        class Px<Owner o> {{ int v; Px<o> next; }}
        {{
            (RHandle<Buf : VT r> h) {{
                let it = 0;
                while (it < {iterations}) {{
                    (RHandle<Frame fr> hf = h.f) {{
                        let i = 0;
                        let Px<fr> chain = null;
                        while (i < 64) {{
                            let p = new Px<fr>;
                            p.v = it * 64 + i;
                            p.next = chain;
                            chain = p;
                            i = i + 1;
                        }}
                    }}
                    it = it + 1;
                }}
                print(it);
            }}
        }}
        "#
    );
    let heaped = format!(
        r#"
        class Px<Owner o> {{ int v; Px<o> next; }}
        {{
            let it = 0;
            while (it < {iterations}) {{
                let i = 0;
                let Px<heap> chain = null;
                while (i < 64) {{
                    let p = new Px<heap>;
                    p.v = it * 64 + i;
                    p.next = chain;
                    chain = p;
                    i = i + 1;
                }}
                it = it + 1;
            }}
            print(it);
        }}
        "#
    );
    let run = |src: &str| {
        let checked = build(src).expect("footprint program builds");
        let out = run_checked(&checked, RunConfig::new(CheckMode::Static));
        assert!(out.error.is_none(), "{:?}", out.error);
        out
    };
    let region_out = run(&regioned);
    let heap_out = run(&heaped);
    // Peak bytes held live at any moment during each run. The region run
    // flushes every frame; the heap run accumulates until a collection
    // would reclaim it (the GC is off here, as in Figure 12 runs, so this
    // is the high-water mark a collector would have to provision for).
    let region_peak = region_out
        .region_peaks
        .iter()
        .filter(|(label, _, _, _)| label.contains(".f ") || label.contains("local"))
        .map(|(_, _, peak, _)| *peak)
        .max()
        .unwrap_or(0);
    let heap_peak = heap_out
        .region_peaks
        .iter()
        .find(|(label, _, _, _)| label == "heap")
        .map(|(_, _, peak, _)| *peak)
        .unwrap_or(0);
    (region_peak, heap_peak)
}

/// Renders Figure 11 as an aligned text table.
pub fn render_fig11(rows: &[Fig11Row]) -> String {
    let mut out = String::from(
        "Figure 11: Programming Overhead (ours vs paper)\n\
         program     LoC   annotated   paper-LoC   paper-changed\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>5} {:>10} {:>11} {:>15}\n",
            r.name,
            r.loc,
            r.annotated,
            r.paper_loc.map_or("-".into(), |v| v.to_string()),
            r.paper_changed.map_or("-".into(), |v| v.to_string()),
        ));
    }
    out
}

/// Renders Figure 12 as an aligned text table.
pub fn render_fig12(rows: &[Fig12Row]) -> String {
    let mut out = String::from(
        "Figure 12: Dynamic Checking Overhead (virtual cycles)\n\
         program     static-cyc   dynamic-cyc   overhead   paper   checks   elided\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>11} {:>13} {:>10.2} {:>7} {:>8} {:>8}\n",
            r.name,
            r.static_cycles,
            r.dynamic_cycles,
            r.overhead,
            r.paper_overhead.map_or("-".into(), |v| format!("{v:.2}")),
            r.checks,
            r.elided,
        ));
    }
    out
}

/// Serializes Figure 11 rows as an `rtj-fig11/v1` JSON document.
pub fn fig11_json(rows: &[Fig11Row]) -> String {
    Json::obj(vec![
        ("schema", Json::Str(FIG11_SCHEMA.into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            ("loc", Json::Int(r.loc as i64)),
                            ("annotated", Json::Int(r.annotated as i64)),
                            (
                                "paper_loc",
                                r.paper_loc.map_or(Json::Null, |v| Json::Int(v as i64)),
                            ),
                            (
                                "paper_changed",
                                r.paper_changed.map_or(Json::Null, |v| Json::Int(v as i64)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Serializes Figure 12 rows as an `rtj-fig12/v1` JSON document.
///
/// Each row embeds the full `rtj-metrics/v1` snapshots of its dynamic
/// and static runs, so `rtjc report` can reconstruct the per-check-kind
/// elision table without re-running anything. Wall-clock ratios are
/// deliberately excluded: the document is byte-deterministic.
pub fn fig12_json(rows: &[Fig12Row]) -> String {
    Json::obj(vec![
        ("schema", Json::Str(FIG12_SCHEMA.into())),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.into())),
                            ("category", Json::Str(r.category.name().into())),
                            ("static_cycles", Json::Int(r.static_cycles as i64)),
                            ("dynamic_cycles", Json::Int(r.dynamic_cycles as i64)),
                            ("overhead", Json::Float(r.overhead)),
                            ("checks", Json::Int(r.checks as i64)),
                            ("elided", Json::Int(r.elided as i64)),
                            ("check_cycles", Json::Int(r.check_cycles as i64)),
                            (
                                "paper_overhead",
                                r.paper_overhead.map_or(Json::Null, Json::Float),
                            ),
                            ("dynamic_metrics", r.dynamic_metrics.to_json()),
                            ("static_metrics", r.static_metrics.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_covers_the_eight_programs() {
        let rows = fig11();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.loc > 0);
            assert!(r.annotated > 0, "{} has no annotations?", r.name);
            assert!(
                r.annotated * 2 < r.loc,
                "{}: annotations should be a small fraction of the code \
                 ({}/{})",
                r.name,
                r.annotated,
                r.loc
            );
        }
    }

    #[test]
    fn fig12_smoke_runs_and_orders_correctly() {
        let rows = fig12(Scale::Smoke);
        assert_eq!(rows.len(), 14);
        for r in &rows {
            assert!(
                r.overhead >= 1.0,
                "{}: dynamic should not be faster than static ({:.3})",
                r.name,
                r.overhead
            );
        }
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().overhead;
        // Shape: micro-benchmarks dominate scientific codes dominate
        // servers (even at smoke scale).
        assert!(
            get("Array") > get("Water"),
            "Array {} vs Water {}",
            get("Array"),
            get("Water")
        );
        assert!(
            get("Tree") > get("Barnes"),
            "Tree {} vs Barnes {}",
            get("Tree"),
            get("Barnes")
        );
        assert!(get("http") < 1.1, "http {}", get("http"));
        assert!(get("game") < 1.1);
        assert!(get("phone") < 1.1);

        // Elision accounting: every performed check in the dynamic run is
        // elided in the static run, and checks cost real cycles.
        for r in &rows {
            assert_eq!(r.checks, r.elided, "{}", r.name);
            assert_eq!(r.static_metrics.checks_performed(), 0, "{}", r.name);
            assert!(
                r.dynamic_cycles - r.check_cycles <= r.static_cycles,
                "{}: cycles besides checks should not exceed static total",
                r.name
            );
        }

        // The JSON document round-trips through the generic parser and
        // carries the embedded metrics snapshots.
        let doc = fig12_json(&rows);
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(FIG12_SCHEMA));
        let json_rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(json_rows.len(), rows.len());
        let dm = json_rows[0].get("dynamic_metrics").unwrap();
        let snap = MetricsSnapshot::from_json(dm).unwrap();
        assert_eq!(snap, rows[0].dynamic_metrics);
    }

    #[test]
    fn check_cost_ablation_is_monotone_for_micro_flat_for_servers() {
        let benches = all(Scale::Smoke);
        let array = benches.iter().find(|b| b.name == "Array").unwrap();
        let http = benches.iter().find(|b| b.name == "http").unwrap();
        let costs = [0u64, 20, 40, 80];
        let array_curve = check_cost_ablation(array, &costs);
        // Strictly increasing in check cost.
        for w in array_curve.windows(2) {
            assert!(w[1].1 > w[0].1, "{array_curve:?}");
        }
        // At zero check cost the overhead collapses to ~1.
        assert!(array_curve[0].1 < 1.05, "{array_curve:?}");
        // Servers barely move across the whole sweep.
        let http_curve = check_cost_ablation(http, &costs);
        let spread = http_curve.last().unwrap().1 - http_curve[0].1;
        assert!(spread < 0.15, "{http_curve:?}");
    }

    #[test]
    fn regions_bound_memory_where_the_heap_grows() {
        let (region_peak, heap_peak) = memory_footprint(32);
        // The flushed subregion holds at most one frame (64 pixels).
        assert!(region_peak > 0);
        assert!(
            heap_peak >= region_peak * 16,
            "heap accumulates across iterations: region {region_peak} vs heap {heap_peak}"
        );
    }

    #[test]
    fn rendering_is_nonempty() {
        let rows = fig11();
        let s = render_fig11(&rows);
        assert!(s.contains("Array"));
    }
}
