//! The paper's benchmark corpus and evaluation harnesses.
//!
//! This crate holds the eight evaluation programs of Section 3 (plus the
//! six ImageRec stages), written in the core language with their primary
//! data structures allocated in regions, and the harnesses that
//! regenerate Figure 11 (programming overhead) and Figure 12 (dynamic
//! checking overhead).
//!
//! # Example
//!
//! ```
//! use rtj_corpus::{fig12_row, programs};
//!
//! let array = &programs::all(programs::Scale::Smoke)[0];
//! let row = fig12_row(array);
//! assert!(row.overhead > 1.0); // checks cost time
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod programs;

pub use experiments::{
    fig11, fig11_json, fig12, fig12_json, fig12_row, paper_ratio, render_fig11, render_fig12,
    Fig11Row, Fig12Row, FIG11_SCHEMA, FIG12_SCHEMA, PAPER_FIG11, PAPER_FIG12,
};
pub use metrics::{annotation_report, AnnotationReport};
pub use programs::{all, negatives, scaled_classes, BenchProgram, Category, ImageStage, Scale};
