//! The paper's benchmark corpus and evaluation harnesses.
//!
//! This crate holds the eight evaluation programs of Section 3 (plus the
//! six ImageRec stages), written in the core language with their primary
//! data structures allocated in regions, and the harnesses that
//! regenerate Figure 11 (programming overhead) and Figure 12 (dynamic
//! checking overhead).
//!
//! # Example
//!
//! ```
//! use rtj_corpus::{fig12_row, programs};
//!
//! let array = &programs::all(programs::Scale::Smoke)[0];
//! let row = fig12_row(array);
//! assert!(row.overhead > 1.0); // checks cost time
//! ```

#![warn(missing_docs)]

pub mod edits;
pub mod experiments;
pub mod metrics;
pub mod programs;

pub use edits::{edit_batches, edits_json, parse_edits, EditBatch, EditScript, EDITS_SCHEMA};
pub use experiments::{
    bench_engines, bench_json, fig11, fig11_json, fig12, fig12_json, fig12_on, fig12_row,
    fig12_row_on, geomean_speedup, paper_ratio, render_bench, render_fig11, render_fig12,
    EngineBenchRow, Fig11Row, Fig12Row, BENCH_SCHEMA, FIG11_SCHEMA, FIG12_SCHEMA, PAPER_FIG11,
    PAPER_FIG12,
};
pub use metrics::{annotation_report, AnnotationReport};
pub use programs::{
    all, negatives, request_program, request_variants, scaled_classes, scaled_vm_workload,
    BenchProgram, Category, ImageStage, Scale, SERVER_PROGRAMS,
};
