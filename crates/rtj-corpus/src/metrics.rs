//! Annotation-overhead metrics (Figure 11).
//!
//! The paper reports, per benchmark, the total lines of code and the
//! number of lines that had to be *changed* relative to plain Java to add
//! region/ownership types. The analogue here: a line counts as annotated
//! when it contains surface syntax that plain Java does not have —
//! region-creation blocks, `regionKind`/`subregion` declarations,
//! `accesses`/`where` clauses, or owner-parameter lists on declarations.
//! Thanks to default completion (Section 2.5), ordinary code lines carry
//! no annotations, so the changed lines concentrate exactly where the
//! paper says they do: "in most cases, we only had to change code where
//! regions were created".

/// Per-program annotation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotationReport {
    /// Non-blank, non-comment lines of code.
    pub loc: usize,
    /// Lines carrying region/ownership annotations.
    pub annotated: usize,
}

/// Computes the annotation report for a source text.
pub fn annotation_report(source: &str) -> AnnotationReport {
    let mut loc = 0;
    let mut annotated = 0;
    for raw in source.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        loc += 1;
        if is_annotated(line) {
            annotated += 1;
        }
    }
    AnnotationReport { loc, annotated }
}

/// Whether a single line contains ownership/region syntax that plain Java
/// would not have.
fn is_annotated(line: &str) -> bool {
    // Region-creation blocks and subregion entry.
    if line.contains("(RHandle<") || line.contains("RHandle<") && line.contains('=') {
        return true;
    }
    // Region-kind declarations and members.
    if line.starts_with("regionKind") || line.starts_with("subregion") {
        return true;
    }
    // Effects and constraint clauses.
    if line.contains(" accesses ") || line.contains(" where ") {
        return true;
    }
    // Owner-parameter lists on class/method declarations.
    if line.starts_with("class ")
        && (line.contains("<Owner")
            || line.contains("<ObjOwner")
            || line.contains("<Region")
            || line.contains("<GCRegion")
            || line.contains("<NoGCRegion")
            || line.contains("<LocalRegion")
            || line.contains("<SharedRegion"))
    {
        return true;
    }
    // Class headers parameterized by user region kinds, e.g.
    // `class Producer<BufferRegion r>`.
    if line.starts_with("class ") && line.contains('<') && line.contains("Region") {
        return true;
    }
    // RT forks are real-time annotations.
    if line.contains("RT fork") {
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_annotation_lines() {
        let src = r#"
            // comment only
            class Plain { }
            class Owned<Owner o> { int x; }
            class Prod<BufferRegion r> { }
            regionKind Buf extends SharedRegion {
                subregion Sub : LT(64) NoRT b;
            }
            {
                (RHandle<r> h) {
                    let x = 1;
                }
            }
        "#;
        let r = annotation_report(src);
        // Lines: class Plain, class Owned, class Prod, regionKind,
        // subregion, }, {, (RHandle, let, }, } → loc = 11.
        assert_eq!(r.loc, 11);
        // Annotated: class Owned, class Prod, regionKind, subregion,
        // (RHandle → 5.
        assert_eq!(r.annotated, 5);
    }

    #[test]
    fn plain_code_is_unannotated() {
        let r = annotation_report("{ let x = 1 + 2; print(x); }");
        assert_eq!(r.loc, 1);
        assert_eq!(r.annotated, 0);
    }

    #[test]
    fn accesses_and_where_count() {
        assert!(is_annotated("void m() accesses heap {"));
        assert!(is_annotated("class C<Owner o> where o outlives heap {"));
        assert!(is_annotated("RT fork x.run(h);"));
        assert!(!is_annotated("let y = this.m(x);"));
    }
}
