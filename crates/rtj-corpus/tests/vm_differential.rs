//! Differential test: the tree-walking interpreter and the bytecode VM
//! must be observationally indistinguishable on every deterministic
//! output the run model defines.
//!
//! For each corpus program (plus the scaled interpreter workload and a
//! set of error-path programs), both engines run in `Dynamic` and
//! `Audit` modes with full trace capture, and everything is compared:
//! the print trace, the final error (if any), the virtual cycle count,
//! the legacy stats, the full `rtj-metrics/v1` snapshot (both
//! structurally and as rendered bytes), the ordered structured-event
//! sequence, and the per-region peak table. Wall time and the DOT graph
//! are the only `RunOutcome` fields excluded (wall is physical;
//! the graph is excluded because it is not captured by default).
//!
//! This is the empirical half of the Figure-12 byte-identity guarantee:
//! `--engine vm` and `--engine tree` produce the same ledger, so the
//! paper's `static.elided == dynamic.performed` invariant transfers to
//! the VM unchanged.

use rtj_corpus::programs::{all, scaled_vm_workload, Scale};
use rtj_interp::{build, run_checked, Engine, RunConfig, RunOutcome, TraceCapture};
use rtj_runtime::CheckMode;

/// Runs `src` on one engine with full capture.
fn run_on(src: &str, mode: CheckMode, engine: Engine) -> RunOutcome {
    let checked = build(src).expect("program builds");
    let mut cfg = RunConfig::new(mode);
    cfg.engine = engine;
    cfg.events = TraceCapture::Full;
    run_checked(&checked, cfg)
}

/// Asserts the two engines produced identical outcomes for `name`.
fn assert_identical(name: &str, src: &str, mode: CheckMode) {
    let tree = run_on(src, mode, Engine::Tree);
    let vm = run_on(src, mode, Engine::Vm);
    let ctx = format!("{name} ({mode:?})");
    assert_eq!(
        format!("{:?}", tree.error),
        format!("{:?}", vm.error),
        "{ctx}: errors differ"
    );
    assert_eq!(tree.trace, vm.trace, "{ctx}: print traces differ");
    assert_eq!(tree.cycles, vm.cycles, "{ctx}: virtual cycles differ");
    assert_eq!(tree.stats, vm.stats, "{ctx}: stats differ");
    assert_eq!(tree.metrics, vm.metrics, "{ctx}: metrics snapshots differ");
    assert_eq!(
        tree.metrics.render(),
        vm.metrics.render(),
        "{ctx}: rendered metrics documents are not byte-identical"
    );
    assert_eq!(
        tree.events, vm.events,
        "{ctx}: structured event sequences differ"
    );
    assert_eq!(
        tree.region_peaks, vm.region_peaks,
        "{ctx}: region peak tables differ"
    );
}

const MODES: [CheckMode; 2] = [CheckMode::Dynamic, CheckMode::Audit];

#[test]
fn corpus_programs_agree_across_engines() {
    for bench in all(Scale::Smoke) {
        for mode in MODES {
            assert_identical(bench.name, &bench.source, mode);
        }
    }
}

#[test]
fn scaled_vm_workload_agrees_across_engines() {
    let src = scaled_vm_workload(4);
    for mode in MODES {
        assert_identical("scaled_vm_workload:4", &src, mode);
    }
}

#[test]
fn static_mode_agrees_across_engines() {
    // Figure 12's other half: the static (checks-elided) runs must also
    // match, or the overhead ratio would depend on the engine.
    for bench in all(Scale::Smoke).into_iter().take(4) {
        assert_identical(bench.name, &bench.source, CheckMode::Static);
    }
    assert_identical(
        "scaled_vm_workload:2",
        &scaled_vm_workload(2),
        CheckMode::Static,
    );
}

/// Error paths: the engines must halt with the same message after the
/// same number of virtual cycles, with identical partial output.
#[test]
fn error_paths_agree_across_engines() {
    let cases: &[(&str, &str)] = &[
        (
            "division-by-zero",
            "{ let x = 3; print(x); let y = x - 3; let z = 10 / y; }",
        ),
        ("remainder-by-zero", "{ let x = 0; let z = 10 % x; }"),
        (
            "null-field-read",
            r#"
            class C<Owner o> { int v; }
            { (RHandle<r> h) { let C<r> c = null; print(c.v); } }
            "#,
        ),
        (
            "null-field-write",
            r#"
            class C<Owner o> { int v; }
            { (RHandle<r> h) { let C<r> c = null; c.v = 1; } }
            "#,
        ),
        (
            "null-method-call",
            r#"
            class C<Owner o> { int m() { return 1; } }
            { (RHandle<r> h) { let C<r> c = null; let x = c.m(); } }
            "#,
        ),
        (
            "unbounded-recursion",
            r#"
            class R<Owner o> { int down(int n) { return this.down(n + 1); } }
            { (RHandle<r> h) { let r0 = new R<r>; let x = r0.down(0); } }
            "#,
        ),
        (
            // The error unwinds through two open region scopes; the
            // exits must still run, in the same order, on both engines.
            "error-inside-nested-regions",
            r#"
            class C<Owner o> { int v; }
            {
                print("before");
                (RHandle<a> ha) {
                    let c = new C<a>;
                    c.v = 2;
                    (RHandle<b> hb) {
                        let d = new C<b>;
                        d.v = 0;
                        print(c.v / d.v);
                    }
                }
            }
            "#,
        ),
    ];
    for (name, src) in cases {
        for mode in MODES {
            assert_identical(name, src, mode);
        }
        let out = run_on(src, CheckMode::Dynamic, Engine::Vm);
        assert!(out.error.is_some(), "{name}: expected a runtime error");
    }
}

/// The step limit must trip at the same virtual instant on both engines.
#[test]
fn step_limit_agrees_across_engines() {
    let src = "{ let i = 0; while (true) { i = i + 1; } }";
    let checked = build(src).expect("builds");
    let outs: Vec<RunOutcome> = [Engine::Tree, Engine::Vm]
        .into_iter()
        .map(|engine| {
            let mut cfg = RunConfig::new(CheckMode::Dynamic);
            cfg.engine = engine;
            cfg.max_steps = 5_000;
            run_checked(&checked, cfg)
        })
        .collect();
    assert_eq!(
        format!("{:?}", outs[0].error),
        format!("{:?}", outs[1].error)
    );
    assert_eq!(outs[0].cycles, outs[1].cycles);
    assert_eq!(outs[0].stats, outs[1].stats);
}
