//! End-to-end CLI coverage for the flight-recorder flags and the
//! `rtjc report` schema dispatch, driving the real `rtjc` binary.

use std::path::Path;
use std::process::{Command, Output};

fn rtjc(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rtjc"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("rtjc runs")
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rtjc-telemetry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn load_with_telemetry_emits_both_documents_and_report_renders_them() {
    let dir = tempdir("load");
    let out = rtjc(
        &[
            "load",
            "--workers",
            "2",
            "--rate",
            "2000",
            "--duration-ms",
            "100",
            "--seed",
            "5",
            "--telemetry=trace.json",
            "--tick-us",
            "2000",
            "--format",
            "json",
            "--out",
            "load.json",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let trace = std::fs::read_to_string(dir.join("trace.json")).expect("trace written");
    assert!(trace.starts_with("{\"schema\":\"rtj-server-trace/v1\""));
    let timeline = std::fs::read_to_string(dir.join("trace.timeline.json")).expect("timeline");
    assert!(timeline.starts_with("{\"schema\":\"rtj-timeline/v1\""));
    let load = std::fs::read_to_string(dir.join("load.json")).expect("load doc");
    assert!(load.contains("\"attribution\":["));
    assert!(load.contains("\"panicked\":"));

    let report = rtjc(
        &["report", "trace.json", "trace.timeline.json", "load.json"],
        &dir,
    );
    assert!(report.status.success());
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(text.contains("server trace (rtj-server-trace/v1)"));
    assert!(text.contains("busy %"));
    assert!(text.contains("telemetry timeline (rtj-timeline/v1)"));
    assert!(text.contains("queue depth/worker"));
    assert!(text.contains("stage attribution (flight recorder)"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chrome_and_jsonl_trace_formats() {
    let dir = tempdir("formats");
    let out = rtjc(
        &[
            "serve",
            "--workers",
            "1",
            "--rounds",
            "1",
            "--variants",
            "1",
            "--telemetry=chrome.json",
            "--trace-format",
            "chrome",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let chrome = std::fs::read_to_string(dir.join("chrome.json")).expect("chrome trace");
    assert!(chrome.starts_with('['), "trace_event array form");
    assert!(chrome.contains("\"ph\":\"X\""));
    assert!(chrome.contains("\"thread_name\""));

    let out = rtjc(
        &[
            "serve",
            "--workers",
            "1",
            "--rounds",
            "1",
            "--variants",
            "1",
            "--telemetry=trace.jsonl",
            "--trace-format=jsonl",
        ],
        &dir,
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(dir.join("trace.jsonl")).expect("jsonl trace");
    assert!(jsonl.lines().count() > 1);
    assert!(jsonl
        .lines()
        .all(|l| l.starts_with('{') && l.ends_with('}')));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn telemetry_flag_validation() {
    let dir = tempdir("validation");
    let out = rtjc(&["serve", "--rounds", "1", "--tick-us", "500"], &dir);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("require --telemetry"));

    let out = rtjc(
        &[
            "serve",
            "--rounds",
            "1",
            "--telemetry",
            "--trace-format",
            "xml",
        ],
        &dir,
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown trace format `xml`"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_rejects_unknown_and_missing_schema_with_one_line_error() {
    let dir = tempdir("report");
    std::fs::write(dir.join("bogus.json"), "{\"schema\":\"rtj-bogus/v7\"}").unwrap();
    let out = rtjc(&["report", "bogus.json"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    let line = err.lines().next().expect("one-line error");
    assert!(line.contains("unknown schema `rtj-bogus/v7`"), "{line}");
    for schema in [
        "rtj-metrics/v1",
        "rtj-checker-metrics/v1",
        "rtj-fig12/v1",
        "rtj-load/v1",
        "rtj-serve-bench/v1",
        "rtj-check-bench/v1",
        "rtj-server-trace/v1",
        "rtj-timeline/v1",
    ] {
        assert!(line.contains(schema), "missing {schema} in: {line}");
    }
    assert_eq!(err.trim().lines().count(), 1, "error must be one line");

    std::fs::write(dir.join("noschema.json"), "{\"x\":1}").unwrap();
    let out = rtjc(&["report", "noschema.json"], &dir);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err
        .lines()
        .next()
        .unwrap()
        .contains("missing string `schema` field"));
    std::fs::remove_dir_all(&dir).ok();
}
