//! `rtjc` — the command-line front end.
//!
//! ```text
//! rtjc check <file.rtj>        type-check a program
//! rtjc check --stats <file>    …and print checker-pipeline statistics
//! rtjc check --stats --format json <file>  …as an rtj-checker-metrics/v1 doc
//! rtjc check --jobs N <file>   …with N worker threads (1 = serial, 0 = auto)
//! rtjc check --explain <file>  …rendering each error's derivation trace
//! rtjc check --profile[=FILE] [--trace-format chrome|jsonl] <file>
//!                              …self-profiling the checker pipeline
//! rtjc check --watch [--watch-max N] <file>
//!                              re-check the file whenever it changes,
//!                              reusing fingerprint-clean results
//! rtjc check --edits FILE [--final-out F] <file>
//!                              apply an rtj-edits/v1 script batch by
//!                              batch through the incremental engine
//! rtjc run <file.rtj>          check then run (static mode, bytecode VM)
//! rtjc run --dynamic <file>    run with the RTSJ dynamic checks
//! rtjc run --audit <file>      run the checks at zero virtual cost
//! rtjc run --engine tree <f>   run on the tree-walking engine instead
//! rtjc run --trace FILE <f>    write the structured event trace (JSONL)
//! rtjc run --metrics[=FILE] <f>  export the rtj-metrics/v1 snapshot
//! rtjc fmt <file.rtj>          parse and pretty-print
//! rtjc graph <file.rtj>        run and emit the ownership graph (DOT)
//! rtjc lower <file.rtj>        translate to RTSJ Java (Section 2.6)
//! rtjc fig11 [--format json]   regenerate paper Figure 11
//! rtjc fig12 [--smoke] [--format json] [--engine tree|vm]  regenerate Figure 12
//! rtjc report <snapshot.json>...  render metrics/checker/fig12/load snapshots
//! rtjc bench <name>            print a corpus program's source
//! rtjc bench scaled:N --format json  tree-vs-VM engine comparison
//!                              (an rtj-bench/v1 document)
//! rtjc bench incremental[:N] [--batches B] [--seed S] [--jobs J]
//!                              incremental re-check latency baseline
//!                              (an rtj-check-bench/v1 document,
//!                              persisted as BENCH_check.json)
//! rtjc serve --rounds R        multi-tenant batch serving (saturation)
//! rtjc load --rate HZ --duration-ms MS  open-loop Poisson load
//!                              (both emit rtj-load/v1; see SERVER.md)
//! rtjc servebench              regenerate the rtj-serve-bench/v1 serving
//!                              baseline: worker sweep + overload row
//! ```
//!
//! `run --trace`/`run --metrics`, `check --profile`, and `report` are
//! the observability surface: traces are JSONL (one event per line),
//! runtime metrics snapshots are `rtj-metrics/v1` documents, checker
//! snapshots are `rtj-checker-metrics/v1` documents, and `report`
//! renders any mix of those plus `rtj-fig12/v1` documents (from `fig12
//! --format json`), `rtj-load/v1` serving reports (from `serve`/`load`),
//! `rtj-serve-bench/v1` baselines (from `servebench`), and
//! `rtj-check-bench/v1` incremental-checker baselines (from `bench
//! incremental:N`) — given both a checker and a runtime snapshot it
//! appends the combined static-cost vs. checks-elided view. `FILE` may
//! be `-` for stdout.

use rtj_interp::{build, run_checked, Engine, RunConfig, TraceCapture};
use rtj_runtime::{CheckMode, CheckerMetrics, Json, MetricsSnapshot};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("check") => check_cmd(&args[1..]),
        Some("run") => run_cmd(&args[1..]),
        Some("fmt") => with_file(&args, |src| match rtj_lang::parse_program(src) {
            Ok(p) => {
                print!("{}", rtj_lang::pretty_program(&p));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}", rtj_lang::diag::render(src, e.span, &e.message));
                ExitCode::FAILURE
            }
        }),
        Some("graph") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                let mut cfg = RunConfig::new(CheckMode::Static);
                cfg.capture_graph = true;
                let out = run_checked(&checked, cfg);
                if let Some(dot) = out.graph {
                    print!("{dot}");
                }
                match out.error {
                    None => ExitCode::SUCCESS,
                    Some(e) => {
                        eprintln!("runtime error: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        Some("advise") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                let out = run_checked(&checked, RunConfig::new(CheckMode::Static));
                if let Some(e) = out.error {
                    eprintln!("runtime error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("LT sizing advice (peak usage observed on this run)");
                println!(
                    "{:<24} {:>10} {:>10}   suggestion",
                    "region", "peak", "capacity"
                );
                let mut any = false;
                for (label, policy, peak, capacity) in &out.region_peaks {
                    // Only user LT regions: immortal is LT-like but unbounded.
                    if !matches!(policy, rtj_runtime::AllocPolicy::Lt { .. }) || label == "immortal"
                    {
                        continue;
                    }
                    any = true;
                    let suggested = ((*peak as f64 * 1.25) as u64 + 63)
                        .next_power_of_two()
                        .max(64);
                    let usage = *peak as f64 / (*capacity).max(1) as f64;
                    let note = if usage > 0.9 {
                        format!("raise to LT({suggested}) — within 10% of the bound")
                    } else if (*capacity as f64) > suggested.max(1) as f64 * 4.0 {
                        format!("LT({suggested}) would do — over-provisioned")
                    } else {
                        "ok".to_string()
                    };
                    println!("{label:<24} {peak:>10} {capacity:>10}   {note}");
                }
                if !any {
                    println!("(no LT regions in this program)");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        Some("lower") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                print!("{}", rtj_types::lower::lower_to_rtsj(&checked));
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        // fig11 counts source lines, so `--engine` is accepted (for a
        // uniform interface with run/fig12) but has nothing to select.
        Some("fig11") => {
            match parse_format(&args[1..]).and_then(|j| parse_engine(&args[1..]).map(|_| j)) {
                Ok(json) => {
                    let rows = rtj_corpus::fig11();
                    if json {
                        println!("{}", rtj_corpus::fig11_json(&rows));
                    } else {
                        print!("{}", rtj_corpus::render_fig11(&rows));
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("fig12") => {
            match parse_format(&args[1..]).and_then(|j| parse_engine(&args[1..]).map(|e| (j, e))) {
                Ok((json, engine)) => {
                    let scale = if args.iter().any(|a| a == "--smoke") {
                        rtj_corpus::Scale::Smoke
                    } else {
                        rtj_corpus::Scale::Paper
                    };
                    let rows = rtj_corpus::fig12_on(scale, engine);
                    if json {
                        println!("{}", rtj_corpus::fig12_json(&rows));
                    } else {
                        print!("{}", rtj_corpus::render_fig12(&rows));
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("report") => report_cmd(&args[1..]),
        Some("bench") => bench_cmd(&args[1..]),
        Some("serve") => serve_cmd(&args[1..]),
        Some("load") => load_cmd(&args[1..]),
        Some("servebench") => servebench_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: rtjc <check|run|fmt|fig11|fig12|report|bench|serve|load|servebench> [args]\n\
                 \n\
                 check [--stats] [--format json] [--jobs N] [--explain]\n\
                 \x20     [--profile[=FILE]] [--trace-format chrome|jsonl]\n\
                 \x20     [--watch [--watch-max N]] [--edits FILE [--final-out F]]\n\
                 \x20     <file>\n\
                 \x20                   type-check a program; --stats --format json\n\
                 \x20                   emits the rtj-checker-metrics/v1 document,\n\
                 \x20                   --explain renders derivation traces,\n\
                 \x20                   --profile exports the self-profiling snapshot;\n\
                 \x20                   --watch re-checks incrementally on change,\n\
                 \x20                   --edits replays an rtj-edits/v1 script\n\
                 run [--static|--dynamic|--audit] [--engine tree|vm]\n\
                 \x20   [--trace FILE] [--metrics[=FILE]] <file>\n\
                 \x20                   check then interpret (bytecode VM by\n\
                 \x20                   default; --engine tree for the walker);\n\
                 \x20                   --trace writes the JSONL event trace,\n\
                 \x20                   --metrics the rtj-metrics/v1 snapshot\n\
                 \x20                   (FILE `-` = stdout)\n\
                 fmt <file>          parse and pretty-print\n\
                 graph <file>        run and emit the ownership graph (DOT, Fig. 6)\n\
                 lower <file>        translate to RTSJ Java (paper Section 2.6)\n\
                 advise <file>       run once and suggest LT region sizes\n\
                 fig11 [--format json]           regenerate paper Figure 11\n\
                 fig12 [--smoke] [--format json] [--engine tree|vm]\n\
                 \x20                   regenerate paper Figure 12\n\
                 report <snapshot.json>...  render the report(s) from any mix of\n\
                 \x20                   rtj-metrics/v1, rtj-checker-metrics/v1,\n\
                 \x20                   rtj-fig12/v1, rtj-load/v1,\n\
                 \x20                   rtj-serve-bench/v1, rtj-check-bench/v1,\n\
                 \x20                   rtj-server-trace/v1, and rtj-timeline/v1\n\
                 \x20                   documents\n\
                 bench <name|scaled[:N]> [--format json] [--iters N]\n\
                 \x20                   print a corpus program, or with --format\n\
                 \x20                   json run it under both engines and emit\n\
                 \x20                   an rtj-bench/v1 comparison document\n\
                 bench incremental[:N] [--batches B] [--seed S] [--jobs J]\n\
                 \x20     [--iters I] [--edits-out FILE] [--format json]\n\
                 \x20                   measure incremental re-checking against a\n\
                 \x20                   from-scratch check on scaled_classes(N) and\n\
                 \x20                   emit an rtj-check-bench/v1 baseline\n\
                 serve [--rounds R] [--workers N] [--programs a,b] [--variants K]\n\
                 \x20     [--modes static,dynamic,audit] [--engine vm|tree|both]\n\
                 \x20     [--queue-capacity Q] [--deadline-us D] [--stall-us S]\n\
                 \x20     [--telemetry[=FILE]] [--trace-format chrome|jsonl]\n\
                 \x20     [--tick-us N] [--format json] [--out FILE]\n\
                 \x20     [--sessions FILE]\n\
                 \x20                   run R complete request-mix rounds on the\n\
                 \x20                   multi-tenant server, unpaced (saturation);\n\
                 \x20                   --sessions dumps per-session deterministic\n\
                 \x20                   keys for byte-identity diffs; --telemetry\n\
                 \x20                   runs the flight recorder (=FILE writes the\n\
                 \x20                   rtj-server-trace/v1 trace and the sibling\n\
                 \x20                   *.timeline.json rtj-timeline/v1 document)\n\
                 load [--rate HZ] [--duration-ms MS] [--seed S] + serve's flags\n\
                 \x20                   open-loop Poisson load at a target arrival\n\
                 \x20                   rate; both emit rtj-load/v1 (see SERVER.md)\n\
                 servebench [--rounds R] [--stall-us S] [--rate HZ]\n\
                 \x20     [--duration-ms MS] [--seed S] [--deadline-us D]\n\
                 \x20     [--telemetry[=FILE]] [--format json] [--out FILE]\n\
                 \x20                   regenerate the rtj-serve-bench/v1 baseline:\n\
                 \x20                   a 1/2/4/8-worker sweep plus a deadline-shed\n\
                 \x20                   overload row (BENCH_serve.json)"
            );
            ExitCode::FAILURE
        }
    }
}

/// `rtjc check [--stats] [--format text|json] [--jobs N] [--explain]
/// [--profile[=FILE]] [--trace-format chrome|jsonl] <file>`: type-check,
/// optionally reporting pipeline statistics (`--format json` turns the
/// stats into a versioned `rtj-checker-metrics/v1` document on stdout),
/// rendering the derivation trace behind each type error (`--explain`),
/// and exporting the checker's self-profiling snapshot (`--profile`,
/// with `--trace-format` switching the export to Chrome trace events or
/// their JSONL form). `--jobs 1` forces the serial driver, `--jobs 0`
/// one thread per core. `FILE` may be `-` for stdout.
fn check_cmd(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: rtjc check [--stats] [--format text|json] [--jobs N] \
                         [--explain] [--profile[=FILE]] [--trace-format chrome|jsonl] \
                         [--watch [--watch-max N]] [--edits FILE [--final-out F]] <file>";
    let mut stats = false;
    let mut json = false;
    let mut jobs = 0usize;
    let mut explain = false;
    let mut profile_out: Option<String> = None;
    let mut trace_format: Option<String> = None;
    let mut watch = false;
    let mut watch_max: Option<u64> = None;
    let mut edits_path: Option<String> = None;
    let mut final_out: Option<String> = None;
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--stats" {
            stats = true;
        } else if a == "--explain" {
            explain = true;
        } else if a == "--watch" {
            watch = true;
        } else if let Some(n) = a.strip_prefix("--watch-max=") {
            match n.parse() {
                Ok(n) => watch_max = Some(n),
                Err(_) => {
                    eprintln!("--watch-max expects a number, got `{n}`");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--watch-max" {
            match it.next().map(|n| n.parse()) {
                Some(Ok(n)) => watch_max = Some(n),
                _ => {
                    eprintln!("--watch-max expects a number");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--edits=") {
            edits_path = Some(p.to_string());
        } else if a == "--edits" {
            match it.next() {
                Some(p) => edits_path = Some(p.clone()),
                None => {
                    eprintln!("--edits expects an rtj-edits/v1 file argument");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--final-out=") {
            final_out = Some(p.to_string());
        } else if a == "--final-out" {
            match it.next() {
                Some(p) => final_out = Some(p.clone()),
                None => {
                    eprintln!("--final-out expects a file argument (`-` for stdout)");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--profile=") {
            profile_out = Some(p.to_string());
        } else if a == "--profile" {
            profile_out = Some("-".to_string());
        } else if let Some(f) = a.strip_prefix("--trace-format=") {
            trace_format = Some(f.to_string());
        } else if a == "--trace-format" {
            match it.next() {
                Some(f) => trace_format = Some(f.clone()),
                None => {
                    eprintln!("--trace-format expects `chrome` or `jsonl`");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(v) = a.strip_prefix("--format=") {
            json = v == "json";
            if !json && v != "text" {
                eprintln!("--format expects `text` or `json`, got `{v}`");
                return ExitCode::FAILURE;
            }
        } else if a == "--format" {
            match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("--format expects `text` or `json`");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            match n.parse() {
                Ok(n) => jobs = n,
                Err(_) => {
                    eprintln!("--jobs expects a number, got `{n}`");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--jobs" {
            match it.next().map(|n| n.parse()) {
                Some(Ok(n)) => jobs = n,
                _ => {
                    eprintln!("--jobs expects a number");
                    return ExitCode::FAILURE;
                }
            }
        } else if a.starts_with("--") {
            eprintln!("unknown flag `{a}`; {USAGE}");
            return ExitCode::FAILURE;
        } else {
            file = Some(a.clone());
        }
    }
    if let Some(f) = &trace_format {
        if profile_out.is_none() {
            eprintln!("--trace-format requires --profile");
            return ExitCode::FAILURE;
        }
        if f != "chrome" && f != "jsonl" {
            eprintln!("--trace-format expects `chrome` or `jsonl`, got `{f}`");
            return ExitCode::FAILURE;
        }
    }
    let Some(path) = file else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    if watch && edits_path.is_some() {
        eprintln!("--watch and --edits are mutually exclusive");
        return ExitCode::FAILURE;
    }
    if watch_max.is_some() && !watch {
        eprintln!("--watch-max requires --watch");
        return ExitCode::FAILURE;
    }
    if final_out.is_some() && edits_path.is_none() {
        eprintln!("--final-out requires --edits");
        return ExitCode::FAILURE;
    }
    let opts = rtj_types::CheckOptions {
        jobs,
        profile: profile_out.is_some(),
    };
    if watch {
        return check_watch(&path, watch_max, opts);
    }
    if let Some(edits) = &edits_path {
        return check_edits(&path, edits, final_out.as_deref(), opts);
    }
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let parse_start = std::time::Instant::now();
    let program = match rtj_lang::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", rtj_lang::diag::render(&src, e.span, &e.message));
            return ExitCode::FAILURE;
        }
    };
    let parse_wall = parse_start.elapsed();
    match rtj_types::check_program_in(program, &opts) {
        Ok(checked) => {
            // The lex/parse span runs before `check_program_in` (the
            // profile epoch), so it is prepended at offset zero.
            let profile = checked.profile.clone().map(|mut p| {
                p.prepend(rtj_types::PhaseSpan::leaf(
                    "parse",
                    std::time::Duration::ZERO,
                    parse_wall,
                ));
                p
            });
            let snap = rtj_types::CheckerSnapshot::capture(&checked.stats, profile.as_ref());
            if stats && json {
                println!("{}", snap.render());
            } else {
                println!("ok");
                if stats {
                    print_stats(&checked.stats);
                }
            }
            if let Some(dest) = &profile_out {
                let text = match trace_format.as_deref() {
                    Some("chrome") => format!("{}\n", snap.to_chrome_trace().render()),
                    Some("jsonl") => snap.to_trace_jsonl(),
                    _ => format!("{}\n", snap.render()),
                };
                if let Err(e) = write_output(dest, &text) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for t in &errs {
                if explain {
                    eprintln!(
                        "{}",
                        rtj_lang::diag::render_with_notes(&src, t.span, &t.message, &t.notes)
                    );
                } else {
                    eprintln!("{}", rtj_lang::diag::render(&src, t.span, &t.message));
                }
            }
            ExitCode::FAILURE
        }
    }
}

/// One line summarizing an incremental pass, for the watch/edits flows.
fn recheck_summary(out: &rtj_types::RecheckOutcome) -> String {
    format!(
        "{} of {} classes re-checked ({} reused, {}) in {:.3} ms, {} error{}",
        out.dirty.len(),
        out.classes,
        out.reused,
        if out.full_rebuild {
            "full rebuild"
        } else {
            "table reused"
        },
        out.check_ns as f64 / 1e6,
        out.errors.len(),
        if out.errors.len() == 1 { "" } else { "s" }
    )
}

/// `rtjc check --watch [--watch-max N] <file>`: poll the file's mtime and
/// re-check on every change through the fingerprint-keyed incremental
/// engine. Summaries go to stdout, diagnostics to stderr. `--watch-max`
/// exits cleanly after N checks (the initial check counts) — the CI
/// smoke's hook; without it the loop runs until interrupted.
fn check_watch(path: &str, watch_max: Option<u64>, opts: rtj_types::CheckOptions) -> ExitCode {
    let mut engine = rtj_types::IncrementalChecker::new(opts);
    let mut last_mtime = None;
    let mut checks = 0u64;
    loop {
        let mtime = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        if mtime.is_some() && mtime != last_mtime {
            last_mtime = mtime;
            match std::fs::read_to_string(path) {
                Ok(src) => {
                    match engine.check_source(&src) {
                        Ok(out) => {
                            println!("[watch] {path}: {}", recheck_summary(&out));
                            for t in &out.errors {
                                eprintln!("{}", rtj_lang::diag::render(&src, t.span, &t.message));
                            }
                        }
                        Err(e) => {
                            println!("[watch] {path}: parse error (cache kept)");
                            eprintln!("{}", rtj_lang::diag::render(&src, e.span, &e.message));
                        }
                    }
                    checks += 1;
                    if let Some(max) = watch_max {
                        if checks >= max {
                            return ExitCode::SUCCESS;
                        }
                    }
                }
                Err(e) => eprintln!("cannot read {path}: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
    }
}

/// `rtjc check --edits FILE [--final-out F] <file>`: apply an
/// `rtj-edits/v1` script batch by batch through the incremental engine.
/// Per-batch summaries go to stdout; the *final* source's diagnostics go
/// to stderr (rendered exactly as a plain `rtjc check` of that source
/// would — the CI smoke diffs the two); `--final-out` writes the final
/// edited source so that from-scratch check can be run. Exits non-zero
/// iff the final source has errors.
fn check_edits(
    path: &str,
    edits_path: &str,
    final_out: Option<&str>,
    opts: rtj_types::CheckOptions,
) -> ExitCode {
    let run = || -> Result<ExitCode, String> {
        let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let text = std::fs::read_to_string(edits_path)
            .map_err(|e| format!("cannot read {edits_path}: {e}"))?;
        let doc = Json::parse(&text).map_err(|e| format!("{edits_path}: {e}"))?;
        let script = rtj_corpus::parse_edits(&doc).map_err(|e| format!("{edits_path}: {e}"))?;
        let mut engine = rtj_types::IncrementalChecker::new(opts);
        let mut last = match engine.check_source(&src) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("{}", rtj_lang::diag::render(&src, e.span, &e.message));
                return Ok(ExitCode::FAILURE);
            }
        };
        println!("initial: {}", recheck_summary(&last));
        for b in &script.batches {
            let out = engine
                .recheck(&[rtj_types::ClassEdit {
                    class: b.class.clone(),
                    source: b.source.clone(),
                }])
                .map_err(|e| format!("batch {}: {e}", b.id))?;
            println!(
                "batch {:>3} {:<10} {:<10} {}",
                b.id,
                b.kind,
                b.class,
                recheck_summary(&out)
            );
            last = out;
        }
        if let Some(dest) = final_out {
            write_output(dest, engine.source())?;
        }
        for t in &last.errors {
            eprintln!(
                "{}",
                rtj_lang::diag::render(engine.source(), t.span, &t.message)
            );
        }
        Ok(if last.errors.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        })
    };
    run().unwrap_or_else(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// `rtjc run [--static|--dynamic|--audit] [--engine tree|vm] [--trace FILE]
/// [--metrics[=FILE]] <file>`:
/// check then interpret, optionally exporting the structured event trace
/// (JSONL, one event per line) and the `rtj-metrics/v1` snapshot (with
/// the static checker's counters attached). `FILE` may be `-` for stdout.
/// `--engine` selects the execution engine (bytecode VM by default; both
/// produce identical cycles, metrics, and traces).
fn run_cmd(args: &[String]) -> ExitCode {
    let mut mode = CheckMode::Static;
    let mut engine = Engine::default();
    let mut trace_out: Option<String> = None;
    // `None` = no export; `Some("-")` = stdout (also from bare `--metrics`).
    let mut metrics_out: Option<String> = None;
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--dynamic" {
            mode = CheckMode::Dynamic;
        } else if a == "--static" {
            mode = CheckMode::Static;
        } else if a == "--audit" {
            mode = CheckMode::Audit;
        } else if let Some(v) = a.strip_prefix("--engine=") {
            match engine_from_str(v) {
                Some(e) => engine = e,
                None => {
                    eprintln!("--engine expects `tree` or `vm`, got `{v}`");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--engine" {
            match it.next().map(String::as_str).and_then(engine_from_str) {
                Some(e) => engine = e,
                None => {
                    eprintln!("--engine expects `tree` or `vm`");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--trace=") {
            trace_out = Some(p.to_string());
        } else if a == "--trace" {
            match it.next() {
                Some(p) => trace_out = Some(p.clone()),
                None => {
                    eprintln!("--trace expects a file argument (`-` for stdout)");
                    return ExitCode::FAILURE;
                }
            }
        } else if let Some(p) = a.strip_prefix("--metrics=") {
            metrics_out = Some(p.to_string());
        } else if a == "--metrics" {
            metrics_out = Some("-".to_string());
        } else if a.starts_with("--") {
            eprintln!(
                "unknown flag `{a}`; usage: rtjc run [--static|--dynamic|--audit] \
                 [--engine tree|vm] [--trace FILE] [--metrics[=FILE]] <file>"
            );
            return ExitCode::FAILURE;
        } else {
            file = Some(a.clone());
        }
    }
    let Some(path) = file else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let checked = match build(&src) {
        Ok(c) => c,
        Err(e) => {
            report_build_error(&src, &e);
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = RunConfig::new(mode);
    cfg.engine = engine;
    if trace_out.is_some() {
        cfg.events = TraceCapture::Full;
    }
    let out = run_checked(&checked, cfg);
    for line in &out.trace {
        println!("{line}");
    }
    if let Some(dest) = &trace_out {
        let lines = out.events.as_deref().unwrap_or_default();
        let mut text = lines.join("\n");
        if !text.is_empty() {
            text.push('\n');
        }
        if let Err(e) = write_output(dest, &text) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dest) = &metrics_out {
        let mut snap = out.metrics.clone();
        snap.checker = Some(checker_metrics(&checked.stats));
        if let Err(e) = write_output(dest, &format!("{}\n", snap.render())) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "[{} cycles, {} objects, {} checks performed, {} elided, {:?} wall]",
        out.cycles,
        out.metrics.objects_allocated,
        out.metrics.checks_performed(),
        out.metrics.checks_elided(),
        out.wall
    );
    match out.error {
        None => ExitCode::SUCCESS,
        Some(e) => {
            eprintln!("runtime error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `rtjc bench <name|scaled[:N]> [--format json] [--iters N]`.
///
/// In text mode, prints the named corpus program's source (`scaled[:N]`
/// prints the synthetic checker-throughput corpus). With `--format
/// json`, instead *runs* the workload under both execution engines —
/// the tree-walker and the bytecode VM — and writes an `rtj-bench/v1`
/// document comparing their wall-clock times (for `scaled[:N]`, the
/// measured workload is the N-replica interpreter-throughput corpus,
/// `rtj_corpus::scaled_vm_workload`, whose runtime actually exercises
/// the engines; plain corpus names measure that program at smoke scale).
fn bench_cmd(args: &[String]) -> ExitCode {
    const USAGE: &str = "usage: rtjc bench <name|scaled[:N]|incremental[:N]> [--format json] \
                         [--iters N] [--batches B] [--seed S] [--jobs J] [--edits-out FILE]";
    let json = match parse_format(args) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut iters = 3u32;
    let mut batches = 24usize;
    let mut seed = 1u64;
    let mut jobs = 1usize;
    let mut edits_out: Option<String> = None;
    let mut name: Option<&String> = None;
    let mut it = args.iter();
    // Numeric flags share one parse shape: `--flag N` or `--flag=N`.
    macro_rules! numeric_flag {
        ($a:expr, $it:expr, $flag:literal, $target:ident) => {
            if let Some(n) = $a.strip_prefix(concat!($flag, "=")) {
                match n.parse() {
                    Ok(n) => {
                        $target = n;
                        continue;
                    }
                    Err(_) => {
                        eprintln!("{} expects a number, got `{n}`", $flag);
                        return ExitCode::FAILURE;
                    }
                }
            } else if $a == $flag {
                match $it.next().map(|n| n.parse()) {
                    Some(Ok(n)) => {
                        $target = n;
                        continue;
                    }
                    _ => {
                        eprintln!("{} expects a number", $flag);
                        return ExitCode::FAILURE;
                    }
                }
            }
        };
    }
    while let Some(a) = it.next() {
        numeric_flag!(a, it, "--iters", iters);
        numeric_flag!(a, it, "--batches", batches);
        numeric_flag!(a, it, "--seed", seed);
        numeric_flag!(a, it, "--jobs", jobs);
        if let Some(p) = a.strip_prefix("--edits-out=") {
            edits_out = Some(p.to_string());
        } else if a == "--edits-out" {
            match it.next() {
                Some(p) => edits_out = Some(p.clone()),
                None => {
                    eprintln!("--edits-out expects a file argument (`-` for stdout)");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--format" {
            // value validated by parse_format; just skip it here
            if it.next().is_none() {
                eprintln!("--format expects `text` or `json`");
                return ExitCode::FAILURE;
            }
        } else if a.starts_with("--") {
            // --format=... handled by parse_format; reject the rest
            if !a.starts_with("--format=") {
                eprintln!("unknown flag `{a}`; {USAGE}");
                return ExitCode::FAILURE;
            }
        } else {
            name = Some(a);
        }
    }
    let Some(name) = name else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if name == "incremental" || name.starts_with("incremental:") {
        let copies = match name.strip_prefix("incremental:") {
            None | Some("") => 64,
            Some(n) => match n.parse() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("`incremental:` expects a replica count, got `{n}`");
                    return ExitCode::FAILURE;
                }
            },
        };
        return bench_incremental(
            copies,
            batches,
            seed,
            jobs,
            iters,
            json,
            edits_out.as_deref(),
        );
    }
    let scaled_n = if name == "scaled" || name.starts_with("scaled:") {
        match name.strip_prefix("scaled:") {
            None | Some("") => Some(8),
            Some(n) => match n.parse() {
                Ok(n) => Some(n),
                Err(_) => {
                    eprintln!("`scaled:` expects a block count, got `{n}`");
                    return ExitCode::FAILURE;
                }
            },
        }
    } else {
        None
    };
    if !json {
        match scaled_n {
            Some(n) => {
                print!("{}", rtj_corpus::scaled_classes(n));
                return ExitCode::SUCCESS;
            }
            None => {
                let benches = rtj_corpus::all(rtj_corpus::Scale::Paper);
                return match benches.iter().find(|b| b.name == name.as_str()) {
                    Some(b) => {
                        print!("{}", b.source);
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "unknown benchmark `{name}`; available: {}, scaled[:N]",
                            benches
                                .iter()
                                .map(|b| b.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        ExitCode::FAILURE
                    }
                };
            }
        }
    }
    let (workload, programs): (String, Vec<(String, String)>) = match scaled_n {
        Some(n) => (
            format!("scaled:{n}"),
            vec![(format!("scaled:{n}"), rtj_corpus::scaled_vm_workload(n))],
        ),
        None => {
            let benches = rtj_corpus::all(rtj_corpus::Scale::Smoke);
            let Some(b) = benches.iter().find(|b| b.name == name.as_str()) else {
                eprintln!("unknown benchmark `{name}`");
                return ExitCode::FAILURE;
            };
            (name.clone(), vec![(b.name.to_owned(), b.source.clone())])
        }
    };
    let rows: Vec<rtj_corpus::EngineBenchRow> = programs
        .iter()
        .map(|(n, src)| rtj_corpus::bench_engines(n, src, CheckMode::Static, iters))
        .collect();
    println!(
        "{}",
        rtj_corpus::bench_json(&rows, &workload, CheckMode::Static)
    );
    ExitCode::SUCCESS
}

/// `rtjc bench incremental:N`: the incremental re-check latency baseline.
///
/// Measures, on `scaled_classes(copies)` at `--jobs` workers:
///
/// 1. the median from-scratch `check_program_in` wall clock over
///    `--iters` runs (parse excluded);
/// 2. the engine's cache-cold initial pass;
/// 3. one incremental re-check per generated edit batch (also parse
///    excluded — the same program text is parsed on both sides).
///
/// Emits the `rtj-check-bench/v1` document (persisted as
/// `BENCH_check.json`); `--edits-out` additionally writes the generated
/// `rtj-edits/v1` script so `rtjc check --edits` can replay the exact
/// same batches.
fn bench_incremental(
    copies: usize,
    batches: usize,
    seed: u64,
    jobs: usize,
    iters: u32,
    json: bool,
    edits_out: Option<&str>,
) -> ExitCode {
    let run = || -> Result<ExitCode, String> {
        let source = rtj_corpus::scaled_classes(copies);
        let program =
            rtj_lang::parse_program(&source).map_err(|e| format!("scaled corpus: {e}"))?;
        let opts = rtj_types::CheckOptions {
            jobs,
            profile: false,
        };
        let mut full_ms: Vec<f64> = Vec::new();
        for _ in 0..iters.max(1) {
            let prog = program.clone();
            let t0 = std::time::Instant::now();
            if rtj_types::check_program_in(prog, &opts).is_err() {
                return Err("scaled corpus failed the from-scratch check".to_string());
            }
            full_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        full_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let full_check_ms = rtj_types::incremental::percentile(&full_ms, 50.0);

        let mut engine = rtj_types::IncrementalChecker::new(opts);
        let initial = engine
            .check_source(&source)
            .map_err(|e| format!("scaled corpus: {e}"))?;
        let script = rtj_corpus::edit_batches(copies, batches, seed);
        if let Some(dest) = edits_out {
            write_output(
                dest,
                &format!("{}\n", rtj_corpus::edits_json(&script).render()),
            )?;
        }
        let mut rows = Vec::with_capacity(script.batches.len());
        for b in &script.batches {
            let out = engine
                .recheck(&[rtj_types::ClassEdit {
                    class: b.class.clone(),
                    source: b.source.clone(),
                }])
                .map_err(|e| format!("batch {}: {e}", b.id))?;
            rows.push(rtj_types::EditBenchRow {
                batch: b.id,
                kind: b.kind.clone(),
                dirty: out.dirty.len(),
                reused: out.reused,
                recheck_ms: out.check_ns as f64 / 1e6,
                errors: out.errors.len(),
                hit_rate: out.stats.hit_rate(),
            });
        }
        let report = rtj_types::CheckBenchReport {
            workload: format!("scaled:{copies}"),
            classes: program.classes.len(),
            jobs,
            seed,
            batches,
            full_check_ms,
            initial_check_ms: initial.check_ns as f64 / 1e6,
            rows,
        };
        if json {
            println!("{}", report.to_json().render());
        } else {
            print!("{}", report.render_report());
        }
        Ok(ExitCode::SUCCESS)
    };
    run().unwrap_or_else(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// Every versioned document schema `rtjc report` can render, in the
/// order they are listed in error messages and the usage text.
const SUPPORTED_SCHEMAS: [&str; 8] = [
    rtj_runtime::METRICS_SCHEMA,
    rtj_types::CHECKER_METRICS_SCHEMA,
    rtj_corpus::FIG12_SCHEMA,
    rtj_server::LOAD_SCHEMA,
    rtj_server::SERVE_BENCH_SCHEMA,
    rtj_types::CHECK_BENCH_SCHEMA,
    rtj_server::SERVER_TRACE_SCHEMA,
    rtj_server::TIMELINE_SCHEMA,
];

/// `rtjc report <snapshot.json>...`: render the report(s) from any mix
/// of observability documents — `rtj-metrics/v1` (from `rtjc run
/// --metrics`), `rtj-checker-metrics/v1` (from `rtjc check --profile` or
/// `check --stats --format json`), `rtj-fig12/v1` (from `rtjc fig12
/// --format json`), and `rtj-check-bench/v1` (from `rtjc bench
/// incremental:N`). Given both a checker and a runtime document, a
/// combined static-cost vs. dynamic-checks-elided section follows the
/// per-document reports.
fn report_cmd(args: &[String]) -> ExitCode {
    let paths: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if paths.is_empty() {
        eprintln!("usage: rtjc report <snapshot.json>...");
        return ExitCode::FAILURE;
    }
    let mut checker: Option<rtj_types::CheckerSnapshot> = None;
    let mut runtime: Option<MetricsSnapshot> = None;
    let mut out = String::new();
    for (i, path) in paths.iter().enumerate() {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if i > 0 {
            out.push('\n');
        }
        match doc.get("schema").and_then(Json::as_str) {
            Some(rtj_runtime::METRICS_SCHEMA) => match MetricsSnapshot::from_json(&doc) {
                Ok(snap) => {
                    out += &snap.render_report();
                    match &mut runtime {
                        Some(agg) => agg.merge(&snap),
                        None => runtime = Some(snap),
                    }
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Some(rtj_types::CHECKER_METRICS_SCHEMA) => {
                match rtj_types::CheckerSnapshot::from_json(&doc) {
                    Ok(snap) => {
                        out += &snap.render_report();
                        checker = Some(snap);
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(rtj_corpus::FIG12_SCHEMA) => match render_fig12_document(&doc) {
                Ok(report) => out += &report,
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Some(rtj_server::LOAD_SCHEMA) => match rtj_server::LoadReport::from_json(&doc) {
                Ok(report) => {
                    out += &report.render_report();
                    // Feed the per-mode merged snapshots into the runtime
                    // aggregate so a load doc composes with a checker doc
                    // in the combined static/dynamic view.
                    for (_, snap) in &report.mode_metrics {
                        match &mut runtime {
                            Some(agg) => agg.merge(snap),
                            None => runtime = Some(snap.clone()),
                        }
                    }
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Some(rtj_server::SERVE_BENCH_SCHEMA) => {
                match rtj_server::ServeBenchReport::from_json(&doc) {
                    Ok(report) => {
                        out += &report.render_report();
                        for (_, snap) in &report.overload.mode_metrics {
                            match &mut runtime {
                                Some(agg) => agg.merge(snap),
                                None => runtime = Some(snap.clone()),
                            }
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(rtj_types::CHECK_BENCH_SCHEMA) => {
                match rtj_types::CheckBenchReport::from_json(&doc) {
                    Ok(report) => out += &report.render_report(),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(rtj_server::SERVER_TRACE_SCHEMA) => {
                match rtj_server::ServerTrace::from_json(&doc) {
                    Ok(trace) => out += &trace.render_report(),
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Some(rtj_server::TIMELINE_SCHEMA) => match rtj_server::Timeline::from_json(&doc) {
                Ok(timeline) => out += &timeline.render_report(),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                let supported = SUPPORTED_SCHEMAS.join("`, `");
                match other {
                    Some(name) => eprintln!(
                        "{path}: unknown schema `{name}`; supported schemas: `{supported}`"
                    ),
                    None => eprintln!(
                        "{path}: missing string `schema` field; supported schemas: `{supported}`"
                    ),
                }
                return ExitCode::FAILURE;
            }
        }
    }
    if let (Some(ck), Some(rt)) = (&checker, &runtime) {
        out.push('\n');
        out += &render_combined(ck, rt);
    }
    print!("{out}");
    ExitCode::SUCCESS
}

/// The unified observability view: what the static checker spent (cache
/// traffic, wall time) against what that spending bought at run time
/// (dynamic checks elided and the virtual cycles they would have cost).
fn render_combined(ck: &rtj_types::CheckerSnapshot, rt: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("combined static/dynamic view\n");
    let queries: u64 = ck.judgments.iter().map(|(_, j)| j.hits + j.misses).sum();
    let evals: u64 = ck.judgments.iter().map(|(_, j)| j.evals).sum();
    let _ = writeln!(
        out,
        "  static cost     : {queries} judgment queries ({evals} deduced), {:?} wall",
        ck.elapsed
    );
    let performed = rt.checks_performed();
    let elided = rt.checks_elided();
    let _ = writeln!(
        out,
        "  dynamic effect  : {elided} checks elided, {performed} performed ({} mode)",
        rt.mode.name()
    );
    let total = performed + elided;
    if total > 0 {
        let _ = writeln!(
            out,
            "  elision rate    : {:.1}% of candidate checks discharged statically",
            elided as f64 / total as f64 * 100.0
        );
    }
    if elided > 0 {
        let _ = writeln!(
            out,
            "  leverage        : {:.2} checks elided per judgment query",
            elided as f64 / queries.max(1) as f64
        );
    }
    out
}

/// Renders an `rtj-fig12/v1` document: the Figure-12 table reconstructed
/// from the stored rows, followed by the per-check-kind elision report
/// aggregated over every row's embedded dynamic-run snapshot.
fn render_fig12_document(doc: &Json) -> Result<String, String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("missing `rows` array")?;
    let mut out = String::from(
        "Figure 12: Dynamic Checking Overhead (from rtj-fig12/v1 snapshot)\n\
         program     static-cyc   dynamic-cyc   overhead   paper   checks   elided\n",
    );
    let mut aggregate: Option<MetricsSnapshot> = None;
    for (i, row) in rows.iter().enumerate() {
        let field = |key: &str| {
            row.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("row {i}: missing `{key}`"))
        };
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i}: missing `name`"))?;
        let overhead = row
            .get("overhead")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("row {i}: missing `overhead`"))?;
        let paper = match row.get("paper_overhead").and_then(Json::as_f64) {
            Some(p) => format!("{p:.2}"),
            None => "—".to_string(),
        };
        out += &format!(
            "{:<10} {:>11} {:>13} {:>10.2} {:>7} {:>8} {:>8}\n",
            name,
            field("static_cycles")?,
            field("dynamic_cycles")?,
            overhead,
            paper,
            field("checks")?,
            field("elided")?,
        );
        let dm = row
            .get("dynamic_metrics")
            .ok_or_else(|| format!("row {i}: missing `dynamic_metrics`"))?;
        let snap = MetricsSnapshot::from_json(dm)
            .map_err(|e| format!("row {i}: bad dynamic_metrics: {e}"))?;
        match &mut aggregate {
            Some(agg) => agg.merge(&snap),
            None => aggregate = Some(snap),
        }
    }
    if let Some(agg) = aggregate {
        out += "\nAggregate dynamic-run metrics (all rows)\n";
        out += &agg.render_report();
    }
    Ok(out)
}

/// Telemetry flags shared by `rtjc serve`/`load`/`servebench`:
/// `--telemetry[=FILE]` turns the flight recorder on (and optionally
/// writes the trace document to FILE plus the timeline to the sibling
/// `*.timeline.json`), `--trace-format chrome|jsonl` selects the trace
/// export (default: the versioned `rtj-server-trace/v1` document), and
/// `--tick-us N` sets the sampler period.
#[derive(Clone, Default)]
struct TelemetryCli {
    enabled: bool,
    file: Option<String>,
    format: Option<String>,
    tick_us: Option<u64>,
}

impl TelemetryCli {
    /// The [`rtj_server::TelemetryConfig`] to put in the serve config —
    /// `None` when `--telemetry` was not given.
    fn config(&self) -> Option<rtj_server::TelemetryConfig> {
        if !self.enabled {
            return None;
        }
        let mut cfg = rtj_server::TelemetryConfig::default();
        if let Some(us) = self.tick_us {
            cfg.tick = std::time::Duration::from_micros(us);
        }
        Some(cfg)
    }
}

/// Writes the flight-recorder documents requested by `--telemetry=FILE`:
/// the scheduling trace to FILE (versioned `rtj-server-trace/v1` by
/// default, Chrome `trace_event` JSON with `--trace-format chrome`,
/// JSONL with `jsonl`) and the `rtj-timeline/v1` document to the
/// sibling `*.timeline.json` (skipped when FILE is `-`).
fn write_telemetry(cli: &TelemetryCli, telemetry: &rtj_server::Telemetry) -> Result<(), String> {
    let Some(path) = &cli.file else {
        return Ok(());
    };
    let text = match cli.format.as_deref() {
        Some("chrome") => telemetry.trace.to_chrome_trace().render() + "\n",
        Some("jsonl") => telemetry.trace.to_trace_jsonl(),
        _ => telemetry.trace.render() + "\n",
    };
    write_output(path, &text)?;
    if path != "-" {
        let sibling = match path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.timeline.json"),
            None => format!("{path}.timeline.json"),
        };
        write_output(&sibling, &(telemetry.timeline.render() + "\n"))?;
    }
    Ok(())
}

/// Flags shared by `rtjc serve` and `rtjc load`: everything that shapes
/// the request mix and the executor, plus the [`TelemetryCli`] flight
/// recorder flags. Returns the parsed [`rtj_server::ServeConfig`]
/// (telemetry already applied), the telemetry flags, and the leftover
/// command-specific flags.
type ServeFlags = (rtj_server::ServeConfig, TelemetryCli, Vec<String>);

/// Parses the shared serve/load/servebench flags (see [`ServeFlags`]).
fn parse_serve_flags(args: &[String]) -> Result<ServeFlags, String> {
    use rtj_server::ServeConfig;
    let mut cfg = ServeConfig::default();
    let mut telemetry = TelemetryCli::default();
    let mut rest = Vec::new();
    let mut it = args.iter();
    let next_value = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} expects a value"))
    };
    while let Some(a) = it.next() {
        let (flag, value) = match a.split_once('=') {
            Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
            _ => (a.clone(), None),
        };
        let value_of = |it: &mut std::slice::Iter<String>| match &value {
            Some(v) => Ok(v.clone()),
            None => next_value(it, &flag),
        };
        match flag.as_str() {
            "--workers" => {
                cfg.workers = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--workers expects a number".to_string())?;
            }
            "--queue-capacity" => {
                cfg.queue_capacity = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--queue-capacity expects a number".to_string())?;
            }
            "--variants" => {
                cfg.variants = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--variants expects a number".to_string())?;
            }
            "--programs" => {
                cfg.programs = value_of(&mut it)?.split(',').map(str::to_string).collect();
            }
            "--modes" => {
                cfg.modes = value_of(&mut it)?
                    .split(',')
                    .map(|m| CheckMode::parse(m).ok_or_else(|| format!("unknown mode `{m}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--engine" => {
                let v = value_of(&mut it)?;
                cfg.engines = if v == "both" {
                    vec![Engine::Vm, Engine::Tree]
                } else {
                    vec![engine_from_str(&v).ok_or_else(|| {
                        format!("unknown engine `{v}`; expected `tree`, `vm`, or `both`")
                    })?]
                };
            }
            "--deadline-us" => {
                let us: u64 = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--deadline-us expects a number".to_string())?;
                cfg.deadline = Some(std::time::Duration::from_micros(us));
            }
            "--stall-us" => {
                cfg.stall_us = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--stall-us expects a number".to_string())?;
            }
            "--telemetry" => {
                // Bare `--telemetry` enables the recorder; `=FILE` also
                // writes the trace + timeline documents.
                telemetry.enabled = true;
                telemetry.file = value.clone();
            }
            "--trace-format" => {
                let v = value_of(&mut it)?;
                if v != "chrome" && v != "jsonl" {
                    return Err(format!(
                        "unknown trace format `{v}`; expected `chrome` or `jsonl`"
                    ));
                }
                telemetry.format = Some(v);
            }
            "--tick-us" => {
                let us: u64 = value_of(&mut it)?
                    .parse()
                    .map_err(|_| "--tick-us expects a number".to_string())?;
                if us == 0 {
                    return Err("--tick-us must be positive".into());
                }
                telemetry.tick_us = Some(us);
            }
            _ => {
                rest.push(a.clone());
                if let (None, Some(v)) = (&value, it.clone().next()) {
                    // Preserve space-separated values for the caller.
                    if flag.starts_with("--") && !v.starts_with("--") {
                        rest.push(it.next().unwrap().clone());
                    }
                }
            }
        }
    }
    if !telemetry.enabled && (telemetry.format.is_some() || telemetry.tick_us.is_some()) {
        return Err("--trace-format/--tick-us require --telemetry".into());
    }
    cfg.telemetry = telemetry.config();
    Ok((cfg, telemetry, rest))
}

/// Emits an [`rtj_server::LoadReport`]: human report to stdout (text) or
/// the `rtj-load/v1` JSON document (`--format json`), with `--out FILE`
/// additionally writing the JSON document to a file.
fn emit_load_report(
    report: &rtj_server::LoadReport,
    json: bool,
    out_path: Option<&str>,
) -> ExitCode {
    if let Some(path) = out_path {
        if let Err(e) = write_output(path, &(report.render() + "\n")) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if json {
        if out_path != Some("-") {
            println!("{}", report.render());
        }
    } else {
        print!("{}", report.render_report());
    }
    ExitCode::SUCCESS
}

/// Parsed serve/load tail flags: `--format json`?, `--out FILE`,
/// `--sessions FILE`, and the values of the caller-named numeric flags,
/// in the order they were named.
type TailFlags = (bool, Option<String>, Option<String>, Vec<Option<f64>>);

/// Command-specific tail flags of serve/load: `--format`, `--out`,
/// `--sessions`, and any numeric flags the caller names (e.g.
/// `--rounds`, `--rate`). Returns (json, out, sessions, named values) or
/// an error on leftovers.
fn parse_tail_flags(rest: &[String], named: &[&str]) -> Result<TailFlags, String> {
    let json = parse_format(rest)?;
    let mut out = None;
    let mut sessions = None;
    let mut values: Vec<Option<f64>> = vec![None; named.len()];
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        let (flag, inline) = match a.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (a.clone(), None),
        };
        let value_of = |it: &mut std::slice::Iter<String>| -> Result<String, String> {
            match &inline {
                Some(v) => Ok(v.clone()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} expects a value")),
            }
        };
        match flag.as_str() {
            "--format" => {
                value_of(&mut it)?;
            }
            "--out" => out = Some(value_of(&mut it)?),
            "--sessions" => sessions = Some(value_of(&mut it)?),
            f => {
                if let Some(idx) = named.iter().position(|n| *n == f) {
                    let v = value_of(&mut it)?;
                    values[idx] = Some(v.parse().map_err(|_| format!("{f} expects a number"))?);
                } else {
                    return Err(format!("unknown flag `{f}`"));
                }
            }
        }
    }
    Ok((json, out, sessions, values))
}

/// Writes one line per **executed** session — its deterministic key — so
/// two runs at different worker counts can be compared byte-for-byte
/// (`diff`), the determinism witness the CI worker-sweep smoke uses.
fn write_sessions_file(path: &str, results: &[rtj_server::SessionResult]) -> Result<(), String> {
    let mut text = String::new();
    for r in results.iter().filter(|r| r.shed.is_none()) {
        text.push_str(&r.deterministic_key());
        text.push('\n');
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// `rtjc serve`: run complete request-mix rounds on the multi-tenant
/// server, unpaced — the saturation benchmark. Emits `rtj-load/v1`.
fn serve_cmd(args: &[String]) -> ExitCode {
    let run = || -> Result<ExitCode, String> {
        let (cfg, telemetry, rest) = parse_serve_flags(args)?;
        let (json, out, sessions, values) = parse_tail_flags(&rest, &["--rounds"])?;
        let rounds = values[0].unwrap_or(8.0) as u64;
        let start = std::time::Instant::now();
        let outcome = rtj_server::run_batch(&cfg, rounds).map_err(|e| e.to_string())?;
        let elapsed_ms = start.elapsed().as_millis().max(1) as u64;
        if let Some(path) = &sessions {
            write_sessions_file(path, &outcome.results)?;
        }
        if let Some(t) = &outcome.telemetry {
            write_telemetry(&telemetry, t)?;
        }
        let workload = format!("{} x{}", cfg.programs.join(","), cfg.variants);
        let report = rtj_server::LoadReport::from_serve(&outcome, workload, 0.0, elapsed_ms);
        Ok(emit_load_report(&report, json, out.as_deref()))
    };
    run().unwrap_or_else(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// `rtjc load`: open-loop Poisson arrivals at `--rate` sessions/s for
/// `--duration-ms`, latency anchored to scheduled arrivals. Emits
/// `rtj-load/v1`.
fn load_cmd(args: &[String]) -> ExitCode {
    let run = || -> Result<ExitCode, String> {
        let (cfg, telemetry, rest) = parse_serve_flags(args)?;
        let (json, out, sessions, values) =
            parse_tail_flags(&rest, &["--rate", "--duration-ms", "--seed"])?;
        let plan = rtj_server::LoadPlan {
            rate_hz: values[0].unwrap_or(2000.0),
            duration: std::time::Duration::from_millis(values[1].unwrap_or(1000.0) as u64),
            seed: values[2].unwrap_or(1.0) as u64,
        };
        if plan.rate_hz <= 0.0 {
            return Err("--rate must be positive".into());
        }
        let outcome = rtj_server::run_load(&cfg, &plan).map_err(|e| e.to_string())?;
        if let Some(path) = &sessions {
            write_sessions_file(path, &outcome.serve.results)?;
        }
        if let Some(t) = &outcome.serve.telemetry {
            write_telemetry(&telemetry, t)?;
        }
        let workload = format!("{} x{}", cfg.programs.join(","), cfg.variants);
        let report = rtj_server::LoadReport::from_load(&outcome, workload);
        Ok(emit_load_report(&report, json, out.as_deref()))
    };
    run().unwrap_or_else(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// `rtjc servebench`: regenerate the checked-in `rtj-serve-bench/v1`
/// serving baseline (`BENCH_serve.json`). Two parts:
///
/// 1. **Worker sweep** — the same fixed saturation batch (`--rounds`
///    complete mix rounds, no pacing, no shedding) at 1/2/4/8 workers,
///    with a simulated downstream stall per session (`--stall-us`,
///    default 250) so the sweep measures executor concurrency rather
///    than host core count. Each row records throughput and an FNV-1a
///    fingerprint over the deterministic per-session results; equal
///    fingerprints prove byte-identity across worker counts.
/// 2. **Overload row** — an open-loop run far past the knee (`--rate`,
///    default 60000/s for `--duration-ms`, default 250) with a
///    per-session deadline (`--deadline-us`, default 20000) so overload
///    surfaces as a measured `sessions.shed` count instead of unbounded
///    queue growth.
fn servebench_cmd(args: &[String]) -> ExitCode {
    let run = || -> Result<ExitCode, String> {
        let (mut cfg, telemetry, rest) = parse_serve_flags(args)?;
        let (json, out, sessions, values) =
            parse_tail_flags(&rest, &["--rounds", "--rate", "--duration-ms", "--seed"])?;
        if sessions.is_some() {
            return Err("--sessions applies to `serve`/`load`, not `servebench`".into());
        }
        let rounds = values[0].unwrap_or(40.0) as u64;
        let rate_hz = values[1].unwrap_or(60000.0);
        let duration = std::time::Duration::from_millis(values[2].unwrap_or(250.0) as u64);
        let seed = values[3].unwrap_or(1.0) as u64;

        // The sweep: deterministic fixed workload, no shedding, stalls on.
        let mut sweep_cfg = cfg.clone();
        sweep_cfg.deadline = None;
        if sweep_cfg.stall_us == 0 {
            sweep_cfg.stall_us = 250;
        }
        let mut rows = Vec::new();
        for workers in [1usize, 2, 4, 8] {
            sweep_cfg.workers = workers;
            let start = std::time::Instant::now();
            let outcome = rtj_server::run_batch(&sweep_cfg, rounds).map_err(|e| e.to_string())?;
            let duration_ms = start.elapsed().as_millis().max(1) as u64;
            let executed = outcome.results.iter().filter(|r| r.shed.is_none()).count() as u64;
            rows.push(rtj_server::SweepRow {
                workers,
                sessions: executed,
                duration_ms,
                throughput_hz: executed as f64 * 1000.0 / duration_ms as f64,
                stolen: outcome.stats.stolen,
                fingerprint: rtj_server::results_fingerprint(&outcome.results),
            });
        }

        // The overload row: same shape as the historical BENCH_serve
        // baseline (2 workers unless overridden), now with shedding.
        if cfg.workers == 0 {
            cfg.workers = 2;
        }
        if cfg.deadline.is_none() {
            cfg.deadline = Some(std::time::Duration::from_micros(20_000));
        }
        let plan = rtj_server::LoadPlan {
            rate_hz,
            duration,
            seed,
        };
        let outcome = rtj_server::run_load(&cfg, &plan).map_err(|e| e.to_string())?;
        if let Some(t) = &outcome.serve.telemetry {
            // `--telemetry=FILE` exports the overload run's documents.
            // The sweep runs above also recorded (cfg.telemetry is set
            // before the clone), so their fingerprints witness that the
            // instrumented path leaves results byte-identical.
            write_telemetry(&telemetry, t)?;
        }
        let workload = format!("{} x{}", cfg.programs.join(","), cfg.variants);
        let overload = rtj_server::LoadReport::from_load(&outcome, workload);

        let report = rtj_server::ServeBenchReport {
            overload,
            sweep_rounds: rounds,
            sweep_stall_us: sweep_cfg.stall_us,
            rows,
        };
        if let Some(path) = &out {
            if let Err(e) = write_output(path, &(report.render() + "\n")) {
                return Err(e.to_string());
            }
        }
        if json {
            if out.as_deref() != Some("-") {
                println!("{}", report.render());
            }
        } else {
            print!("{}", report.render_report());
        }
        Ok(ExitCode::SUCCESS)
    };
    run().unwrap_or_else(|e| {
        eprintln!("{e}");
        ExitCode::FAILURE
    })
}

/// Maps an `--engine` value to an [`Engine`].
fn engine_from_str(v: &str) -> Option<Engine> {
    match v {
        "tree" => Some(Engine::Tree),
        "vm" => Some(Engine::Vm),
        _ => None,
    }
}

/// Parses `--engine tree|vm` (both forms); defaults to the VM.
fn parse_engine(args: &[String]) -> Result<Engine, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if let Some(v) = a.strip_prefix("--engine=") {
            v.to_string()
        } else if a == "--engine" {
            it.next()
                .cloned()
                .ok_or("--engine expects `tree` or `vm`")?
        } else {
            continue;
        };
        return engine_from_str(&value)
            .ok_or_else(|| format!("unknown engine `{value}`; expected `tree` or `vm`"));
    }
    Ok(Engine::default())
}

/// Parses `--format text|json` (both `--format json` and `--format=json`
/// forms); defaults to text.
fn parse_format(args: &[String]) -> Result<bool, String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if let Some(v) = a.strip_prefix("--format=") {
            v.to_string()
        } else if a == "--format" {
            it.next()
                .cloned()
                .ok_or("--format expects `text` or `json`")?
        } else {
            continue;
        };
        return match value.as_str() {
            "json" => Ok(true),
            "text" => Ok(false),
            other => Err(format!(
                "unknown format `{other}`; expected `text` or `json`"
            )),
        };
    }
    Ok(false)
}

/// Writes `text` to `path`, with `-` meaning stdout.
fn write_output(path: &str, text: &str) -> Result<(), String> {
    if path == "-" {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
    }
}

/// The checker counters a CLI-composed snapshot carries (wall time is
/// deliberately dropped — snapshots stay deterministic).
fn checker_metrics(s: &rtj_types::CheckStats) -> CheckerMetrics {
    CheckerMetrics {
        classes_checked: s.classes_checked as u64,
        methods_checked: s.methods_checked as u64,
        cache_hits: s.cache_hits(),
        cache_misses: s.cache_misses(),
        threads_used: s.threads_used as u64,
    }
}

fn print_stats(s: &rtj_types::CheckStats) {
    eprintln!("classes checked : {}", s.classes_checked);
    eprintln!("methods checked : {}", s.methods_checked);
    eprintln!(
        "judgment cache  : {} hits / {} misses ({:.1}% hit rate)",
        s.cache_hits(),
        s.cache_misses(),
        s.hit_rate() * 100.0
    );
    eprintln!(
        "  {:<10} {:>10} {:>10} {:>10} {:>9}",
        "family", "hits", "misses", "queries", "hit rate"
    );
    for (family, c) in s.judgments.families() {
        let queries = c.hits + c.misses;
        let rate = if queries > 0 {
            c.hits as f64 / queries as f64 * 100.0
        } else {
            0.0
        };
        eprintln!(
            "  {family:<10} {:>10} {:>10} {:>10} {:>8.1}%",
            c.hits, c.misses, queries, rate
        );
    }
    eprintln!("threads used    : {}", s.threads_used);
    eprintln!("wall time       : {:?}", s.elapsed);
}

fn with_file(args: &[String], f: impl FnOnce(&str) -> ExitCode) -> ExitCode {
    let Some(path) = args.iter().skip(1).find(|a| !a.starts_with("--")) else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    match std::fs::read_to_string(path) {
        Ok(src) => f(&src),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_build_error(src: &str, e: &rtj_interp::BuildError) {
    match e {
        rtj_interp::BuildError::Parse(p) => {
            eprintln!("{}", rtj_lang::diag::render(src, p.span, &p.message));
        }
        rtj_interp::BuildError::Type(errs) => {
            for t in errs {
                eprintln!("{}", rtj_lang::diag::render(src, t.span, &t.message));
            }
        }
    }
}
