//! `rtjc` — the command-line front end.
//!
//! ```text
//! rtjc check <file.rtj>        type-check a program
//! rtjc check --stats <file>    …and print checker-pipeline statistics
//! rtjc check --jobs N <file>   …with N worker threads (1 = serial, 0 = auto)
//! rtjc run <file.rtj>          check then run (static mode)
//! rtjc run --dynamic <file>    run with the RTSJ dynamic checks
//! rtjc fmt <file.rtj>          parse and pretty-print
//! rtjc graph <file.rtj>        run and emit the ownership graph (DOT)
//! rtjc lower <file.rtj>        translate to RTSJ Java (Section 2.6)
//! rtjc fig11                   regenerate paper Figure 11
//! rtjc fig12 [--smoke]         regenerate paper Figure 12
//! rtjc bench <name>            print a corpus program's source
//! ```

use rtj_interp::{build, run_checked, RunConfig};
use rtj_runtime::CheckMode;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str);
    match cmd {
        Some("check") => check_cmd(&args[1..]),
        Some("run") => {
            let dynamic = args.iter().any(|a| a == "--dynamic");
            with_file(&args, |src| match build(src) {
                Ok(checked) => {
                    let mode = if dynamic {
                        CheckMode::Dynamic
                    } else {
                        CheckMode::Static
                    };
                    let out = run_checked(&checked, RunConfig::new(mode));
                    for line in &out.trace {
                        println!("{line}");
                    }
                    eprintln!(
                        "[{} cycles, {} objects, {} checks, {:?} wall]",
                        out.cycles,
                        out.stats.objects_allocated,
                        out.stats.store_checks + out.stats.load_checks,
                        out.wall
                    );
                    match out.error {
                        None => ExitCode::SUCCESS,
                        Some(e) => {
                            eprintln!("runtime error: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    report_build_error(src, &e);
                    ExitCode::FAILURE
                }
            })
        }
        Some("fmt") => with_file(&args, |src| match rtj_lang::parse_program(src) {
            Ok(p) => {
                print!("{}", rtj_lang::pretty_program(&p));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{}", rtj_lang::diag::render(src, e.span, &e.message));
                ExitCode::FAILURE
            }
        }),
        Some("graph") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                let mut cfg = RunConfig::new(CheckMode::Static);
                cfg.capture_graph = true;
                let out = run_checked(&checked, cfg);
                if let Some(dot) = out.graph {
                    print!("{dot}");
                }
                match out.error {
                    None => ExitCode::SUCCESS,
                    Some(e) => {
                        eprintln!("runtime error: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        Some("advise") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                let out = run_checked(&checked, RunConfig::new(CheckMode::Static));
                if let Some(e) = out.error {
                    eprintln!("runtime error: {e}");
                    return ExitCode::FAILURE;
                }
                println!("LT sizing advice (peak usage observed on this run)");
                println!(
                    "{:<24} {:>10} {:>10}   suggestion",
                    "region", "peak", "capacity"
                );
                let mut any = false;
                for (label, policy, peak, capacity) in &out.region_peaks {
                    // Only user LT regions: immortal is LT-like but unbounded.
                    if !matches!(policy, rtj_runtime::AllocPolicy::Lt { .. }) || label == "immortal"
                    {
                        continue;
                    }
                    any = true;
                    let suggested = ((*peak as f64 * 1.25) as u64 + 63)
                        .next_power_of_two()
                        .max(64);
                    let usage = *peak as f64 / (*capacity).max(1) as f64;
                    let note = if usage > 0.9 {
                        format!("raise to LT({suggested}) — within 10% of the bound")
                    } else if (*capacity as f64) > suggested.max(1) as f64 * 4.0 {
                        format!("LT({suggested}) would do — over-provisioned")
                    } else {
                        "ok".to_string()
                    };
                    println!("{label:<24} {peak:>10} {capacity:>10}   {note}");
                }
                if !any {
                    println!("(no LT regions in this program)");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        Some("lower") => with_file(&args, |src| match build(src) {
            Ok(checked) => {
                print!("{}", rtj_types::lower::lower_to_rtsj(&checked));
                ExitCode::SUCCESS
            }
            Err(e) => {
                report_build_error(src, &e);
                ExitCode::FAILURE
            }
        }),
        Some("fig11") => {
            print!("{}", rtj_corpus::render_fig11(&rtj_corpus::fig11()));
            ExitCode::SUCCESS
        }
        Some("fig12") => {
            let scale = if args.iter().any(|a| a == "--smoke") {
                rtj_corpus::Scale::Smoke
            } else {
                rtj_corpus::Scale::Paper
            };
            print!("{}", rtj_corpus::render_fig12(&rtj_corpus::fig12(scale)));
            ExitCode::SUCCESS
        }
        Some("bench") => match args.get(1) {
            Some(name) => {
                let benches = rtj_corpus::all(rtj_corpus::Scale::Paper);
                match benches.iter().find(|b| b.name == name) {
                    Some(b) => {
                        print!("{}", b.source);
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!(
                            "unknown benchmark `{name}`; available: {}",
                            benches
                                .iter()
                                .map(|b| b.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        ExitCode::FAILURE
                    }
                }
            }
            None => {
                eprintln!("usage: rtjc bench <name>");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: rtjc <check|run|fmt|fig11|fig12|bench> [args]\n\
                 \n\
                 check [--stats] [--jobs N] <file>  type-check a program\n\
                 run [--dynamic] <file>  check then interpret\n\
                 fmt <file>          parse and pretty-print\n\
                 graph <file>        run and emit the ownership graph (DOT, Fig. 6)\n\
                 lower <file>        translate to RTSJ Java (paper Section 2.6)\n\
                 advise <file>       run once and suggest LT region sizes\n\
                 fig11               regenerate paper Figure 11\n\
                 fig12 [--smoke]     regenerate paper Figure 12\n\
                 bench <name>        print a corpus program"
            );
            ExitCode::FAILURE
        }
    }
}

/// `rtjc check [--stats] [--jobs N] <file>`: type-check, optionally
/// reporting pipeline statistics and controlling the worker-thread count
/// (`--jobs 1` forces the serial driver, `--jobs 0` one thread per core).
fn check_cmd(args: &[String]) -> ExitCode {
    let mut stats = false;
    let mut jobs = 0usize;
    let mut file = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--stats" {
            stats = true;
        } else if let Some(n) = a.strip_prefix("--jobs=") {
            match n.parse() {
                Ok(n) => jobs = n,
                Err(_) => {
                    eprintln!("--jobs expects a number, got `{n}`");
                    return ExitCode::FAILURE;
                }
            }
        } else if a == "--jobs" {
            match it.next().map(|n| n.parse()) {
                Some(Ok(n)) => jobs = n,
                _ => {
                    eprintln!("--jobs expects a number");
                    return ExitCode::FAILURE;
                }
            }
        } else if a.starts_with("--") {
            eprintln!("unknown flag `{a}`; usage: rtjc check [--stats] [--jobs N] <file>");
            return ExitCode::FAILURE;
        } else {
            file = Some(a.clone());
        }
    }
    let Some(path) = file else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match rtj_lang::parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{}", rtj_lang::diag::render(&src, e.span, &e.message));
            return ExitCode::FAILURE;
        }
    };
    match rtj_types::check_program_in(program, &rtj_types::CheckOptions { jobs }) {
        Ok(checked) => {
            println!("ok");
            if stats {
                print_stats(&checked.stats);
            }
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for t in &errs {
                eprintln!("{}", rtj_lang::diag::render(&src, t.span, &t.message));
            }
            ExitCode::FAILURE
        }
    }
}

fn print_stats(s: &rtj_types::CheckStats) {
    eprintln!("classes checked : {}", s.classes_checked);
    eprintln!("methods checked : {}", s.methods_checked);
    eprintln!(
        "judgment cache  : {} hits / {} misses ({:.1}% hit rate)",
        s.cache_hits,
        s.cache_misses,
        s.hit_rate() * 100.0
    );
    eprintln!("threads used    : {}", s.threads_used);
    eprintln!("wall time       : {:?}", s.elapsed);
}

fn with_file(args: &[String], f: impl FnOnce(&str) -> ExitCode) -> ExitCode {
    let Some(path) = args.iter().skip(1).find(|a| !a.starts_with("--")) else {
        eprintln!("missing file argument");
        return ExitCode::FAILURE;
    };
    match std::fs::read_to_string(path) {
        Ok(src) => f(&src),
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn report_build_error(src: &str, e: &rtj_interp::BuildError) {
    match e {
        rtj_interp::BuildError::Parse(p) => {
            eprintln!("{}", rtj_lang::diag::render(src, p.span, &p.message));
        }
        rtj_interp::BuildError::Type(errs) => {
            for t in errs {
                eprintln!("{}", rtj_lang::diag::render(src, t.span, &t.message));
            }
        }
    }
}
