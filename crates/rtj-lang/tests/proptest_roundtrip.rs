//! Property: pretty-printing is a fixpoint under re-parsing.
//!
//! For any generated expression or program `p`:
//! `pretty(parse(pretty(p))) == pretty(p)`. This catches precedence bugs,
//! missing parentheses, and any surface form the printer can emit but the
//! parser cannot read.

use proptest::prelude::*;
use rtj_lang::ast::*;
use rtj_lang::parser::{parse_expr, parse_program};
use rtj_lang::pretty::{pretty_expr, pretty_program};
use rtj_lang::span::Span;

fn ident(name: String) -> Ident {
    Ident::synthetic(name)
}

fn var_name() -> impl Strategy<Value = String> {
    // Avoid keywords and intrinsic names.
    "[a-z][a-z0-9]{0,4}".prop_filter("keyword-free", |s| {
        rtj_lang::token::TokenKind::keyword(s).is_none() && Intrinsic::from_name(s).is_none()
    })
}

fn owner_ref() -> impl Strategy<Value = OwnerRef> {
    prop_oneof![
        var_name().prop_map(|n| OwnerRef::Name(ident(n))),
        Just(OwnerRef::This(Span::DUMMY)),
        Just(OwnerRef::Heap(Span::DUMMY)),
        Just(OwnerRef::Immortal(Span::DUMMY)),
        Just(OwnerRef::InitialRegion(Span::DUMMY)),
    ]
}

fn expr_strategy() -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(|n| Expr::Int(n, Span::DUMMY)),
        any::<bool>().prop_map(|b| Expr::Bool(b, Span::DUMMY)),
        Just(Expr::Null(Span::DUMMY)),
        Just(Expr::This(Span::DUMMY)),
        var_name().prop_map(|n| Expr::Var(ident(n))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        let bin_op = prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Lt),
            Just(BinOp::Eq),
            Just(BinOp::And),
            Just(BinOp::Or),
        ];
        prop_oneof![
            (bin_op, inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
                span: Span::DUMMY,
            }),
            (inner.clone(), var_name()).prop_map(|(e, f)| Expr::Field {
                recv: Box::new(e),
                field: ident(f),
                span: Span::DUMMY,
            }),
            (
                inner.clone(),
                var_name(),
                prop::collection::vec(owner_ref(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(recv, m, owner_args, args)| Expr::Call {
                    recv: Box::new(recv),
                    method: ident(m),
                    owner_args,
                    args,
                    span: Span::DUMMY,
                }),
            (var_name(), prop::collection::vec(owner_ref(), 1..3)).prop_map(|(c, owners)| {
                Expr::New {
                    class: ClassType {
                        name: Ident::synthetic({
                            let mut s = c;
                            if let Some(f) = s.get_mut(0..1) {
                                f.make_ascii_uppercase();
                            }
                            s
                        }),
                        owners,
                        span: Span::DUMMY,
                    },
                    span: Span::DUMMY,
                }
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e),
                span: Span::DUMMY,
            }),
        ]
    })
    .boxed()
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let e = expr_strategy();
    prop_oneof![
        (var_name(), e.clone()).prop_map(|(n, init)| Stmt::Let {
            ty: None,
            name: ident(n),
            init,
            span: Span::DUMMY,
        }),
        (var_name(), e.clone()).prop_map(|(n, value)| Stmt::AssignLocal {
            name: ident(n),
            value,
            span: Span::DUMMY,
        }),
        (e.clone(), var_name(), e.clone()).prop_map(|(recv, f, value)| Stmt::AssignField {
            recv,
            field: ident(f),
            value,
            span: Span::DUMMY,
        }),
        e.clone().prop_map(Stmt::Expr),
        (
            e.clone(),
            prop::collection::vec(e.clone().prop_map(Stmt::Expr), 0..3)
        )
            .prop_map(|(cond, stmts)| Stmt::While {
                cond,
                body: Block {
                    stmts,
                    span: Span::DUMMY,
                },
                span: Span::DUMMY,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_pretty_parse_fixpoint(e in expr_strategy()) {
        let printed = pretty_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("printed form unparseable: {err}\n{printed}"));
        prop_assert_eq!(pretty_expr(&reparsed), printed);
    }

    #[test]
    fn program_pretty_parse_fixpoint(stmts in prop::collection::vec(stmt_strategy(), 0..6)) {
        let p = Program {
            classes: vec![],
            region_kinds: vec![],
            main: Block { stmts, span: Span::DUMMY },
        };
        let printed = pretty_program(&p);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|err| panic!("printed form unparseable: {err}\n{printed}"));
        prop_assert_eq!(pretty_program(&reparsed), printed);
    }
}
