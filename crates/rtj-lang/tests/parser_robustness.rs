//! Robustness: the lexer and parser never panic — arbitrary input yields
//! either a parse tree or a proper error with a sensible span.

use proptest::prelude::*;
use rtj_lang::parser::{parse_expr, parse_program};
use rtj_lang::span::LineMap;

/// Fragments biased toward the language's own syntax so the fuzzer
/// reaches deep parser states, not just the first error.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("class".to_string()),
        Just("regionKind".to_string()),
        Just("subregion".to_string()),
        Just("extends".to_string()),
        Just("SharedRegion".to_string()),
        Just("Owner".to_string()),
        Just("(RHandle<".to_string()),
        Just("RT fork".to_string()),
        Just("accesses".to_string()),
        Just("where".to_string()),
        Just("owns".to_string()),
        Just("outlives".to_string()),
        Just("let".to_string()),
        Just("while".to_string()),
        Just("if".to_string()),
        Just("return".to_string()),
        Just("new".to_string()),
        Just("this".to_string()),
        Just("null".to_string()),
        Just("heap".to_string()),
        Just("immortal".to_string()),
        Just("initialRegion".to_string()),
        Just("LT(8)".to_string()),
        Just("VT".to_string()),
        Just("NoRT".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just("=".to_string()),
        Just(".".to_string()),
        Just("&&".to_string()),
        Just("||".to_string()),
        Just("+".to_string()),
        Just("42".to_string()),
        "[a-z]{1,4}".prop_map(|s| s),
        Just("\"str\"".to_string()),
        Just("/* c */".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_fragments(parts in prop::collection::vec(fragment(), 0..40)) {
        let src = parts.join(" ");
        match parse_program(&src) {
            Ok(_) => {}
            Err(e) => {
                // The error span must be inside (or just past) the input.
                prop_assert!(e.span.start as usize <= src.len() + 1);
                // And renderable.
                let _ = rtj_lang::diag::render(&src, e.span, &e.message);
            }
        }
        let _ = parse_expr(&src);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(src in "[ -~\n]{0,200}") {
        let _ = parse_program(&src);
        let _ = parse_expr(&src);
        let _ = LineMap::new(&src);
    }
}
