//! Recursive-descent parser for the core language.
//!
//! The concrete syntax mirrors the paper's figures: owner-parameterized
//! classes (Fig. 5), `regionKind` declarations with portal fields and
//! subregions, region-creation blocks `(RHandle<r> h) { ... }` in all three
//! forms (local region, shared region with kind/policy, subregion entry),
//! `fork` / `RT fork`, `accesses` clauses, and `where` constraints.

use crate::ast::*;
use crate::intern::Symbol;
use crate::lexer::{lex, LexError};
use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the problem.
    pub span: Span,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use rtj_lang::parser::parse_program;
/// let p = parse_program("class A<Owner o> { int x; } { let A<heap> a = new A<heap>; }")?;
/// assert_eq!(p.classes.len(), 1);
/// # Ok::<(), rtj_lang::parser::ParseError>(())
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression (useful for tests and the REPL-ish CLI).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let e = p.expr()?;
    p.expect(&TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, ParseError> {
        if self.peek() == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected `{kind}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn ident(&mut self) -> Result<Ident, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let t = self.bump();
                Ok(Ident {
                    name: Symbol::intern(&name),
                    span: t.span,
                })
            }
            other => Err(self.err(format!("expected identifier, found `{other}`"))),
        }
    }

    // ---------------------------------------------------------------- program

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut classes = Vec::new();
        let mut region_kinds = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Class => classes.push(self.class_decl()?),
                TokenKind::RegionKind => region_kinds.push(self.region_kind_decl()?),
                _ => break,
            }
        }
        let main = self.block()?;
        self.expect(&TokenKind::Eof)?;
        Ok(Program {
            classes,
            region_kinds,
            main,
        })
    }

    // ------------------------------------------------------------------ decls

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let start = self.expect(&TokenKind::Class)?.span;
        let name = self.ident()?;
        let formals = if self.peek() == &TokenKind::Lt2 {
            self.owner_formals()?
        } else {
            Vec::new()
        };
        let extends = if self.eat(&TokenKind::Extends) {
            Some(self.class_type()?)
        } else {
            None
        };
        let where_clauses = self.where_clauses()?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            self.member(&mut fields, &mut methods)?;
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(ClassDecl {
            name,
            formals,
            extends,
            where_clauses,
            fields,
            methods,
            span: start.to(end),
        })
    }

    /// Parses either a field or a method: both start with a type followed by
    /// a name; a `(` or `<` after the name means method.
    fn member(
        &mut self,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<(), ParseError> {
        let start = self.span();
        let ty = self.ret_type()?;
        let name = self.ident()?;
        match self.peek() {
            TokenKind::Semi => {
                let end = self.bump().span;
                if matches!(ty, Type::Void(_)) {
                    return Err(ParseError {
                        message: "fields cannot have type `void`".into(),
                        span: start,
                    });
                }
                fields.push(FieldDecl {
                    ty,
                    name,
                    span: start.to(end),
                });
                Ok(())
            }
            TokenKind::LParen | TokenKind::Lt2 => {
                let formals = if self.peek() == &TokenKind::Lt2 {
                    self.owner_formals()?
                } else {
                    Vec::new()
                };
                self.expect(&TokenKind::LParen)?;
                let mut params = Vec::new();
                if self.peek() != &TokenKind::RParen {
                    loop {
                        let pty = self.ty()?;
                        let pname = self.ident()?;
                        params.push(Param {
                            ty: pty,
                            name: pname,
                        });
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let effects = if self.eat(&TokenKind::Accesses) {
                    let mut list = vec![self.owner_ref()?];
                    while self.eat(&TokenKind::Comma) {
                        list.push(self.owner_ref()?);
                    }
                    Some(list)
                } else {
                    None
                };
                let where_clauses = self.where_clauses()?;
                let body = self.block()?;
                let span = start.to(body.span);
                methods.push(MethodDecl {
                    ret: ty,
                    name,
                    formals,
                    params,
                    effects,
                    where_clauses,
                    body,
                    span,
                });
                Ok(())
            }
            other => Err(self.err(format!(
                "expected `;` (field) or `(`/`<` (method), found `{other}`"
            ))),
        }
    }

    fn region_kind_decl(&mut self) -> Result<RegionKindDecl, ParseError> {
        let start = self.expect(&TokenKind::RegionKind)?.span;
        let name = self.ident()?;
        let formals = if self.peek() == &TokenKind::Lt2 {
            self.owner_formals()?
        } else {
            Vec::new()
        };
        let extends = if self.eat(&TokenKind::Extends) {
            Some(self.kind_ann()?)
        } else {
            None
        };
        let where_clauses = self.where_clauses()?;
        self.expect(&TokenKind::LBrace)?;
        let mut portals = Vec::new();
        let mut subregions = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Subregion {
                subregions.push(self.subregion_decl()?);
            } else {
                let fstart = self.span();
                let ty = self.ty()?;
                let fname = self.ident()?;
                let fend = self.expect(&TokenKind::Semi)?.span;
                portals.push(FieldDecl {
                    ty,
                    name: fname,
                    span: fstart.to(fend),
                });
            }
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(RegionKindDecl {
            name,
            formals,
            extends,
            where_clauses,
            portals,
            subregions,
            span: start.to(end),
        })
    }

    /// `subregion Kind<o*> : LT(n) RT name;` (policy and thread tag required).
    fn subregion_decl(&mut self) -> Result<SubregionDecl, ParseError> {
        let start = self.expect(&TokenKind::Subregion)?.span;
        let kind = self.kind_ann()?;
        self.expect(&TokenKind::Colon)?;
        let policy = self.policy()?;
        let thread = match self.peek() {
            TokenKind::Rt => {
                self.bump();
                ThreadTag::Rt
            }
            TokenKind::NoRt => {
                self.bump();
                ThreadTag::NoRt
            }
            other => {
                return Err(self.err(format!("expected `RT` or `NoRT`, found `{other}`")));
            }
        };
        let name = self.ident()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(SubregionDecl {
            kind,
            policy,
            thread,
            name,
            span: start.to(end),
        })
    }

    fn policy(&mut self) -> Result<Policy, ParseError> {
        match self.peek() {
            TokenKind::Lt => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let size = match self.peek().clone() {
                    TokenKind::Int(n) if n >= 0 => {
                        self.bump();
                        n as u64
                    }
                    other => {
                        return Err(self.err(format!(
                            "expected LT size (non-negative int), found `{other}`"
                        )));
                    }
                };
                self.expect(&TokenKind::RParen)?;
                Ok(Policy::Lt { size })
            }
            TokenKind::Vt => {
                self.bump();
                Ok(Policy::Vt)
            }
            other => Err(self.err(format!("expected `LT(size)` or `VT`, found `{other}`"))),
        }
    }

    // --------------------------------------------------- owners, kinds, types

    fn owner_formals(&mut self) -> Result<Vec<FormalOwner>, ParseError> {
        self.expect(&TokenKind::Lt2)?;
        let mut formals = Vec::new();
        loop {
            let kind = self.kind_ann()?;
            let name = self.ident()?;
            formals.push(FormalOwner { kind, name });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Gt)?;
        Ok(formals)
    }

    fn kind_ann(&mut self) -> Result<KindAnn, ParseError> {
        let id = self.ident()?;
        let s = id.span;
        let base = match id.name.as_str() {
            "Owner" => KindAnn::Owner(s),
            "ObjOwner" => KindAnn::ObjOwner(s),
            "Region" => KindAnn::Region(s),
            "GCRegion" => KindAnn::GcRegion(s),
            "NoGCRegion" => KindAnn::NoGcRegion(s),
            "LocalRegion" => KindAnn::LocalRegion(s),
            "SharedRegion" => KindAnn::SharedRegion(s),
            _ => {
                let owners = if self.peek() == &TokenKind::Lt2 {
                    self.owner_args()?
                } else {
                    Vec::new()
                };
                KindAnn::Named { name: id, owners }
            }
        };
        // `kind : LT` (without a size) denotes the LT-refined kind; a size
        // makes it a policy, which is handled by callers that expect one.
        if self.peek() == &TokenKind::Colon
            && self.peek_at(1) == &TokenKind::Lt
            && self.peek_at(2) != &TokenKind::LParen
        {
            self.bump();
            let lt = self.bump().span;
            return Ok(KindAnn::Lt(Box::new(base), lt));
        }
        Ok(base)
    }

    fn owner_args(&mut self) -> Result<Vec<OwnerRef>, ParseError> {
        self.expect(&TokenKind::Lt2)?;
        let mut owners = vec![self.owner_ref()?];
        while self.eat(&TokenKind::Comma) {
            owners.push(self.owner_ref()?);
        }
        self.expect(&TokenKind::Gt)?;
        Ok(owners)
    }

    fn owner_ref(&mut self) -> Result<OwnerRef, ParseError> {
        match self.peek().clone() {
            TokenKind::This => Ok(OwnerRef::This(self.bump().span)),
            TokenKind::Heap => Ok(OwnerRef::Heap(self.bump().span)),
            TokenKind::Immortal => Ok(OwnerRef::Immortal(self.bump().span)),
            TokenKind::InitialRegion => Ok(OwnerRef::InitialRegion(self.bump().span)),
            TokenKind::Rt => Ok(OwnerRef::Rt(self.bump().span)),
            TokenKind::Ident(_) => Ok(OwnerRef::Name(self.ident()?)),
            other => Err(self.err(format!("expected owner, found `{other}`"))),
        }
    }

    fn class_type(&mut self) -> Result<ClassType, ParseError> {
        let name = self.ident()?;
        let start = name.span;
        let (owners, end) = if self.peek() == &TokenKind::Lt2 {
            let owners = self.owner_args()?;
            (owners, self.prev_span())
        } else {
            (Vec::new(), start)
        };
        Ok(ClassType {
            name,
            owners,
            span: start.to(end),
        })
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.peek() {
            TokenKind::IntTy => Ok(Type::Int(self.bump().span)),
            TokenKind::BoolTy => Ok(Type::Bool(self.bump().span)),
            TokenKind::RHandle => {
                let start = self.bump().span;
                self.expect(&TokenKind::Lt2)?;
                let r = self.owner_ref()?;
                let end = self.expect(&TokenKind::Gt)?.span;
                Ok(Type::Handle(r, start.to(end)))
            }
            TokenKind::Ident(_) => Ok(Type::Class(self.class_type()?)),
            other => Err(self.err(format!("expected type, found `{other}`"))),
        }
    }

    fn ret_type(&mut self) -> Result<Type, ParseError> {
        if self.peek() == &TokenKind::Void {
            Ok(Type::Void(self.bump().span))
        } else {
            self.ty()
        }
    }

    fn where_clauses(&mut self) -> Result<Vec<Constraint>, ParseError> {
        if !self.eat(&TokenKind::Where) {
            return Ok(Vec::new());
        }
        let mut out = vec![self.constraint()?];
        while self.eat(&TokenKind::Comma) {
            out.push(self.constraint()?);
        }
        Ok(out)
    }

    fn constraint(&mut self) -> Result<Constraint, ParseError> {
        let lhs = self.owner_ref()?;
        let rel = match self.peek() {
            TokenKind::Owns => {
                self.bump();
                ConstraintRel::Owns
            }
            TokenKind::Outlives => {
                self.bump();
                ConstraintRel::Outlives
            }
            other => {
                return Err(self.err(format!("expected `owns` or `outlives`, found `{other}`")));
            }
        };
        let rhs = self.owner_ref()?;
        Ok(Constraint { lhs, rel, rhs })
    }

    // ------------------------------------------------------------- statements

    fn block(&mut self) -> Result<Block, ParseError> {
        let start = self.expect(&TokenKind::LBrace)?.span;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            stmts.push(self.stmt()?);
        }
        let end = self.expect(&TokenKind::RBrace)?.span;
        Ok(Block {
            stmts,
            span: start.to(end),
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::Let => self.let_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::While => self.while_stmt(),
            TokenKind::Return => self.return_stmt(),
            TokenKind::Fork => self.fork_stmt(false),
            TokenKind::Rt if self.peek_at(1) == &TokenKind::Fork => {
                self.bump();
                self.fork_stmt(true)
            }
            TokenKind::LParen if self.peek_at(1) == &TokenKind::RHandle => self.region_stmt(),
            _ => self.expr_or_assign_stmt(),
        }
    }

    fn let_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::Let)?.span;
        // Decide whether a type is present: `let T x = e;` vs `let x = e;`.
        let ty = match self.peek() {
            TokenKind::IntTy | TokenKind::BoolTy | TokenKind::RHandle => Some(self.ty()?),
            TokenKind::Ident(_) => match self.peek_at(1) {
                TokenKind::Ident(_) | TokenKind::Lt2 => Some(self.ty()?),
                _ => None,
            },
            _ => None,
        };
        let name = self.ident()?;
        self.expect(&TokenKind::Eq)?;
        let init = self.expr()?;
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::Let {
            ty,
            name,
            init,
            span: start.to(end),
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::If)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let then_blk = self.block()?;
        let (else_blk, end) = if self.eat(&TokenKind::Else) {
            if self.peek() == &TokenKind::If {
                // `else if` sugar: wrap the nested if in a block.
                let nested = self.if_stmt()?;
                let span = nested.span();
                (
                    Some(Block {
                        stmts: vec![nested],
                        span,
                    }),
                    span,
                )
            } else {
                let b = self.block()?;
                let s = b.span;
                (Some(b), s)
            }
        } else {
            (None, then_blk.span)
        };
        Ok(Stmt::If {
            cond,
            then_blk,
            else_blk,
            span: start.to(end),
        })
    }

    fn while_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::While)?.span;
        self.expect(&TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Stmt::While { cond, body, span })
    }

    fn return_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::Return)?.span;
        let value = if self.peek() == &TokenKind::Semi {
            None
        } else {
            Some(self.expr()?)
        };
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::Return {
            value,
            span: start.to(end),
        })
    }

    fn fork_stmt(&mut self, rt: bool) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::Fork)?.span;
        let call = self.expr()?;
        if !matches!(call, Expr::Call { .. }) {
            return Err(ParseError {
                message: "`fork` must be applied to a method invocation".into(),
                span: call.span(),
            });
        }
        let end = self.expect(&TokenKind::Semi)?.span;
        Ok(Stmt::Fork {
            rt,
            call,
            span: start.to(end),
        })
    }

    /// Parses the three region-block forms, all beginning `( RHandle <`:
    ///
    /// * `(RHandle<r> h) { ... }` — local region,
    /// * `(RHandle<Kind : POLICY r> h) { ... }` — new shared region,
    /// * `(RHandle<Kind r2> h2 = [new] h.sub) { ... }` — enter subregion.
    fn region_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.expect(&TokenKind::LParen)?.span;
        self.expect(&TokenKind::RHandle)?;
        self.expect(&TokenKind::Lt2)?;

        // Local region: a single identifier immediately closed by `>`.
        if matches!(self.peek(), TokenKind::Ident(_)) && self.peek_at(1) == &TokenKind::Gt {
            let region = self.ident()?;
            self.expect(&TokenKind::Gt)?;
            let handle = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            let body = self.block()?;
            let span = start.to(body.span);
            return Ok(Stmt::LocalRegion {
                region,
                handle,
                body,
                span,
            });
        }

        let kind = self.kind_ann()?;
        let policy = if self.eat(&TokenKind::Colon) {
            Some(self.policy()?)
        } else {
            None
        };
        let region = self.ident()?;
        self.expect(&TokenKind::Gt)?;
        let handle = self.ident()?;

        if self.eat(&TokenKind::Eq) {
            // Subregion entry.
            if policy.is_some() {
                return Err(ParseError {
                    message: "subregion entry cannot specify an allocation policy \
                              (it is fixed by the region-kind declaration)"
                        .into(),
                    span: start,
                });
            }
            let fresh = self.eat(&TokenKind::New);
            let parent = self.ident()?;
            self.expect(&TokenKind::Dot)?;
            let sub = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            let body = self.block()?;
            let span = start.to(body.span);
            return Ok(Stmt::EnterSubregion {
                kind,
                region,
                handle,
                fresh,
                parent,
                sub,
                body,
                span,
            });
        }

        self.expect(&TokenKind::RParen)?;
        let body = self.block()?;
        let span = start.to(body.span);
        Ok(Stmt::NewRegion {
            kind,
            policy: policy.unwrap_or(Policy::Vt),
            region,
            handle,
            body,
            span,
        })
    }

    fn expr_or_assign_stmt(&mut self) -> Result<Stmt, ParseError> {
        let start = self.span();
        let e = self.expr()?;
        if self.eat(&TokenKind::Eq) {
            let value = self.expr()?;
            let end = self.expect(&TokenKind::Semi)?.span;
            let span = start.to(end);
            return match e {
                Expr::Var(name) => Ok(Stmt::AssignLocal { name, value, span }),
                Expr::Field { recv, field, .. } => Ok(Stmt::AssignField {
                    recv: *recv,
                    field,
                    value,
                    span,
                }),
                other => Err(ParseError {
                    message: "invalid assignment target (expected variable or field)".into(),
                    span: other.span(),
                }),
            };
        }
        self.expect(&TokenKind::Semi)?;
        Ok(Stmt::Expr(e))
    }

    // ------------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.equality_expr()?;
        while self.peek() == &TokenKind::AndAnd {
            self.bump();
            let rhs = self.equality_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn equality_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::Ne => BinOp::Ne,
                _ => break,
            };
            self.bump();
            let rhs = self.comparison_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn comparison_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.additive_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Lt2 => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.additive_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn additive_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            TokenKind::Minus => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.to(e.span());
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    span,
                })
            }
            TokenKind::Bang => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.to(e.span());
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        while self.eat(&TokenKind::Dot) {
            let name = self.ident()?;
            if self.peek() == &TokenKind::LParen {
                e = self.finish_call(e, name, Vec::new())?;
            } else if self.peek() == &TokenKind::Lt2 && self.looks_like_owner_args() {
                let owner_args = self.owner_args()?;
                e = self.finish_call(e, name, owner_args)?;
            } else {
                let span = e.span().to(name.span);
                e = Expr::Field {
                    recv: Box::new(e),
                    field: name,
                    span,
                };
            }
        }
        Ok(e)
    }

    /// Disambiguates `a.m<o1,o2>(x)` (owner arguments) from `a.f < b`
    /// (comparison) by scanning ahead for `>` followed by `(` with only
    /// owner-ish tokens in between.
    fn looks_like_owner_args(&self) -> bool {
        let mut i = 1; // past the `<`
        loop {
            match self.peek_at(i) {
                TokenKind::Ident(_)
                | TokenKind::This
                | TokenKind::Heap
                | TokenKind::Immortal
                | TokenKind::InitialRegion
                | TokenKind::Rt
                | TokenKind::Comma => i += 1,
                TokenKind::Gt => return self.peek_at(i + 1) == &TokenKind::LParen,
                _ => return false,
            }
            if i > 64 {
                return false;
            }
        }
    }

    fn finish_call(
        &mut self,
        recv: Expr,
        method: Ident,
        owner_args: Vec<OwnerRef>,
    ) -> Result<Expr, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(&TokenKind::RParen)?.span;
        let span = recv.span().to(end);
        Ok(Expr::Call {
            recv: Box::new(recv),
            method,
            owner_args,
            args,
            span,
        })
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Int(n) => Ok(Expr::Int(n, self.bump().span)),
            TokenKind::True => Ok(Expr::Bool(true, self.bump().span)),
            TokenKind::False => Ok(Expr::Bool(false, self.bump().span)),
            TokenKind::Str(s) => Ok(Expr::Str(s, self.bump().span)),
            TokenKind::Null => Ok(Expr::Null(self.bump().span)),
            TokenKind::This => Ok(Expr::This(self.bump().span)),
            TokenKind::New => {
                let start = self.bump().span;
                let class = self.class_type()?;
                let span = start.to(class.span);
                Ok(Expr::New { class, span })
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if let Some(intrinsic) = Intrinsic::from_name(&name) {
                    if self.peek_at(1) == &TokenKind::LParen {
                        let start = self.bump().span;
                        self.expect(&TokenKind::LParen)?;
                        let mut args = Vec::new();
                        if self.peek() != &TokenKind::RParen {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        let end = self.expect(&TokenKind::RParen)?.span;
                        return Ok(Expr::IntrinsicCall {
                            intrinsic,
                            args,
                            span: start.to(end),
                        });
                    }
                }
                Ok(Expr::Var(self.ident()?))
            }
            other => Err(self.err(format!("expected expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_empty_main() {
        let p = parse_program("{ }").unwrap();
        assert!(p.classes.is_empty());
        assert!(p.main.stmts.is_empty());
    }

    #[test]
    fn parse_tstack_class() {
        let src = r#"
            class TStack<Owner stackOwner, Owner TOwner> {
                TNode<this, TOwner> head;
                void push(T<TOwner> value) {
                    let TNode<this, TOwner> newNode = new TNode<this, TOwner>;
                    newNode.init(value, this.head);
                    this.head = newNode;
                }
                T<TOwner> pop() {
                    if (this.head == null) { return null; }
                    let T<TOwner> value = this.head.value;
                    this.head = this.head.next;
                    return value;
                }
            }
            { }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.name.name, "TStack");
        assert_eq!(c.formals.len(), 2);
        assert_eq!(c.fields.len(), 1);
        assert_eq!(c.methods.len(), 2);
    }

    #[test]
    fn parse_region_blocks() {
        let src = r#"
            {
                (RHandle<r1> h1) {
                    (RHandle<r2> h2) {
                        let x = 1;
                    }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.main.stmts[0] {
            Stmt::LocalRegion {
                region,
                handle,
                body,
                ..
            } => {
                assert_eq!(region.name, "r1");
                assert_eq!(handle.name, "h1");
                assert!(matches!(body.stmts[0], Stmt::LocalRegion { .. }));
            }
            other => panic!("expected local region, got {other:?}"),
        }
    }

    #[test]
    fn parse_shared_region_and_subregion() {
        let src = r#"
            regionKind BufferRegion extends SharedRegion {
                subregion BufferSubRegion : LT(4096) NoRT b;
            }
            regionKind BufferSubRegion extends SharedRegion {
                Frame<this> f;
            }
            {
                (RHandle<BufferRegion : VT r> h) {
                    (RHandle<BufferSubRegion r2> h2 = h.b) {
                        let Frame<r2> frame = new Frame<r2>;
                        h2.f = frame;
                    }
                    (RHandle<BufferSubRegion r3> h3 = new h.b) { }
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.region_kinds.len(), 2);
        assert_eq!(p.region_kinds[0].subregions.len(), 1);
        assert_eq!(p.region_kinds[1].portals.len(), 1);
        match &p.main.stmts[0] {
            Stmt::NewRegion { policy, body, .. } => {
                assert_eq!(*policy, Policy::Vt);
                match &body.stmts[0] {
                    Stmt::EnterSubregion { fresh, sub, .. } => {
                        assert!(!fresh);
                        assert_eq!(sub.name, "b");
                    }
                    other => panic!("expected subregion entry, got {other:?}"),
                }
                assert!(matches!(
                    &body.stmts[1],
                    Stmt::EnterSubregion { fresh: true, .. }
                ));
            }
            other => panic!("expected new region, got {other:?}"),
        }
    }

    #[test]
    fn parse_forks() {
        let src = r#"
            class Producer<Owner r> { void run(RHandle<r> h) { } }
            {
                (RHandle<BufferRegion : LT(1024) r> h) {
                    fork (new Producer<r>).run(h);
                    RT fork (new Producer<r>).run(h);
                }
            }
        "#;
        let p = parse_program(src).unwrap();
        match &p.main.stmts[0] {
            Stmt::NewRegion { policy, body, .. } => {
                assert_eq!(*policy, Policy::Lt { size: 1024 });
                assert!(matches!(body.stmts[0], Stmt::Fork { rt: false, .. }));
                assert!(matches!(body.stmts[1], Stmt::Fork { rt: true, .. }));
            }
            other => panic!("expected new region, got {other:?}"),
        }
    }

    #[test]
    fn parse_owner_args_vs_comparison() {
        // `a.m<r>(x)` is a call with owner args; `a.f < b` is a comparison.
        let e = parse_expr("a.m<r1,heap>(x)").unwrap();
        match e {
            Expr::Call { owner_args, .. } => assert_eq!(owner_args.len(), 2),
            other => panic!("expected call, got {other:?}"),
        }
        let e = parse_expr("a.f < b").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Lt, .. }));
    }

    #[test]
    fn parse_effects_and_where() {
        let src = r#"
            class C<Owner o, Owner p> where o outlives p {
                int m<Region q>(int x) accesses o, q, RT where q outlives p {
                    return x + 1;
                }
            }
            { }
        "#;
        let p = parse_program(src).unwrap();
        let m = &p.classes[0].methods[0];
        assert_eq!(m.formals.len(), 1);
        let fx = m.effects.as_ref().unwrap();
        assert_eq!(fx.len(), 3);
        assert!(matches!(fx[2], OwnerRef::Rt(_)));
        assert_eq!(m.where_clauses.len(), 1);
    }

    #[test]
    fn parse_precedence() {
        let e = parse_expr("1 + 2 * 3 < 4 && !x || y").unwrap();
        // ((1 + (2*3)) < 4) && (!x) || y — just check the top is `||`.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parse_intrinsics() {
        let e = parse_expr("io(100)").unwrap();
        assert!(matches!(
            e,
            Expr::IntrinsicCall {
                intrinsic: Intrinsic::Io,
                ..
            }
        ));
        // An identifier named like an intrinsic but not called stays a var.
        let e = parse_expr("io + 1").unwrap();
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn parse_else_if_chain() {
        let src = "{ if (a) { } else if (b) { } else { } }";
        let p = parse_program(src).unwrap();
        match &p.main.stmts[0] {
            Stmt::If { else_blk, .. } => {
                let inner = &else_blk.as_ref().unwrap().stmts[0];
                assert!(matches!(
                    inner,
                    Stmt::If {
                        else_blk: Some(_),
                        ..
                    }
                ));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_program("class {}").is_err());
        assert!(parse_program("{ let = 3; }").is_err());
        assert!(parse_program("{ fork 3; }").is_err());
        assert!(parse_program("{ 1 + ; }").is_err());
        assert!(parse_program("{ (RHandle<K : LT(8) r> h = x.b) { } }").is_err());
        assert!(parse_program("{ 3 = x; }").is_err());
    }

    #[test]
    fn parse_kind_lt_refinement() {
        let src = r#"
            class C<SharedRegion : LT r> { }
            { }
        "#;
        let p = parse_program(src).unwrap();
        assert!(matches!(p.classes[0].formals[0].kind, KindAnn::Lt(_, _)));
    }
}
