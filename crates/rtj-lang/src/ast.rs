//! Abstract syntax tree for the core language.
//!
//! The grammar follows Figures 3, 7, 9, and 13 of the paper, extended with
//! ordinary control flow (`if`/`while`), arithmetic, `bool`, and a handful
//! of intrinsics so that the evaluation benchmarks are executable. The
//! ownership/region constructs are exactly the paper's:
//!
//! * classes parameterized by **owners** (`class C<Owner a, Owner b>`),
//! * `where` constraints (`a owns b`, `a outlives b`),
//! * region-kind declarations with portal fields and subregions,
//! * region-creation blocks `(RHandle<r> h) { ... }` (local, shared,
//!   and subregion-entry forms),
//! * `fork` / `RT fork`, and
//! * method `accesses` (effects) clauses.

use crate::intern::Symbol;
use crate::span::Span;
use std::fmt;

/// An identifier with its source span.
///
/// The text is interned at parse time: every later phase compares, hashes,
/// and copies identifiers as [`Symbol`]s without touching the characters.
#[derive(Debug, Clone, Copy, Eq)]
pub struct Ident {
    /// The identifier text (interned).
    pub name: Symbol,
    /// Where it appears.
    pub span: Span,
}

impl Ident {
    /// Creates an identifier with a dummy span (for synthesized nodes).
    pub fn synthetic(name: impl Into<Symbol>) -> Self {
        Ident {
            name: name.into(),
            span: Span::DUMMY,
        }
    }
}

impl PartialEq for Ident {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl std::hash::Hash for Ident {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name.as_str())
    }
}

/// A whole program: class declarations, region-kind declarations, and the
/// main block (the paper's initial expression).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All `class` declarations, in source order.
    pub classes: Vec<ClassDecl>,
    /// All `regionKind` declarations, in source order.
    pub region_kinds: Vec<RegionKindDecl>,
    /// The initial block evaluated by the main (regular) thread.
    pub main: Block,
}

/// A `class` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: Ident,
    /// Formal owner parameters; the first owner owns the object.
    pub formals: Vec<FormalOwner>,
    /// Superclass; `None` means `Object<firstFormal>`.
    pub extends: Option<ClassType>,
    /// `where` constraints over owners in scope.
    pub where_clauses: Vec<Constraint>,
    /// Instance fields.
    pub fields: Vec<FieldDecl>,
    /// Methods.
    pub methods: Vec<MethodDecl>,
    /// Source span of the whole declaration.
    pub span: Span,
}

/// A formal owner parameter, e.g. `Owner stackOwner` or
/// `BufferRegion r`.
#[derive(Debug, Clone, PartialEq)]
pub struct FormalOwner {
    /// Declared kind of the owner.
    pub kind: KindAnn,
    /// Name of the formal.
    pub name: Ident,
}

/// A (possibly user-defined) owner-kind annotation.
#[derive(Debug, Clone, PartialEq)]
pub enum KindAnn {
    /// `Owner` — any owner (object or region).
    Owner(Span),
    /// `ObjOwner` — owners that are objects.
    ObjOwner(Span),
    /// `Region` — any region.
    Region(Span),
    /// `GCRegion` — the garbage-collected heap.
    GcRegion(Span),
    /// `NoGCRegion` — any non-heap region.
    NoGcRegion(Span),
    /// `LocalRegion` — lexically scoped thread-local region.
    LocalRegion(Span),
    /// `SharedRegion` — root of the shared region-kind hierarchy.
    SharedRegion(Span),
    /// A user-declared shared region kind `srkn<o*>`.
    Named {
        /// Region-kind name.
        name: Ident,
        /// Owner arguments.
        owners: Vec<OwnerRef>,
    },
    /// `k : LT` — regions of kind `k` whose memory is preallocated.
    Lt(Box<KindAnn>, Span),
}

impl KindAnn {
    /// The span of this annotation.
    pub fn span(&self) -> Span {
        match self {
            KindAnn::Owner(s)
            | KindAnn::ObjOwner(s)
            | KindAnn::Region(s)
            | KindAnn::GcRegion(s)
            | KindAnn::NoGcRegion(s)
            | KindAnn::LocalRegion(s)
            | KindAnn::SharedRegion(s) => *s,
            KindAnn::Named { name, .. } => name.span,
            KindAnn::Lt(inner, s) => inner.span().to(*s),
        }
    }
}

/// A class type `cn<o1, ..., on>`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassType {
    /// Class name.
    pub name: Ident,
    /// Owner arguments; the first owns the object.
    pub owners: Vec<OwnerRef>,
    /// Source span.
    pub span: Span,
}

/// A reference to an owner: a formal, a region name, or a special owner.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum OwnerRef {
    /// A formal owner parameter or an in-scope region name.
    Name(Ident),
    /// The current object, `this`.
    This(Span),
    /// `initialRegion` — the most recent region created before the call.
    InitialRegion(Span),
    /// The garbage-collected `heap` region.
    Heap(Span),
    /// The `immortal` region.
    Immortal(Span),
    /// The `RT` pseudo-effect (legal only in `accesses` clauses).
    Rt(Span),
}

impl OwnerRef {
    /// The span of this owner reference.
    pub fn span(&self) -> Span {
        match self {
            OwnerRef::Name(id) => id.span,
            OwnerRef::This(s)
            | OwnerRef::InitialRegion(s)
            | OwnerRef::Heap(s)
            | OwnerRef::Immortal(s)
            | OwnerRef::Rt(s) => *s,
        }
    }
}

impl fmt::Display for OwnerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OwnerRef::Name(id) => write!(f, "{id}"),
            OwnerRef::This(_) => write!(f, "this"),
            OwnerRef::InitialRegion(_) => write!(f, "initialRegion"),
            OwnerRef::Heap(_) => write!(f, "heap"),
            OwnerRef::Immortal(_) => write!(f, "immortal"),
            OwnerRef::Rt(_) => write!(f, "RT"),
        }
    }
}

/// A `where`-clause constraint between two owners.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Left operand.
    pub lhs: OwnerRef,
    /// `owns` or `outlives`.
    pub rel: ConstraintRel,
    /// Right operand.
    pub rhs: OwnerRef,
}

/// The relation asserted by a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintRel {
    /// `lhs owns rhs` (the paper's `≽ₒ`).
    Owns,
    /// `lhs outlives rhs` (the paper's `≽`).
    Outlives,
}

impl fmt::Display for ConstraintRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintRel::Owns => write!(f, "owns"),
            ConstraintRel::Outlives => write!(f, "outlives"),
        }
    }
}

/// An instance field declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Declared type. `None` means the owner annotations were omitted and
    /// will be filled in by default completion (owner of `this`).
    pub ty: Type,
    /// Field name.
    pub name: Ident,
    /// Source span.
    pub span: Span,
}

/// A method declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Return type (`Type::Void` for `void` methods).
    pub ret: Type,
    /// Method name.
    pub name: Ident,
    /// Extra formal owner parameters introduced by this method.
    pub formals: Vec<FormalOwner>,
    /// Value parameters.
    pub params: Vec<Param>,
    /// `accesses` clause. `None` means "use the default effects":
    /// all class and method owner parameters plus `initialRegion`.
    pub effects: Option<Vec<OwnerRef>>,
    /// `where` constraints introduced by the method.
    pub where_clauses: Vec<Constraint>,
    /// Method body.
    pub body: Block,
    /// Source span of the declaration.
    pub span: Span,
}

/// A method value parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: Ident,
}

/// A type in the core language.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    /// `int`.
    Int(Span),
    /// `bool`.
    Bool(Span),
    /// `void` (method returns only).
    Void(Span),
    /// A class type `cn<o*>`.
    Class(ClassType),
    /// A region handle type `RHandle<r>`.
    Handle(OwnerRef, Span),
}

impl Type {
    /// The span of this type.
    pub fn span(&self) -> Span {
        match self {
            Type::Int(s) | Type::Bool(s) | Type::Void(s) => *s,
            Type::Class(ct) => ct.span,
            Type::Handle(_, s) => *s,
        }
    }
}

/// A `regionKind` declaration (shared region kinds; Section 2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct RegionKindDecl {
    /// Kind name.
    pub name: Ident,
    /// Formal owner parameters.
    pub formals: Vec<FormalOwner>,
    /// Super kind; `None` means `SharedRegion`.
    pub extends: Option<KindAnn>,
    /// `where` constraints.
    pub where_clauses: Vec<Constraint>,
    /// Portal fields (typed fields of the region itself).
    pub portals: Vec<FieldDecl>,
    /// Declared subregions.
    pub subregions: Vec<SubregionDecl>,
    /// Source span.
    pub span: Span,
}

/// A subregion declaration inside a region kind:
/// `subregion BufferSubRegion : LT(4096) NoRT b;`
#[derive(Debug, Clone, PartialEq)]
pub struct SubregionDecl {
    /// Region kind of the subregion.
    pub kind: KindAnn,
    /// Allocation policy (LT with a size, or VT).
    pub policy: Policy,
    /// Whether this subregion is reserved for real-time threads.
    pub thread: ThreadTag,
    /// Subregion member name.
    pub name: Ident,
    /// Source span.
    pub span: Span,
}

/// Region allocation policy (Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Linear-time: memory preallocated at creation; `size` is the byte
    /// bound the programmer must supply.
    Lt {
        /// Upper bound (bytes) for objects allocated in the region.
        size: u64,
    },
    /// Variable-time: memory allocated on demand.
    Vt,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Lt { size } => write!(f, "LT({size})"),
            Policy::Vt => write!(f, "VT"),
        }
    }
}

/// Which threads may use a subregion (Section 2.3, priority inversion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreadTag {
    /// Only real-time threads may enter.
    Rt,
    /// Only regular threads may enter.
    NoRt,
}

impl fmt::Display for ThreadTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadTag::Rt => write!(f, "RT"),
            ThreadTag::NoRt => write!(f, "NoRT"),
        }
    }
}

/// A block of statements `{ s* }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let [T] x = e;` — `ty: None` requests local owner inference.
    Let {
        /// Declared type, or `None` for inference.
        ty: Option<Type>,
        /// Variable name.
        name: Ident,
        /// Initializer.
        init: Expr,
        /// Source span.
        span: Span,
    },
    /// `x = e;` — assignment to a local variable or parameter.
    AssignLocal {
        /// Variable name.
        name: Ident,
        /// Value.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// `recv.fd = e;` — field write (object field or portal field,
    /// resolved by the receiver's static type).
    AssignField {
        /// Receiver expression.
        recv: Expr,
        /// Field name.
        field: Ident,
        /// Value.
        value: Expr,
        /// Source span.
        span: Span,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `if (c) { ... } [else { ... }]`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_blk: Block,
        /// Optional else branch.
        else_blk: Option<Block>,
        /// Source span.
        span: Span,
    },
    /// `while (c) { ... }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `return [e];`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Source span.
        span: Span,
    },
    /// `(RHandle<r> h) { ... }` — create a local (`LocalRegion : VT`) region.
    LocalRegion {
        /// Region name bound in the body.
        region: Ident,
        /// Handle variable bound in the body.
        handle: Ident,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `(RHandle<kind : policy r> h) { ... }` — create a top-level region of
    /// the given (shared) kind and policy.
    NewRegion {
        /// Region kind.
        kind: KindAnn,
        /// Allocation policy.
        policy: Policy,
        /// Region name bound in the body.
        region: Ident,
        /// Handle variable bound in the body.
        handle: Ident,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `(RHandle<kind r2> h2 = [new] h.sub) { ... }` — enter (optionally
    /// recreating) subregion `sub` of the region whose handle is `h`.
    EnterSubregion {
        /// Expected kind of the subregion (checked against the declaration).
        kind: KindAnn,
        /// Region name bound in the body.
        region: Ident,
        /// Handle variable bound in the body.
        handle: Ident,
        /// `new` present: enter a fresh subregion instance.
        fresh: bool,
        /// Variable holding the parent region's handle.
        parent: Ident,
        /// Subregion member name.
        sub: Ident,
        /// Body.
        body: Block,
        /// Source span.
        span: Span,
    },
    /// `fork recv.mn<o*>(args);` or `RT fork recv.mn<o*>(args);`
    Fork {
        /// `true` for `RT fork` (spawn a real-time thread).
        rt: bool,
        /// The method invocation evaluated by the new thread.
        call: Expr,
        /// Source span.
        span: Span,
    },
}

impl Stmt {
    /// The span of this statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::AssignLocal { span, .. }
            | Stmt::AssignField { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::LocalRegion { span, .. }
            | Stmt::NewRegion { span, .. }
            | Stmt::EnterSubregion { span, .. }
            | Stmt::Fork { span, .. } => *span,
            Stmt::Expr(e) => e.span(),
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Integer negation.
    Neg,
    /// Boolean negation.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&`
    And,
    /// `||`
    Or,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        };
        f.write_str(s)
    }
}

/// Built-in intrinsics (documented extensions for the evaluation corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `print(e)` — write a value to the trace.
    Print,
    /// `io(n)` — simulate `n` cycles of external (network/disk) work.
    Io,
    /// `workload(n)` — simulate `n` cycles of pure computation.
    Workload,
    /// `yield()` — let the cooperative scheduler switch threads.
    Yield,
}

impl Intrinsic {
    /// Intrinsic for a call to `name`, if any.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "print" => Intrinsic::Print,
            "io" => Intrinsic::Io,
            "workload" => Intrinsic::Workload,
            "yield" => Intrinsic::Yield,
            _ => return None,
        })
    }

    /// The surface name of this intrinsic.
    pub fn name(&self) -> &'static str {
        match self {
            Intrinsic::Print => "print",
            Intrinsic::Io => "io",
            Intrinsic::Workload => "workload",
            Intrinsic::Yield => "yield",
        }
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// String literal (only as `print` argument).
    Str(String, Span),
    /// `null`.
    Null(Span),
    /// `this`.
    This(Span),
    /// A variable reference.
    Var(Ident),
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Field read `recv.fd` (object field or portal field).
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name.
        field: Ident,
        /// Source span.
        span: Span,
    },
    /// Method invocation `recv.mn<o*>(args)`.
    Call {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: Ident,
        /// Explicit owner arguments for the method's formals. Filled in by
        /// the checker's default completion when omitted.
        owner_args: Vec<OwnerRef>,
        /// Value arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
    /// Object allocation `new cn<o*>`.
    New {
        /// Allocated class type; the first owner determines the region.
        class: ClassType,
        /// Source span.
        span: Span,
    },
    /// An intrinsic call such as `print(e)`.
    IntrinsicCall {
        /// Which intrinsic.
        intrinsic: Intrinsic,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Str(_, s)
            | Expr::Null(s)
            | Expr::This(s) => *s,
            Expr::Var(id) => id.span,
            Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Field { span, .. }
            | Expr::Call { span, .. }
            | Expr::New { span, .. }
            | Expr::IntrinsicCall { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_equality_ignores_span() {
        let a = Ident {
            name: "x".into(),
            span: Span::new(0, 1),
        };
        let b = Ident {
            name: "x".into(),
            span: Span::new(5, 6),
        };
        assert_eq!(a, b);
    }

    #[test]
    fn intrinsic_names_round_trip() {
        for i in [
            Intrinsic::Print,
            Intrinsic::Io,
            Intrinsic::Workload,
            Intrinsic::Yield,
        ] {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("banana"), None);
    }

    #[test]
    fn policy_display() {
        assert_eq!(Policy::Lt { size: 64 }.to_string(), "LT(64)");
        assert_eq!(Policy::Vt.to_string(), "VT");
    }

    #[test]
    fn owner_display() {
        assert_eq!(OwnerRef::Heap(Span::DUMMY).to_string(), "heap");
        assert_eq!(OwnerRef::Name(Ident::synthetic("r1")).to_string(), "r1");
    }
}
