//! Frontend for the core real-time Java-like language of
//! *Ownership Types for Safe Region-Based Memory Management in Real-Time
//! Java* (Boyapati, Sălcianu, Beebee, Rinard; PLDI 2003).
//!
//! This crate provides the lexer, parser, AST, pretty-printer, and
//! diagnostic rendering for the paper's core language (Figures 3, 7, 9, 13),
//! extended with ordinary control flow and arithmetic so that the paper's
//! evaluation benchmarks are executable. The type system itself lives in
//! the `rtj-types` crate and the execution platform in `rtj-runtime` /
//! `rtj-interp`.
//!
//! # Examples
//!
//! Parsing the paper's `TStack` example (Figure 5):
//!
//! ```
//! use rtj_lang::parser::parse_program;
//!
//! let program = parse_program(r#"
//!     class TStack<Owner stackOwner, Owner TOwner> {
//!         TNode<this, TOwner> head;
//!     }
//!     class TNode<Owner nodeOwner, Owner TOwner> {
//!         TNode<nodeOwner, TOwner> next;
//!     }
//!     {
//!         (RHandle<r1> h1) {
//!             (RHandle<r2> h2) {
//!                 let TStack<r2, r1> s2 = new TStack<r2, r1>;
//!             }
//!         }
//!     }
//! "#)?;
//! assert_eq!(program.classes.len(), 2);
//! # Ok::<(), rtj_lang::parser::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod diag;
pub mod fingerprint;
pub mod intern;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::Program;
pub use fingerprint::{
    class_refs, fingerprint_class, fingerprint_region_kind, region_kind_refs, ClassFingerprint,
    Fnv64,
};
pub use intern::Symbol;
pub use json::{Json, JsonError};
pub use parser::{parse_expr, parse_program, ParseError};
pub use pretty::pretty_program;
pub use span::Span;
