//! A minimal, dependency-free JSON value: render and parse.
//!
//! The observability layers serialize trace events (JSONL), runtime
//! metrics snapshots (`rtj-metrics/v1`), and checker profiles
//! (`rtj-checker-metrics/v1`), and `rtjc report` reads snapshots back.
//! It lives in `rtj-lang` — the root of the crate graph — so both the
//! runtime (`rtj-runtime`) and the static checker (`rtj-types`) share
//! one implementation. The container has no crates.io access, so instead
//! of `serde` this module provides the small subset the repo needs:
//!
//! * [`Json`] — a JSON value whose objects preserve insertion order, so
//!   rendering is byte-deterministic (a requirement of the determinism
//!   tests in `tests/observability.rs`);
//! * [`Json::render`] — compact, stable rendering;
//! * [`Json::parse`] — a strict recursive-descent parser.
//!
//! Numbers are kept as `i64` when they parse exactly as integers
//! (virtual-cycle counters) and as `f64` otherwise (overhead ratios), so
//! counter round-trips are loss-free.

use std::fmt;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (renders without a decimal point).
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from pairs (convenience for literals).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` counter, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null` (used by sparse schema fields such as
    /// the session slot of `rtj-server-trace/v1` event triples).
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact, deterministic rendering (object keys in insertion order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                // `f64::to_string` never emits exponents for the magnitudes
                // used here; integral floats get a `.0` so they re-parse as
                // floats.
                if x.fract() == 0.0 && x.is_finite() {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            }
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(k, out);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                at: pos,
                message: "trailing characters after value".into(),
            });
        }
        Ok(v)
    }
}

/// Escapes a string for embedding in JSON (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn err(at: usize, message: impl Into<String>) -> JsonError {
    JsonError {
        at,
        message: message.into(),
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected `,` or `]`")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected `,` or `}`")),
                }
            }
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(err(*pos, format!("unexpected byte `{}`", *c as char))),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(err(*pos, "expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not produced by our renderer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 scalar.
                let s = &b[*pos..];
                let len = utf8_len(s[0]);
                let chunk = s
                    .get(..len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or_else(|| err(*pos, "invalid UTF-8"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, format!("bad number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        let v = Json::obj(vec![
            ("a", Json::Int(42)),
            ("b", Json::Str("x\"y\n".into())),
            (
                "c",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::Float(1.5)]),
            ),
            ("d", Json::Obj(vec![])),
        ]);
        let text = v.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.render(), text, "render is stable");
    }

    #[test]
    fn integers_roundtrip_exactly() {
        let big = (1u64 << 62) as i64;
        let text = Json::Int(big).render();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big as u64));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let text = Json::Float(2.0).render();
        assert_eq!(text, "2.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(2.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"x": 3, "y": [1, 2], "s": "hi", "r": 1.25}"#).unwrap();
        assert_eq!(v.get("x").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("y").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(v.get("r").and_then(Json::as_f64), Some(1.25));
        assert_eq!(v.get("missing"), None);
    }
}
