//! Pretty-printer producing parseable surface syntax.
//!
//! `parse_program(pretty(p))` yields an AST equal (modulo spans) to `p`;
//! this is exercised by round-trip tests and used by the CLI's `fmt`
//! subcommand and by the annotation-metrics tooling.

use crate::ast::*;
use std::fmt::Write as _;

/// Pretty-prints a whole program.
pub fn pretty_program(p: &Program) -> String {
    let mut pr = Printer::new();
    for rk in &p.region_kinds {
        pr.region_kind(rk);
        pr.blank();
    }
    for c in &p.classes {
        pr.class(c);
        pr.blank();
    }
    pr.block(&p.main);
    pr.out.push('\n');
    pr.out
}

/// Pretty-prints a single expression.
pub fn pretty_expr(e: &Expr) -> String {
    let mut pr = Printer::new();
    pr.expr(e);
    pr.out
}

/// Pretty-prints a type.
pub fn pretty_type(t: &Type) -> String {
    let mut pr = Printer::new();
    pr.ty(t);
    pr.out
}

/// Pretty-prints an owner-kind annotation.
pub fn pretty_kind(k: &KindAnn) -> String {
    let mut pr = Printer::new();
    pr.kind(k);
    pr.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn open(&mut self, s: &str) {
        self.line(&format!("{s} {{"));
        self.indent += 1;
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.line("}");
    }

    fn blank(&mut self) {
        self.out.push('\n');
    }

    fn region_kind(&mut self, rk: &RegionKindDecl) {
        let mut head = format!("regionKind {}", rk.name);
        if !rk.formals.is_empty() {
            let _ = write!(head, "<{}>", self.formals(&rk.formals));
        }
        if let Some(ext) = &rk.extends {
            let _ = write!(head, " extends {}", kind_str(ext));
        }
        if !rk.where_clauses.is_empty() {
            let _ = write!(head, " where {}", constraints_str(&rk.where_clauses));
        }
        self.open(&head);
        for f in &rk.portals {
            self.line(&format!("{} {};", type_str(&f.ty), f.name));
        }
        for s in &rk.subregions {
            self.line(&format!(
                "subregion {} : {} {} {};",
                kind_str(&s.kind),
                s.policy,
                s.thread,
                s.name
            ));
        }
        self.close();
    }

    fn class(&mut self, c: &ClassDecl) {
        let mut head = format!("class {}", c.name);
        if !c.formals.is_empty() {
            let _ = write!(head, "<{}>", self.formals(&c.formals));
        }
        if let Some(ext) = &c.extends {
            let _ = write!(head, " extends {}", class_type_str(ext));
        }
        if !c.where_clauses.is_empty() {
            let _ = write!(head, " where {}", constraints_str(&c.where_clauses));
        }
        self.open(&head);
        for f in &c.fields {
            self.line(&format!("{} {};", type_str(&f.ty), f.name));
        }
        for m in &c.methods {
            self.method(m);
        }
        self.close();
    }

    fn method(&mut self, m: &MethodDecl) {
        let mut head = format!("{} {}", type_str(&m.ret), m.name);
        if !m.formals.is_empty() {
            let _ = write!(head, "<{}>", self.formals(&m.formals));
        }
        let params: Vec<String> = m
            .params
            .iter()
            .map(|p| format!("{} {}", type_str(&p.ty), p.name))
            .collect();
        let _ = write!(head, "({})", params.join(", "));
        if let Some(fx) = &m.effects {
            let owners: Vec<String> = fx.iter().map(|o| o.to_string()).collect();
            let _ = write!(head, " accesses {}", owners.join(", "));
        }
        if !m.where_clauses.is_empty() {
            let _ = write!(head, " where {}", constraints_str(&m.where_clauses));
        }
        self.open(&head);
        for s in &m.body.stmts {
            self.stmt(s);
        }
        self.close();
    }

    fn formals(&self, formals: &[FormalOwner]) -> String {
        formals
            .iter()
            .map(|f| format!("{} {}", kind_str(&f.kind), f.name))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn block(&mut self, b: &Block) {
        self.open("");
        for s in &b.stmts {
            self.stmt(s);
        }
        self.close();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { ty, name, init, .. } => {
                let tystr = ty
                    .as_ref()
                    .map(|t| format!("{} ", type_str(t)))
                    .unwrap_or_default();
                self.line(&format!("let {tystr}{name} = {};", expr_str(init)));
            }
            Stmt::AssignLocal { name, value, .. } => {
                self.line(&format!("{name} = {};", expr_str(value)));
            }
            Stmt::AssignField {
                recv, field, value, ..
            } => {
                self.line(&format!(
                    "{}.{field} = {};",
                    sub_expr_str(recv),
                    expr_str(value)
                ));
            }
            Stmt::Expr(e) => self.line(&format!("{};", expr_str(e))),
            Stmt::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                self.open(&format!("if ({})", expr_str(cond)));
                for s in &then_blk.stmts {
                    self.stmt(s);
                }
                if let Some(eb) = else_blk {
                    self.indent -= 1;
                    self.line("} else {");
                    self.indent += 1;
                    for s in &eb.stmts {
                        self.stmt(s);
                    }
                }
                self.close();
            }
            Stmt::While { cond, body, .. } => {
                self.open(&format!("while ({})", expr_str(cond)));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::Return { value, .. } => match value {
                Some(v) => self.line(&format!("return {};", expr_str(v))),
                None => self.line("return;"),
            },
            Stmt::LocalRegion {
                region,
                handle,
                body,
                ..
            } => {
                self.open(&format!("(RHandle<{region}> {handle})"));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::NewRegion {
                kind,
                policy,
                region,
                handle,
                body,
                ..
            } => {
                self.open(&format!(
                    "(RHandle<{} : {} {region}> {handle})",
                    kind_str(kind),
                    policy
                ));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::EnterSubregion {
                kind,
                region,
                handle,
                fresh,
                parent,
                sub,
                body,
                ..
            } => {
                let newkw = if *fresh { "new " } else { "" };
                self.open(&format!(
                    "(RHandle<{} {region}> {handle} = {newkw}{parent}.{sub})",
                    kind_str(kind)
                ));
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.close();
            }
            Stmt::Fork { rt, call, .. } => {
                let kw = if *rt { "RT fork" } else { "fork" };
                self.line(&format!("{kw} {};", expr_str(call)));
            }
        }
    }

    fn expr(&mut self, e: &Expr) {
        let s = expr_str(e);
        self.out.push_str(&s);
    }

    fn ty(&mut self, t: &Type) {
        let s = type_str(t);
        self.out.push_str(&s);
    }

    fn kind(&mut self, k: &KindAnn) {
        let s = kind_str(k);
        self.out.push_str(&s);
    }
}

fn kind_str(k: &KindAnn) -> String {
    match k {
        KindAnn::Owner(_) => "Owner".into(),
        KindAnn::ObjOwner(_) => "ObjOwner".into(),
        KindAnn::Region(_) => "Region".into(),
        KindAnn::GcRegion(_) => "GCRegion".into(),
        KindAnn::NoGcRegion(_) => "NoGCRegion".into(),
        KindAnn::LocalRegion(_) => "LocalRegion".into(),
        KindAnn::SharedRegion(_) => "SharedRegion".into(),
        KindAnn::Named { name, owners } => {
            if owners.is_empty() {
                name.to_string()
            } else {
                let os: Vec<String> = owners.iter().map(|o| o.to_string()).collect();
                format!("{}<{}>", name, os.join(", "))
            }
        }
        KindAnn::Lt(inner, _) => format!("{} : LT", kind_str(inner)),
    }
}

fn class_type_str(ct: &ClassType) -> String {
    if ct.owners.is_empty() {
        ct.name.to_string()
    } else {
        let os: Vec<String> = ct.owners.iter().map(|o| o.to_string()).collect();
        format!("{}<{}>", ct.name, os.join(", "))
    }
}

fn type_str(t: &Type) -> String {
    match t {
        Type::Int(_) => "int".into(),
        Type::Bool(_) => "bool".into(),
        Type::Void(_) => "void".into(),
        Type::Class(ct) => class_type_str(ct),
        Type::Handle(r, _) => format!("RHandle<{r}>"),
    }
}

fn constraints_str(cs: &[Constraint]) -> String {
    cs.iter()
        .map(|c| format!("{} {} {}", c.lhs, c.rel, c.rhs))
        .collect::<Vec<_>>()
        .join(", ")
}

fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Int(n, _) => n.to_string(),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Str(s, _) => format!("{s:?}"),
        Expr::Null(_) => "null".into(),
        Expr::This(_) => "this".into(),
        Expr::Var(id) => id.name.to_string(),
        Expr::Unary { op, expr, .. } => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
            };
            format!("{o}{}", sub_expr_str(expr))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("{} {op} {}", sub_expr_str(lhs), sub_expr_str(rhs))
        }
        Expr::Field { recv, field, .. } => format!("{}.{field}", sub_expr_str(recv)),
        Expr::Call {
            recv,
            method,
            owner_args,
            args,
            ..
        } => {
            let oa = if owner_args.is_empty() {
                String::new()
            } else {
                let os: Vec<String> = owner_args.iter().map(|o| o.to_string()).collect();
                format!("<{}>", os.join(", "))
            };
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}.{method}{oa}({})", sub_expr_str(recv), a.join(", "))
        }
        Expr::New { class, .. } => format!("new {}", class_type_str(class)),
        Expr::IntrinsicCall {
            intrinsic, args, ..
        } => {
            let a: Vec<String> = args.iter().map(expr_str).collect();
            format!("{}({})", intrinsic.name(), a.join(", "))
        }
    }
}

/// Like [`expr_str`] but parenthesizes compound sub-expressions so that the
/// output re-parses with the same structure regardless of precedence.
fn sub_expr_str(e: &Expr) -> String {
    match e {
        Expr::Binary { .. } | Expr::Unary { .. } => format!("({})", expr_str(e)),
        Expr::New { .. } => format!("({})", expr_str(e)),
        _ => expr_str(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Strips spans by comparing pretty forms after a round-trip.
    fn roundtrip_program(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = pretty_program(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(pretty_program(&p2), printed, "pretty-print not a fixpoint");
    }

    #[test]
    fn roundtrip_tstack() {
        roundtrip_program(
            r#"
            class TStack<Owner stackOwner, Owner TOwner> {
                TNode<this, TOwner> head;
                void push(T<TOwner> value) accesses this, TOwner {
                    let TNode<this, TOwner> newNode = new TNode<this, TOwner>;
                    newNode.init(value, this.head);
                    this.head = newNode;
                }
            }
            {
                (RHandle<r1> h1) {
                    let TStack<r1, immortal> s = new TStack<r1, immortal>;
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_region_kinds() {
        roundtrip_program(
            r#"
            regionKind BufferRegion extends SharedRegion {
                subregion BufferSubRegion : LT(4096) NoRT b;
            }
            regionKind BufferSubRegion extends SharedRegion {
                Frame<this> f;
            }
            class Frame<Owner o> { int data; }
            {
                (RHandle<BufferRegion : VT r> h) {
                    (RHandle<BufferSubRegion r2> h2 = new h.b) {
                        h2.f = new Frame<r2>;
                    }
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrip_control_flow_and_ops() {
        roundtrip_program(
            r#"
            {
                let x = 1 + 2 * 3;
                let b = x < 4 && !(x == 5) || x != 6;
                if (b) { x = x - 1; } else { x = -x; }
                while (x > 0) { x = x / 2; workload(10); }
                print("done");
            }
            "#,
        );
    }

    #[test]
    fn expr_precedence_preserved() {
        let e1 = parse_expr("(1 + 2) * 3").unwrap();
        let printed = pretty_expr(&e1);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(pretty_expr(&e2), printed);
        // The structure must be Mul at the top.
        assert!(matches!(e2, Expr::Binary { op: BinOp::Mul, .. }));
    }
}
