//! Global string interner.
//!
//! Checking large programs compares and hashes the same identifiers —
//! owner names, class names, region-kind names — millions of times. A
//! [`Symbol`] is a pointer-sized handle to a process-wide interned
//! string: equality and hashing are single pointer operations, and the
//! underlying `&'static str` is embedded in the handle, so reading it
//! back (display, content ordering) costs nothing.
//!
//! Design notes:
//!
//! * The intern table is **global and thread-safe** (`RwLock` around the
//!   map), so symbols can be created concurrently from the parallel
//!   checking driver. The lock is only touched by [`Symbol::intern`];
//!   every other operation works on the `&'static str` already in hand.
//! * Interned strings are leaked (`Box::leak`). The set of distinct
//!   identifiers in a compilation session is bounded by the source text,
//!   so this is an arena, not a leak in practice.
//! * Equality and hashing use the **data pointer**: the table guarantees
//!   one allocation per distinct string, so pointer equality is string
//!   equality.
//! * `Ord`/`PartialOrd` compare the **string contents**, not addresses.
//!   Allocation addresses depend on first-touch order, which varies
//!   between serial and parallel runs; content ordering keeps every
//!   `BTreeSet<Owner>` iteration (and therefore diagnostic order)
//!   deterministic and identical across drivers.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// An interned string: cheap to copy, compare, and hash.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

fn table() -> &'static RwLock<HashMap<&'static str, &'static str>> {
    static TABLE: OnceLock<RwLock<HashMap<&'static str, &'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

impl Symbol {
    /// Intern `s`, returning its symbol. Idempotent and thread-safe.
    pub fn intern(s: &str) -> Symbol {
        let t = table();
        if let Some(&interned) = t.read().unwrap().get(s) {
            return Symbol(interned);
        }
        let mut w = t.write().unwrap();
        if let Some(&interned) = w.get(s) {
            return Symbol(interned);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        w.insert(leaked, leaked);
        Symbol(leaked)
    }

    /// The interned string contents. Free: no table access.
    pub fn as_str(self) -> &'static str {
        self.0
    }

    /// Whether the interned string is empty.
    pub fn is_empty(self) -> bool {
        self.0.is_empty()
    }
}

/// Sizes of the global intern table: `(symbols, bytes)`.
///
/// `symbols` is the number of distinct interned strings alive in the
/// process and `bytes` the total length of their contents. Reported in
/// the checker's `rtj-checker-metrics/v1` snapshot as a proxy for
/// frontend arena footprint. The table is process-global, so the numbers
/// are cumulative across every program interned so far.
pub fn intern_table_stats() -> (usize, usize) {
    let t = table().read().unwrap();
    let bytes = t.keys().map(|s| s.len()).sum();
    (t.len(), bytes)
}

// One allocation per distinct string, so pointer equality is string
// equality — and a pointer hash stands in for a content hash.
impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.0.as_ptr(), other.0.as_ptr())
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self.0.as_ptr() as usize).hash(state);
    }
}

// Content ordering, not address ordering: see module docs.
impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self == other {
            std::cmp::Ordering::Equal
        } else {
            self.0.cmp(other.0)
        }
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        *s
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.0.to_owned()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.0
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.0
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.0
    }
}

// NOTE: deliberately no `Borrow<str>` impl. `Symbol` hashes by pointer
// while `str` hashes by content, so a `Borrow`-based `HashMap` lookup
// would be silently wrong. Callers intern the query string instead.
impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::intern("hello");
        let b = Symbol::intern("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
        assert!(std::ptr::eq(a.as_str().as_ptr(), b.as_str().as_ptr()));
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(Symbol::intern("a"), Symbol::intern("b"));
    }

    #[test]
    fn ordering_follows_string_content() {
        // Intern in reverse lexicographic order so allocation order and
        // content order disagree; Ord must follow content.
        let z = Symbol::intern("zzz-order-test");
        let a = Symbol::intern("aaa-order-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn mixed_comparisons() {
        let s = Symbol::intern("region0");
        assert!(s == "region0");
        assert!(s == "region0");
        assert!("region0" == s);
        assert!(s != "region1");
    }

    #[test]
    fn hashmap_round_trip() {
        use std::collections::HashMap;
        let mut m: HashMap<Symbol, usize> = HashMap::new();
        m.insert(Symbol::intern("k1"), 1);
        m.insert(Symbol::intern("k2"), 2);
        assert_eq!(m.get(&Symbol::intern("k1")), Some(&1));
        assert_eq!(m.get(&Symbol::intern("k2")), Some(&2));
        assert_eq!(m.get(&Symbol::intern("k3")), None);
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names: Vec<String> = (0..64).map(|i| format!("conc{i}")).collect();
        let ids: Vec<Vec<Symbol>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| scope.spawn(|| names.iter().map(|n| Symbol::intern(n)).collect()))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
    }
}
