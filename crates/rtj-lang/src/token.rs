//! Token kinds produced by the [lexer](crate::lexer).

use crate::span::Span;
use std::fmt;

/// A lexical token: a [`TokenKind`] plus the [`Span`] it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it appears.
    pub span: Span,
}

/// The different kinds of lexical tokens in the core language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal such as `42`.
    Int(i64),
    /// An identifier or non-keyword name.
    Ident(String),
    /// A double-quoted string literal (used only by `print`).
    Str(String),

    // Keywords
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `where`
    Where,
    /// `owns`
    Owns,
    /// `outlives`
    Outlives,
    /// `regionKind`
    RegionKind,
    /// `subregion`
    Subregion,
    /// `accesses`
    Accesses,
    /// `let`
    Let,
    /// `new`
    New,
    /// `fork`
    Fork,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `null`
    Null,
    /// `true`
    True,
    /// `false`
    False,
    /// `this`
    This,
    /// `int`
    IntTy,
    /// `bool`
    BoolTy,
    /// `void`
    Void,
    /// `RHandle`
    RHandle,
    /// `heap`
    Heap,
    /// `immortal`
    Immortal,
    /// `initialRegion`
    InitialRegion,
    /// `RT` (real-time marker: `RT fork`, RT effect, RT subregion tag)
    Rt,
    /// `NoRT` (regular-thread subregion tag)
    NoRt,
    /// `LT` (linear-time allocation policy)
    Lt,
    /// `VT` (variable-time allocation policy)
    Vt,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt2,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `.`
    Dot,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if `word` is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "class" => Class,
            "extends" => Extends,
            "where" => Where,
            "owns" => Owns,
            "outlives" => Outlives,
            "regionKind" => RegionKind,
            "subregion" => Subregion,
            "accesses" => Accesses,
            "let" => Let,
            "new" => New,
            "fork" => Fork,
            "if" => If,
            "else" => Else,
            "while" => While,
            "return" => Return,
            "null" => Null,
            "true" => True,
            "false" => False,
            "this" => This,
            "int" => IntTy,
            "bool" => BoolTy,
            "void" => Void,
            "RHandle" => RHandle,
            "heap" => Heap,
            "immortal" => Immortal,
            "initialRegion" => InitialRegion,
            "RT" => Rt,
            "NoRT" => NoRt,
            "LT" => Lt,
            "VT" => Vt,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        match self {
            Int(n) => write!(f, "{n}"),
            Ident(s) => write!(f, "{s}"),
            Str(s) => write!(f, "{s:?}"),
            Class => write!(f, "class"),
            Extends => write!(f, "extends"),
            Where => write!(f, "where"),
            Owns => write!(f, "owns"),
            Outlives => write!(f, "outlives"),
            RegionKind => write!(f, "regionKind"),
            Subregion => write!(f, "subregion"),
            Accesses => write!(f, "accesses"),
            Let => write!(f, "let"),
            New => write!(f, "new"),
            Fork => write!(f, "fork"),
            If => write!(f, "if"),
            Else => write!(f, "else"),
            While => write!(f, "while"),
            Return => write!(f, "return"),
            Null => write!(f, "null"),
            True => write!(f, "true"),
            False => write!(f, "false"),
            This => write!(f, "this"),
            IntTy => write!(f, "int"),
            BoolTy => write!(f, "bool"),
            Void => write!(f, "void"),
            RHandle => write!(f, "RHandle"),
            Heap => write!(f, "heap"),
            Immortal => write!(f, "immortal"),
            InitialRegion => write!(f, "initialRegion"),
            Rt => write!(f, "RT"),
            NoRt => write!(f, "NoRT"),
            Lt => write!(f, "LT"),
            Vt => write!(f, "VT"),
            LParen => write!(f, "("),
            RParen => write!(f, ")"),
            LBrace => write!(f, "{{"),
            RBrace => write!(f, "}}"),
            Lt2 => write!(f, "<"),
            Gt => write!(f, ">"),
            Le => write!(f, "<="),
            Ge => write!(f, ">="),
            EqEq => write!(f, "=="),
            Ne => write!(f, "!="),
            Eq => write!(f, "="),
            Plus => write!(f, "+"),
            Minus => write!(f, "-"),
            Star => write!(f, "*"),
            Slash => write!(f, "/"),
            Percent => write!(f, "%"),
            Bang => write!(f, "!"),
            AndAnd => write!(f, "&&"),
            OrOr => write!(f, "||"),
            Dot => write!(f, "."),
            Comma => write!(f, ","),
            Semi => write!(f, ";"),
            Colon => write!(f, ":"),
            Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup() {
        assert_eq!(TokenKind::keyword("class"), Some(TokenKind::Class));
        assert_eq!(TokenKind::keyword("RT"), Some(TokenKind::Rt));
        assert_eq!(TokenKind::keyword("frob"), None);
    }

    #[test]
    fn display_roundtrips_keywords() {
        for w in ["class", "regionKind", "initialRegion", "NoRT", "LT", "VT"] {
            let k = TokenKind::keyword(w).unwrap();
            assert_eq!(k.to_string(), w);
        }
    }
}
