//! Source positions and spans.
//!
//! Every AST node carries a [`Span`] so that diagnostics from the type
//! checker and runtime can point back at the offending source text.

use std::fmt;

/// A half-open byte range `[start, end)` into a source file.
///
/// # Examples
///
/// ```
/// use rtj_lang::span::Span;
/// let s = Span::new(3, 7);
/// assert_eq!(s.len(), 4);
/// assert!(!s.is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering bytes `start..end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u32, end: u32) -> Self {
        assert!(start <= end, "span start {start} > end {end}");
        Span { start, end }
    }

    /// A zero-width span at offset 0, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Number of bytes covered.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the span covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The smallest span covering both `self` and `other`.
    ///
    /// ```
    /// use rtj_lang::span::Span;
    /// assert_eq!(Span::new(1, 3).to(Span::new(5, 9)), Span::new(1, 9));
    /// ```
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based line/column pairs for error rendering.
#[derive(Debug, Clone)]
pub struct LineMap {
    /// Byte offset of the start of every line.
    line_starts: Vec<u32>,
}

impl LineMap {
    /// Builds a line map for `src`.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineMap { line_starts }
    }

    /// Returns `(line, column)` (both 1-based) for a byte offset.
    ///
    /// ```
    /// use rtj_lang::span::LineMap;
    /// let m = LineMap::new("ab\ncd");
    /// assert_eq!(m.location(0), (1, 1));
    /// assert_eq!(m.location(3), (2, 1));
    /// assert_eq!(m.location(4), (2, 2));
    /// ```
    pub fn location(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        (line as u32 + 1, offset - self.line_starts[line] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join() {
        let a = Span::new(2, 4);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(2, 12));
        assert_eq!(b.to(a), Span::new(2, 12));
    }

    #[test]
    fn span_len_and_empty() {
        assert!(Span::new(5, 5).is_empty());
        assert_eq!(Span::new(5, 9).len(), 4);
    }

    #[test]
    #[should_panic]
    fn span_invalid() {
        let _ = Span::new(4, 2);
    }

    #[test]
    fn line_map_multiline() {
        let m = LineMap::new("hello\nworld\n\nx");
        assert_eq!(m.location(0), (1, 1));
        assert_eq!(m.location(5), (1, 6));
        assert_eq!(m.location(6), (2, 1));
        assert_eq!(m.location(12), (3, 1));
        assert_eq!(m.location(13), (4, 1));
    }

    #[test]
    fn line_map_empty_source() {
        let m = LineMap::new("");
        assert_eq!(m.location(0), (1, 1));
    }
}
