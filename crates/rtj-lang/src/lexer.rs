//! Hand-written lexer for the core language.
//!
//! The lexer converts a source string into a vector of [`Token`]s, skipping
//! whitespace and both `//` line and `/* ... */` block comments.

use crate::span::Span;
use crate::token::{Token, TokenKind};
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where the problem occurred.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes `src` into tokens, ending with a single [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated strings or block comments,
/// integer literals that overflow `i64`, and unrecognized characters.
///
/// # Examples
///
/// ```
/// use rtj_lang::lexer::lex;
/// use rtj_lang::token::TokenKind;
/// let toks = lex("class A {}").unwrap();
/// assert_eq!(toks[0].kind, TokenKind::Class);
/// assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn push(&mut self, kind: TokenKind, start: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, self.pos as u32),
        });
    }

    fn error(&self, message: impl Into<String>, start: usize) -> LexError {
        LexError {
            message: message.into(),
            span: Span::new(start as u32, self.pos as u32),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        while let Some(b) = self.peek() {
            let start = self.pos;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'/' if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == b'*' && self.peek() == Some(b'/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(self.error("unterminated block comment", start));
                    }
                }
                b'0'..=b'9' => self.number(start)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start),
                b'"' => self.string(start)?,
                _ => self.punct(start)?,
            }
        }
        let end = self.pos;
        self.push(TokenKind::Eof, end);
        Ok(self.tokens)
    }

    fn number(&mut self, start: usize) -> Result<(), LexError> {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let value: i64 = text
            .parse()
            .map_err(|_| self.error(format!("integer literal `{text}` overflows i64"), start))?;
        self.push(TokenKind::Int(value), start);
        Ok(())
    }

    fn ident(&mut self, start: usize) {
        while matches!(
            self.peek(),
            Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
        ) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()));
        self.push(kind, start);
    }

    fn string(&mut self, start: usize) -> Result<(), LexError> {
        self.bump(); // opening quote
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some(b'\n') => {
                    return Err(self.error("unterminated string literal", start));
                }
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    _ => return Err(self.error("invalid escape sequence", start)),
                },
                Some(c) => value.push(c as char),
            }
        }
        self.push(TokenKind::Str(value), start);
        Ok(())
    }

    fn punct(&mut self, start: usize) -> Result<(), LexError> {
        use TokenKind::*;
        let b = self.bump().expect("peeked");
        let two = |l: &mut Self, second: u8, yes: TokenKind, no: TokenKind| {
            if l.peek() == Some(second) {
                l.bump();
                yes
            } else {
                no
            }
        };
        let kind = match b {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'<' => two(self, b'=', Le, Lt2),
            b'>' => two(self, b'=', Ge, Gt),
            b'=' => two(self, b'=', EqEq, Eq),
            b'!' => two(self, b'=', Ne, Bang),
            b'+' => Plus,
            b'-' => Minus,
            b'*' => Star,
            b'/' => Slash,
            b'%' => Percent,
            b'.' => Dot,
            b',' => Comma,
            b';' => Semi,
            b':' => Colon,
            b'&' => {
                if self.peek() == Some(b'&') {
                    self.bump();
                    AndAnd
                } else {
                    return Err(self.error("expected `&&`", start));
                }
            }
            b'|' => {
                if self.peek() == Some(b'|') {
                    self.bump();
                    OrOr
                } else {
                    return Err(self.error("expected `||`", start));
                }
            }
            other => {
                return Err(
                    self.error(format!("unrecognized character `{}`", other as char), start)
                );
            }
        };
        self.push(kind, start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_simple_class() {
        assert_eq!(
            kinds("class A<Owner o> {}"),
            vec![
                Class,
                Ident("A".into()),
                Lt2,
                Ident("Owner".into()),
                Ident("o".into()),
                Gt,
                LBrace,
                RBrace,
                Eof
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            kinds("a <= b >= c == d != e && f || !g"),
            vec![
                Ident("a".into()),
                Le,
                Ident("b".into()),
                Ge,
                Ident("c".into()),
                EqEq,
                Ident("d".into()),
                Ne,
                Ident("e".into()),
                AndAnd,
                Ident("f".into()),
                OrOr,
                Bang,
                Ident("g".into()),
                Eof
            ]
        );
    }

    #[test]
    fn lex_comments() {
        assert_eq!(
            kinds("1 // line\n /* block\n comment */ 2"),
            vec![Int(1), Int(2), Eof]
        );
    }

    #[test]
    fn lex_string_escapes() {
        assert_eq!(kinds(r#""a\nb\"c""#), vec![Str("a\nb\"c".into()), Eof]);
    }

    #[test]
    fn lex_keywords_vs_idents() {
        assert_eq!(
            kinds("RT RTx fork forky"),
            vec![Rt, Ident("RTx".into()), Fork, Ident("forky".into()), Eof]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(
            kinds("0 42 123456789"),
            vec![Int(0), Int(42), Int(123456789), Eof]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("#").is_err());
        assert!(lex("99999999999999999999999").is_err());
        assert!(lex("&x").is_err());
        assert!(lex("|x").is_err());
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, crate::span::Span::new(0, 2));
        assert_eq!(toks[1].span, crate::span::Span::new(3, 5));
    }
}
