//! Structural fingerprints over elaborated declarations.
//!
//! The incremental checker (`rtj-types::incremental`) needs to decide,
//! after an edit batch, which class declarations actually changed — and
//! *how* they changed. Hashing source bytes is useless for that (a byte
//! insertion shifts every later declaration), so fingerprints are computed
//! structurally over the AST:
//!
//! * the **signature fingerprint** covers everything another declaration
//!   can observe — name, formal owners, `extends`, `where` clauses, field
//!   types, and method signatures (including effects) — and hashes **no
//!   spans at all**. Two declarations with equal signature fingerprints
//!   are interchangeable as far as their dependents' checking outcomes go.
//! * the **full fingerprint** additionally covers method bodies and every
//!   span *relative to the declaration start*. Equal full fingerprints
//!   mean the declaration's internal layout is byte-for-byte identical up
//!   to a uniform shift, so cached diagnostics can be relocated exactly.
//!
//! [`Symbol`]s hash and compare by interner pointer, which depends on
//! interning order; fingerprints must survive across independently parsed
//! sources, so every identifier is hashed by its **string contents**.
//!
//! [`class_refs`] / [`region_kind_refs`] collect the class and region-kind
//! names a declaration mentions; the incremental checker builds its
//! reverse dependency index from them (transitively, so names reachable
//! only through another declaration's members are still covered).

use crate::ast::*;
use crate::intern::Symbol;
use crate::span::Span;

/// Incremental FNV-1a 64-bit hasher (the same function the server uses
/// for result fingerprints: dependency-free and byte-order stable).
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a string (length-prefixed so concatenations can't collide).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `i64` (little-endian two's complement).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds a single tag byte (enum discriminants, arity markers).
    pub fn write_tag(&mut self, t: u8) {
        self.write(&[t]);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The two structural hashes of a class declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassFingerprint {
    /// Signature-only hash (no bodies, no spans): what dependents see.
    pub sig: u64,
    /// Whole-declaration hash with declaration-relative spans: equality
    /// means cached diagnostics shift exactly.
    pub full: u64,
}

/// Fingerprints a class declaration. Call on the *elaborated* declaration
/// (after `apply_declaration_defaults`) so that omitted owners count as
/// their completed forms.
pub fn fingerprint_class(c: &ClassDecl) -> ClassFingerprint {
    let mut sig = Fnv64::new();
    hash_class_sig(&mut sig, c);
    let mut full = Fnv64::new();
    hash_class_sig(&mut full, c);
    // Full adds: relative spans of the signature surface plus the bodies.
    let base = c.span.start;
    full.write_span(base, c.span);
    full.write_span(base, c.name.span);
    for f in &c.formals {
        full.write_span(base, f.name.span);
        hash_kind_spans(&mut full, base, &f.kind);
    }
    if let Some(ext) = &c.extends {
        hash_class_type_spans(&mut full, base, ext);
    }
    for w in &c.where_clauses {
        full.write_span(base, w.lhs.span());
        full.write_span(base, w.rhs.span());
    }
    for f in &c.fields {
        full.write_span(base, f.span);
        hash_type_spans(&mut full, base, &f.ty);
    }
    full.write_u64(c.methods.len() as u64);
    for m in &c.methods {
        full.write_span(base, m.span);
        hash_type_spans(&mut full, base, &m.ret);
        hash_block(&mut full, base, &m.body);
    }
    ClassFingerprint {
        sig: sig.finish(),
        full: full.finish(),
    }
}

/// Fingerprints a region-kind declaration (one hash: region kinds have no
/// bodies, so any structural change is treated as a signature change; the
/// hash still mixes in relative spans so layout changes are detected).
pub fn fingerprint_region_kind(rk: &RegionKindDecl) -> u64 {
    let mut h = Fnv64::new();
    let base = rk.span.start;
    h.write_str(rk.name.name.as_str());
    h.write_u64(rk.formals.len() as u64);
    for f in &rk.formals {
        h.write_str(f.name.name.as_str());
        hash_kind(&mut h, &f.kind);
        h.write_span(base, f.name.span);
    }
    match &rk.extends {
        Some(k) => {
            h.write_tag(1);
            hash_kind(&mut h, k);
            hash_kind_spans(&mut h, base, k);
        }
        None => h.write_tag(0),
    }
    hash_constraints(&mut h, &rk.where_clauses);
    h.write_u64(rk.portals.len() as u64);
    for p in &rk.portals {
        h.write_str(p.name.name.as_str());
        hash_type(&mut h, &p.ty);
        h.write_span(base, p.span);
        hash_type_spans(&mut h, base, &p.ty);
    }
    h.write_u64(rk.subregions.len() as u64);
    for s in &rk.subregions {
        h.write_str(s.name.name.as_str());
        hash_kind(&mut h, &s.kind);
        match s.policy {
            Policy::Lt { size } => {
                h.write_tag(0);
                h.write_u64(size);
            }
            Policy::Vt => h.write_tag(1),
        }
        h.write_tag(match s.thread {
            ThreadTag::Rt => 0,
            ThreadTag::NoRt => 1,
        });
        h.write_span(base, s.span);
    }
    h.finish()
}

impl Fnv64 {
    /// Feeds a span relative to `base` (wrapping: synthesized nodes carry
    /// `Span::DUMMY`, which may sit before the declaration start).
    fn write_span(&mut self, base: u32, s: Span) {
        self.write_u32(s.start.wrapping_sub(base));
        self.write_u32(s.end.wrapping_sub(base));
    }
}

// ------------------------------------------------------- span-free hashing

/// Hashes the span-free signature surface of a class.
fn hash_class_sig(h: &mut Fnv64, c: &ClassDecl) {
    h.write_str(c.name.name.as_str());
    h.write_u64(c.formals.len() as u64);
    for f in &c.formals {
        h.write_str(f.name.name.as_str());
        hash_kind(h, &f.kind);
    }
    match &c.extends {
        Some(ext) => {
            h.write_tag(1);
            hash_class_type(h, ext);
        }
        None => h.write_tag(0),
    }
    hash_constraints(h, &c.where_clauses);
    h.write_u64(c.fields.len() as u64);
    for f in &c.fields {
        h.write_str(f.name.name.as_str());
        hash_type(h, &f.ty);
    }
    h.write_u64(c.methods.len() as u64);
    for m in &c.methods {
        hash_method_sig(h, m);
    }
}

fn hash_method_sig(h: &mut Fnv64, m: &MethodDecl) {
    h.write_str(m.name.name.as_str());
    hash_type(h, &m.ret);
    h.write_u64(m.formals.len() as u64);
    for f in &m.formals {
        h.write_str(f.name.name.as_str());
        hash_kind(h, &f.kind);
    }
    h.write_u64(m.params.len() as u64);
    for p in &m.params {
        h.write_str(p.name.name.as_str());
        hash_type(h, &p.ty);
    }
    match &m.effects {
        Some(list) => {
            h.write_tag(1);
            h.write_u64(list.len() as u64);
            for o in list {
                hash_owner(h, o);
            }
        }
        None => h.write_tag(0),
    }
    hash_constraints(h, &m.where_clauses);
}

fn hash_constraints(h: &mut Fnv64, cs: &[Constraint]) {
    h.write_u64(cs.len() as u64);
    for c in cs {
        hash_owner(h, &c.lhs);
        h.write_tag(match c.rel {
            ConstraintRel::Owns => 0,
            ConstraintRel::Outlives => 1,
        });
        hash_owner(h, &c.rhs);
    }
}

fn hash_type(h: &mut Fnv64, t: &Type) {
    match t {
        Type::Int(_) => h.write_tag(0),
        Type::Bool(_) => h.write_tag(1),
        Type::Void(_) => h.write_tag(2),
        Type::Class(ct) => {
            h.write_tag(3);
            hash_class_type(h, ct);
        }
        Type::Handle(o, _) => {
            h.write_tag(4);
            hash_owner(h, o);
        }
    }
}

fn hash_class_type(h: &mut Fnv64, ct: &ClassType) {
    h.write_str(ct.name.name.as_str());
    h.write_u64(ct.owners.len() as u64);
    for o in &ct.owners {
        hash_owner(h, o);
    }
}

fn hash_owner(h: &mut Fnv64, o: &OwnerRef) {
    match o {
        OwnerRef::Name(id) => {
            h.write_tag(0);
            h.write_str(id.name.as_str());
        }
        OwnerRef::This(_) => h.write_tag(1),
        OwnerRef::InitialRegion(_) => h.write_tag(2),
        OwnerRef::Heap(_) => h.write_tag(3),
        OwnerRef::Immortal(_) => h.write_tag(4),
        OwnerRef::Rt(_) => h.write_tag(5),
    }
}

fn hash_kind(h: &mut Fnv64, k: &KindAnn) {
    match k {
        KindAnn::Owner(_) => h.write_tag(0),
        KindAnn::ObjOwner(_) => h.write_tag(1),
        KindAnn::Region(_) => h.write_tag(2),
        KindAnn::GcRegion(_) => h.write_tag(3),
        KindAnn::NoGcRegion(_) => h.write_tag(4),
        KindAnn::LocalRegion(_) => h.write_tag(5),
        KindAnn::SharedRegion(_) => h.write_tag(6),
        KindAnn::Named { name, owners } => {
            h.write_tag(7);
            h.write_str(name.name.as_str());
            h.write_u64(owners.len() as u64);
            for o in owners {
                hash_owner(h, o);
            }
        }
        KindAnn::Lt(inner, _) => {
            h.write_tag(8);
            hash_kind(h, inner);
        }
    }
}

// ------------------------------------------------ span-only hashing (full)

fn hash_kind_spans(h: &mut Fnv64, base: u32, k: &KindAnn) {
    h.write_span(base, k.span());
    if let KindAnn::Named { owners, .. } = k {
        for o in owners {
            h.write_span(base, o.span());
        }
    }
    if let KindAnn::Lt(inner, _) = k {
        hash_kind_spans(h, base, inner);
    }
}

fn hash_class_type_spans(h: &mut Fnv64, base: u32, ct: &ClassType) {
    h.write_span(base, ct.span);
    for o in &ct.owners {
        h.write_span(base, o.span());
    }
}

fn hash_type_spans(h: &mut Fnv64, base: u32, t: &Type) {
    h.write_span(base, t.span());
    match t {
        Type::Class(ct) => hash_class_type_spans(h, base, ct),
        Type::Handle(o, _) => h.write_span(base, o.span()),
        _ => {}
    }
}

// --------------------------------------------------- full (body) hashing

fn hash_block(h: &mut Fnv64, base: u32, b: &Block) {
    h.write_span(base, b.span);
    h.write_u64(b.stmts.len() as u64);
    for s in &b.stmts {
        hash_stmt(h, base, s);
    }
}

fn hash_stmt(h: &mut Fnv64, base: u32, s: &Stmt) {
    h.write_span(base, s.span());
    match s {
        Stmt::Let { ty, name, init, .. } => {
            h.write_tag(0);
            match ty {
                Some(t) => {
                    h.write_tag(1);
                    hash_type(h, t);
                    hash_type_spans(h, base, t);
                }
                None => h.write_tag(0),
            }
            h.write_str(name.name.as_str());
            hash_expr(h, base, init);
        }
        Stmt::AssignLocal { name, value, .. } => {
            h.write_tag(1);
            h.write_str(name.name.as_str());
            hash_expr(h, base, value);
        }
        Stmt::AssignField {
            recv, field, value, ..
        } => {
            h.write_tag(2);
            hash_expr(h, base, recv);
            h.write_str(field.name.as_str());
            h.write_span(base, field.span);
            hash_expr(h, base, value);
        }
        Stmt::Expr(e) => {
            h.write_tag(3);
            hash_expr(h, base, e);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            h.write_tag(4);
            hash_expr(h, base, cond);
            hash_block(h, base, then_blk);
            match else_blk {
                Some(b) => {
                    h.write_tag(1);
                    hash_block(h, base, b);
                }
                None => h.write_tag(0),
            }
        }
        Stmt::While { cond, body, .. } => {
            h.write_tag(5);
            hash_expr(h, base, cond);
            hash_block(h, base, body);
        }
        Stmt::Return { value, .. } => {
            h.write_tag(6);
            match value {
                Some(v) => {
                    h.write_tag(1);
                    hash_expr(h, base, v);
                }
                None => h.write_tag(0),
            }
        }
        Stmt::LocalRegion {
            region,
            handle,
            body,
            ..
        } => {
            h.write_tag(7);
            h.write_str(region.name.as_str());
            h.write_span(base, region.span);
            h.write_str(handle.name.as_str());
            h.write_span(base, handle.span);
            hash_block(h, base, body);
        }
        Stmt::NewRegion {
            kind,
            policy,
            region,
            handle,
            body,
            ..
        } => {
            h.write_tag(8);
            hash_kind(h, kind);
            hash_kind_spans(h, base, kind);
            match policy {
                Policy::Lt { size } => {
                    h.write_tag(0);
                    h.write_u64(*size);
                }
                Policy::Vt => h.write_tag(1),
            }
            h.write_str(region.name.as_str());
            h.write_span(base, region.span);
            h.write_str(handle.name.as_str());
            h.write_span(base, handle.span);
            hash_block(h, base, body);
        }
        Stmt::EnterSubregion {
            kind,
            region,
            handle,
            fresh,
            parent,
            sub,
            body,
            ..
        } => {
            h.write_tag(9);
            hash_kind(h, kind);
            hash_kind_spans(h, base, kind);
            h.write_str(region.name.as_str());
            h.write_span(base, region.span);
            h.write_str(handle.name.as_str());
            h.write_span(base, handle.span);
            h.write_tag(u8::from(*fresh));
            h.write_str(parent.name.as_str());
            h.write_span(base, parent.span);
            h.write_str(sub.name.as_str());
            h.write_span(base, sub.span);
            hash_block(h, base, body);
        }
        Stmt::Fork { rt, call, .. } => {
            h.write_tag(10);
            h.write_tag(u8::from(*rt));
            hash_expr(h, base, call);
        }
    }
}

fn hash_expr(h: &mut Fnv64, base: u32, e: &Expr) {
    h.write_span(base, e.span());
    match e {
        Expr::Int(v, _) => {
            h.write_tag(0);
            h.write_i64(*v);
        }
        Expr::Bool(v, _) => {
            h.write_tag(1);
            h.write_tag(u8::from(*v));
        }
        Expr::Str(s, _) => {
            h.write_tag(2);
            h.write_str(s);
        }
        Expr::Null(_) => h.write_tag(3),
        Expr::This(_) => h.write_tag(4),
        Expr::Var(id) => {
            h.write_tag(5);
            h.write_str(id.name.as_str());
        }
        Expr::Unary { op, expr, .. } => {
            h.write_tag(6);
            h.write_tag(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            hash_expr(h, base, expr);
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            h.write_tag(7);
            h.write_tag(*op as u8);
            hash_expr(h, base, lhs);
            hash_expr(h, base, rhs);
        }
        Expr::Field { recv, field, .. } => {
            h.write_tag(8);
            hash_expr(h, base, recv);
            h.write_str(field.name.as_str());
            h.write_span(base, field.span);
        }
        Expr::Call {
            recv,
            method,
            owner_args,
            args,
            ..
        } => {
            h.write_tag(9);
            hash_expr(h, base, recv);
            h.write_str(method.name.as_str());
            h.write_span(base, method.span);
            h.write_u64(owner_args.len() as u64);
            for o in owner_args {
                hash_owner(h, o);
                h.write_span(base, o.span());
            }
            h.write_u64(args.len() as u64);
            for a in args {
                hash_expr(h, base, a);
            }
        }
        Expr::New { class, .. } => {
            h.write_tag(10);
            hash_class_type(h, class);
            hash_class_type_spans(h, base, class);
        }
        Expr::IntrinsicCall {
            intrinsic, args, ..
        } => {
            h.write_tag(11);
            h.write_tag(*intrinsic as u8);
            h.write_u64(args.len() as u64);
            for a in args {
                hash_expr(h, base, a);
            }
        }
    }
}

// --------------------------------------------------------- reference sets

/// Collects every class or region-kind *name* a class declaration
/// mentions (extends, field/param/return/let types, `new` sites, named
/// kind annotations in region blocks). Sorted and deduplicated.
///
/// Names reachable only through another class's members (e.g. the type of
/// a field read off a dependency) are *not* listed here; the incremental
/// checker compensates by propagating dirtiness transitively over this
/// edge set, which covers every chain the checker can follow.
pub fn class_refs(c: &ClassDecl) -> Vec<Symbol> {
    let mut out = Vec::new();
    if let Some(ext) = &c.extends {
        out.push(ext.name.name);
    }
    for f in &c.formals {
        refs_kind(&f.kind, &mut out);
    }
    for f in &c.fields {
        refs_type(&f.ty, &mut out);
    }
    for m in &c.methods {
        refs_type(&m.ret, &mut out);
        for f in &m.formals {
            refs_kind(&f.kind, &mut out);
        }
        for p in &m.params {
            refs_type(&p.ty, &mut out);
        }
        refs_block(&m.body, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Collects every class or region-kind name a region-kind declaration
/// mentions (extends, portal field types, subregion kinds, formal kinds).
pub fn region_kind_refs(rk: &RegionKindDecl) -> Vec<Symbol> {
    let mut out = Vec::new();
    for f in &rk.formals {
        refs_kind(&f.kind, &mut out);
    }
    if let Some(k) = &rk.extends {
        refs_kind(k, &mut out);
    }
    for p in &rk.portals {
        refs_type(&p.ty, &mut out);
    }
    for s in &rk.subregions {
        refs_kind(&s.kind, &mut out);
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn refs_type(t: &Type, out: &mut Vec<Symbol>) {
    if let Type::Class(ct) = t {
        out.push(ct.name.name);
    }
}

fn refs_kind(k: &KindAnn, out: &mut Vec<Symbol>) {
    match k {
        KindAnn::Named { name, .. } => out.push(name.name),
        KindAnn::Lt(inner, _) => refs_kind(inner, out),
        _ => {}
    }
}

fn refs_block(b: &Block, out: &mut Vec<Symbol>) {
    for s in &b.stmts {
        refs_stmt(s, out);
    }
}

fn refs_stmt(s: &Stmt, out: &mut Vec<Symbol>) {
    match s {
        Stmt::Let { ty, init, .. } => {
            if let Some(t) = ty {
                refs_type(t, out);
            }
            refs_expr(init, out);
        }
        Stmt::AssignLocal { value, .. } => refs_expr(value, out),
        Stmt::AssignField { recv, value, .. } => {
            refs_expr(recv, out);
            refs_expr(value, out);
        }
        Stmt::Expr(e) => refs_expr(e, out),
        Stmt::If {
            cond,
            then_blk,
            else_blk,
            ..
        } => {
            refs_expr(cond, out);
            refs_block(then_blk, out);
            if let Some(b) = else_blk {
                refs_block(b, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            refs_expr(cond, out);
            refs_block(body, out);
        }
        Stmt::Return { value, .. } => {
            if let Some(v) = value {
                refs_expr(v, out);
            }
        }
        Stmt::LocalRegion { body, .. } => refs_block(body, out),
        Stmt::NewRegion { kind, body, .. } => {
            refs_kind(kind, out);
            refs_block(body, out);
        }
        Stmt::EnterSubregion { kind, body, .. } => {
            refs_kind(kind, out);
            refs_block(body, out);
        }
        Stmt::Fork { call, .. } => refs_expr(call, out),
    }
}

fn refs_expr(e: &Expr, out: &mut Vec<Symbol>) {
    match e {
        Expr::Int(..)
        | Expr::Bool(..)
        | Expr::Str(..)
        | Expr::Null(_)
        | Expr::This(_)
        | Expr::Var(_) => {}
        Expr::Unary { expr, .. } => refs_expr(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            refs_expr(lhs, out);
            refs_expr(rhs, out);
        }
        Expr::Field { recv, .. } => refs_expr(recv, out),
        Expr::Call { recv, args, .. } => {
            refs_expr(recv, out);
            for a in args {
                refs_expr(a, out);
            }
        }
        Expr::New { class, .. } => out.push(class.name.name),
        Expr::IntrinsicCall { args, .. } => {
            for a in args {
                refs_expr(a, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn classes(src: &str) -> Vec<ClassDecl> {
        parse_program(src).unwrap().classes
    }

    #[test]
    fn whitespace_shift_changes_nothing() {
        let a = classes("class A<Owner o> { int v; }\n{ }");
        let b = classes("// moved\n\n\nclass A<Owner o> { int v; }\n{ }");
        let fa = fingerprint_class(&a[0]);
        let fb = fingerprint_class(&b[0]);
        assert_eq!(fa.sig, fb.sig);
        assert_eq!(fa.full, fb.full, "relative spans must ignore the shift");
    }

    #[test]
    fn body_edit_changes_full_not_sig() {
        let a = classes("class A<Owner o> { int f(int x) { return x; } }\n{ }");
        let b = classes("class A<Owner o> { int f(int x) { return x + 1; } }\n{ }");
        let fa = fingerprint_class(&a[0]);
        let fb = fingerprint_class(&b[0]);
        assert_eq!(fa.sig, fb.sig);
        assert_ne!(fa.full, fb.full);
    }

    #[test]
    fn sig_edit_changes_sig() {
        let a = classes("class A<Owner o> { int f(int x) { return x; } }\n{ }");
        let b = classes("class A<Owner o> { int f(int x, int y) { return x; } }\n{ }");
        assert_ne!(fingerprint_class(&a[0]).sig, fingerprint_class(&b[0]).sig);
    }

    #[test]
    fn refs_cover_types_and_new_sites() {
        let c = classes(
            "class B<Owner o> { int v; }\n\
             class A<Owner o> extends B<o> { B<o> f; void g() { let x = new B<o>; } }\n{ }",
        );
        let refs = class_refs(&c[1]);
        let names: Vec<&str> = refs.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, vec!["B"]);
    }
}
