//! Diagnostic rendering: turns a [`Span`]-carrying error into a
//! human-readable message with line/column information and a source excerpt.

use crate::span::{LineMap, Span};

/// Renders a diagnostic message pointing at `span` within `src`.
///
/// The output has the shape:
///
/// ```text
/// error: <message>
///   --> line 3, column 7
///    |
///  3 |     TStack<r1, r2> s6;
///    |            ^^^^^^
/// ```
///
/// # Examples
///
/// ```
/// use rtj_lang::diag::render;
/// use rtj_lang::span::Span;
/// let out = render("let x = y;", Span::new(8, 9), "unknown variable `y`");
/// assert!(out.contains("unknown variable"));
/// assert!(out.contains("line 1, column 9"));
/// ```
pub fn render(src: &str, span: Span, message: &str) -> String {
    let map = LineMap::new(src);
    let (line, col) = map.location(span.start);
    let mut out = format!("error: {message}\n  --> line {line}, column {col}\n");
    if let Some(text) = src.lines().nth(line as usize - 1) {
        let gutter = format!("{line:>4}");
        out.push_str(&format!("     |\n{gutter} | {text}\n     | "));
        for _ in 1..col {
            out.push(' ');
        }
        let remaining = (text.len() as u32).saturating_sub(col - 1).max(1);
        let width = span.len().clamp(1, remaining);
        for _ in 0..width {
            out.push('^');
        }
        out.push('\n');
    }
    out
}

/// Renders a diagnostic like [`render`], followed by secondary `note:`
/// labels — one per entry of `notes`. With an empty `notes` the output
/// is byte-identical to [`render`], which is what keeps the checker's
/// default diagnostics stable while `--explain` layers derivation
/// traces on top.
///
/// ```text
/// error: <message>
///   --> line 3, column 7
///    |
///  3 |     TStack<r1, r2> s6;
///    |            ^^^^^^
///    = note: required `r2 ≽ r1`
///    = note: no outlives fact extends the chain from `r2`
/// ```
pub fn render_with_notes(src: &str, span: Span, message: &str, notes: &[String]) -> String {
    let mut out = render(src, span, message);
    for note in notes {
        out.push_str("   = note: ");
        out.push_str(note);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_span() {
        let src = "abc def\nghi jkl\n";
        let out = render(src, Span::new(12, 15), "boom");
        assert!(out.contains("error: boom"));
        assert!(out.contains("line 2, column 5"));
        assert!(out.contains("ghi jkl"));
        let caret_line = out.lines().last().unwrap();
        assert!(caret_line.contains("^^^"), "caret line: {caret_line:?}");
    }

    #[test]
    fn renders_at_start_of_file() {
        let out = render("xyz", Span::new(0, 3), "bad");
        assert!(out.contains("line 1, column 1"));
    }

    #[test]
    fn handles_span_past_line_end() {
        // Degenerate spans must not panic.
        let out = render("ab", Span::new(2, 2), "eof");
        assert!(out.contains("error: eof"));
    }

    #[test]
    fn notes_render_after_excerpt() {
        let src = "abc def\n";
        let notes = vec!["first premise".to_string(), "second premise".to_string()];
        let out = render_with_notes(src, Span::new(0, 3), "boom", &notes);
        assert!(out.contains("= note: first premise\n"));
        assert!(out.ends_with("= note: second premise\n"));
    }

    #[test]
    fn empty_notes_match_plain_render() {
        let src = "abc def\n";
        assert_eq!(
            render_with_notes(src, Span::new(0, 3), "boom", &[]),
            render(src, Span::new(0, 3), "boom")
        );
    }
}
