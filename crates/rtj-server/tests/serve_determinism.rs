//! Determinism and ledger invariants of the multi-tenant server.
//!
//! Every session owns its own `Runtime` and the interpreter's scheduler
//! is deterministic, so the *virtual* outcome of a session (cycles,
//! metrics snapshot, output) is a pure function of its spec — no matter
//! how many workers the executor runs or how work-stealing interleaves
//! sessions. These tests pin that property, plus the Figure-12 ledger
//! on merged snapshots and the `rtj-load/v1` document round-trip.

use rtj_interp::{run_checked, Engine, RunConfig};
use rtj_runtime::{CheckMode, MetricsSnapshot};
use rtj_server::{run_batch, LoadPlan, LoadReport, ServeConfig, ServeOutcome};
use std::time::Duration;

fn smoke_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        queue_capacity: 0,
        programs: vec!["http".into(), "game".into(), "phone".into()],
        variants: 2,
        modes: vec![CheckMode::Static, CheckMode::Dynamic, CheckMode::Audit],
        engines: vec![Engine::Vm, Engine::Tree],
        ..ServeConfig::default()
    }
}

fn deterministic_keys(outcome: &ServeOutcome) -> Vec<String> {
    outcome
        .results
        .iter()
        .map(|r| r.deterministic_key())
        .collect()
}

#[test]
fn per_session_results_identical_across_worker_counts() {
    let rounds = 2;
    let baseline = run_batch(&smoke_config(1), rounds).expect("serve");
    for workers in [4, 7] {
        let outcome = run_batch(&smoke_config(workers), rounds).expect("serve");
        assert_eq!(
            deterministic_keys(&baseline),
            deterministic_keys(&outcome),
            "results diverged between 1 and {workers} workers"
        );
        // The sweep's byte-identity witness agrees with the full diff.
        assert_eq!(
            rtj_server::results_fingerprint(&baseline.results),
            rtj_server::results_fingerprint(&outcome.results),
        );
    }
}

#[test]
fn sessions_match_standalone_runs() {
    // A session on the shared server must produce byte-identical virtual
    // results to a standalone `run_checked` of the same program — the
    // shared-state audit: nothing leaks between tenants or from the
    // serving machinery into the virtual world.
    let cfg = smoke_config(4);
    let outcome = run_batch(&cfg, 1).expect("serve");
    for result in &outcome.results {
        let src = rtj_corpus::request_program(&result.spec.program, result.spec.variant)
            .expect("server program");
        let checked = rtj_interp::build(&src).expect("builds");
        let mut solo_cfg = RunConfig::new(result.spec.mode);
        solo_cfg.engine = result.spec.engine;
        let solo = run_checked(&checked, solo_cfg);
        assert_eq!(result.cycles, solo.cycles, "{:?}", result.spec);
        assert_eq!(result.output, solo.trace, "{:?}", result.spec);
        assert_eq!(
            result.metrics.render(),
            solo.metrics.render(),
            "{:?}",
            result.spec
        );
        assert!(result.error.is_none(), "{:?}", result.spec);
    }
}

#[test]
fn merged_totals_equal_sum_of_sessions_and_ledger_holds() {
    let cfg = smoke_config(6);
    let rounds = 3;
    let outcome = run_batch(&cfg, rounds).expect("serve");
    let report = LoadReport::from_serve(&outcome, "test".into(), 0.0, 1);

    // Merged per-mode totals == sums over that mode's sessions.
    for (mode, merged) in &report.mode_metrics {
        let sessions: Vec<&MetricsSnapshot> = outcome
            .results
            .iter()
            .filter(|r| r.spec.mode == *mode)
            .map(|r| &r.metrics)
            .collect();
        assert_eq!(
            merged.checks_performed(),
            sessions.iter().map(|m| m.checks_performed()).sum::<u64>()
        );
        assert_eq!(
            merged.checks_elided(),
            sessions.iter().map(|m| m.checks_elided()).sum::<u64>()
        );
        assert_eq!(
            merged.total_cycles,
            sessions.iter().map(|m| m.total_cycles).sum::<u64>()
        );
        assert_eq!(
            merged.objects_allocated,
            sessions.iter().map(|m| m.objects_allocated).sum::<u64>()
        );
    }

    // The Figure-12 ledger survives concurrent execution: the checks
    // static mode elided are exactly the checks dynamic mode performed.
    let ledger = report.ledger.expect("static and dynamic both ran");
    assert!(ledger.static_elided > 0);
    assert!(
        ledger.holds(),
        "ledger violated: static.elided={} dynamic.performed={}",
        ledger.static_elided,
        ledger.dynamic_performed
    );
}

#[test]
fn batch_runs_complete_rounds() {
    let cfg = smoke_config(3);
    let outcome = run_batch(&cfg, 2).expect("serve");
    // mix = 3 programs × 2 variants × 3 modes × 2 engines = 36; 2 rounds.
    assert_eq!(outcome.results.len(), 72);
    assert_eq!(outcome.stats.submitted, 72);
    assert_eq!(outcome.stats.completed, 72);
    // Every mode saw the same multiset of (program, variant, engine).
    let report = LoadReport::from_serve(&outcome, "test".into(), 0.0, 1);
    for g in &report.groups {
        assert_eq!(g.requests, 4, "{} {:?} {}", g.program, g.mode, g.engine);
        assert_eq!(g.failed, 0);
    }
}

#[test]
fn open_loop_load_emits_valid_report() {
    let mut cfg = smoke_config(4);
    cfg.engines = vec![Engine::Vm];
    cfg.variants = 2;
    let plan = LoadPlan {
        rate_hz: 3000.0,
        duration: Duration::from_millis(200),
        seed: 42,
    };
    let outcome = rtj_server::run_load(&cfg, &plan).expect("load");
    assert!(outcome.serve.stats.submitted > 0);
    // Top-up made the total a whole number of mix rounds.
    let mix = (3 * 2 * 3) as u64; // programs × variants × modes
    assert_eq!(outcome.serve.stats.submitted % mix, 0);

    let report = LoadReport::from_load(&outcome, "load-test".into());
    assert_eq!(report.submitted, report.completed);
    assert_eq!(report.failed, 0);
    assert!(report.ledger.expect("ledger").holds());
    for g in &report.groups {
        assert!(g.latency.count > 0);
        assert!(g.latency.p50_us <= g.latency.p95_us);
        assert!(g.latency.p95_us <= g.latency.p99_us);
        assert!(g.latency.p99_us <= g.latency.max_us);
        assert_eq!(g.latency.hist.count(), g.requests);
    }
}

#[test]
fn load_report_round_trips_through_json() {
    let cfg = smoke_config(2);
    let outcome = run_batch(&cfg, 1).expect("serve");
    let report = LoadReport::from_serve(&outcome, "roundtrip".into(), 1234.5, 99);
    let rendered = report.render();
    let parsed = LoadReport::parse(&rendered).expect("parses");
    assert_eq!(rendered, parsed.render(), "round-trip changed the document");
    assert_eq!(report.groups.len(), parsed.groups.len());
    assert_eq!(report.peak_concurrent, parsed.peak_concurrent);
    // The rendered report is renderable too (no panics, ledger present).
    assert!(parsed.render_report().contains("figure-12 ledger"));
}

#[test]
fn deterministic_arrival_pattern_is_seed_stable() {
    // Two loads with the same seed submit the same number of windowed
    // arrivals only if wall-clock pacing kept up, which is not
    // guaranteed on a loaded CI box — so instead pin the PRNG-driven
    // spec assignment: session i always maps to the same spec.
    let cfg = smoke_config(2);
    let a = run_batch(&cfg, 1).expect("serve");
    let b = run_batch(&cfg, 1).expect("serve");
    assert_eq!(deterministic_keys(&a), deterministic_keys(&b));
}

#[test]
fn bounded_queue_serves_everything() {
    let mut cfg = smoke_config(2);
    cfg.queue_capacity = 4;
    cfg.engines = vec![Engine::Vm];
    let outcome = run_batch(&cfg, 2).expect("serve");
    assert_eq!(outcome.stats.submitted, outcome.stats.completed);
    // Backpressure bounds in-flight work: capacity + executing workers.
    assert!(outcome.stats.peak_in_flight <= 4 + 2);
}
