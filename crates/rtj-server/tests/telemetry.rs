//! Flight-recorder invariants: telemetry must *observe* the server
//! without perturbing it, and the documents it emits must be internally
//! consistent.
//!
//! Three properties are pinned here:
//!
//! 1. **Identity** — session results (deterministic keys, fingerprints)
//!    are byte-identical with telemetry on and off, at every worker
//!    count.
//! 2. **Structural determinism** — the event log's *structure* (counts
//!    per session-bound kind, the set of attributed sessions, per-lane
//!    timestamp monotonicity) is a function of the workload, not of
//!    scheduling noise, and repeats across fixed-seed runs.
//! 3. **Attribution soundness** — per-session stage intervals are
//!    derived from one monotonic clock chain, so their sum never
//!    exceeds the session's measured latency.

use rtj_interp::Engine;
use rtj_runtime::{CheckMode, Json};
use rtj_server::{
    run_batch, run_load, EventKind, LoadPlan, LoadReport, ServeConfig, ServeOutcome, ServerTrace,
    TelemetryConfig, Timeline, SERVER_TRACE_SCHEMA, STAGE_NAMES, TIMELINE_SCHEMA,
};
use std::collections::BTreeSet;
use std::time::Duration;

fn traced_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        programs: vec!["http".into(), "game".into(), "phone".into()],
        variants: 2,
        modes: vec![CheckMode::Static, CheckMode::Dynamic, CheckMode::Audit],
        engines: vec![Engine::Vm],
        telemetry: Some(TelemetryConfig::default()),
        ..ServeConfig::default()
    }
}

fn keys(outcome: &ServeOutcome) -> Vec<String> {
    outcome
        .results
        .iter()
        .map(|r| r.deterministic_key())
        .collect()
}

fn count(trace: &ServerTrace, kind: EventKind) -> u64 {
    let idx = EventKind::ALL.iter().position(|k| *k == kind).unwrap();
    trace.counts()[idx]
}

#[test]
fn results_identical_with_telemetry_on_and_off() {
    for workers in [1usize, 4] {
        let mut off = traced_config(workers);
        off.telemetry = None;
        let base = run_batch(&off, 2).expect("serve");
        let traced = run_batch(&traced_config(workers), 2).expect("serve");
        assert!(base.telemetry.is_none());
        assert!(traced.telemetry.is_some());
        assert_eq!(
            keys(&base),
            keys(&traced),
            "telemetry perturbed results at {workers} workers"
        );
        assert_eq!(
            rtj_server::results_fingerprint(&base.results),
            rtj_server::results_fingerprint(&traced.results),
        );
    }
}

#[test]
fn event_structure_is_deterministic_across_runs_and_worker_counts() {
    // The *structure* of the log — how many of each session-bound event
    // were recorded, and which sessions got a full stage breakdown — is
    // a pure function of the workload. Wall-clock timestamps and
    // park/unpark/steal counts are scheduling noise and excluded.
    let bound = [
        EventKind::Submit,
        EventKind::Admit,
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::RunStart,
        EventKind::RunEnd,
        EventKind::Record,
    ];
    let mut reference: Option<(Vec<u64>, Vec<u64>)> = None;
    for workers in [1usize, 4] {
        for _ in 0..2 {
            let outcome = run_batch(&traced_config(workers), 2).expect("serve");
            let telemetry = outcome.telemetry.as_ref().expect("telemetry on");
            let executed = outcome.results.len() as u64;
            let counts: Vec<u64> = bound.iter().map(|k| count(&telemetry.trace, *k)).collect();
            for (kind, n) in bound.iter().zip(&counts) {
                assert_eq!(*n, executed, "{} count != executed sessions", kind.name());
            }
            let sessions: Vec<u64> = telemetry.stages.iter().map(|s| s.session).collect();
            match &reference {
                None => reference = Some((counts, sessions)),
                Some((ref_counts, ref_sessions)) => {
                    assert_eq!(*ref_counts, counts, "counts diverged at {workers} workers");
                    assert_eq!(
                        *ref_sessions, sessions,
                        "attributed sessions diverged at {workers} workers"
                    );
                }
            }
        }
    }
}

#[test]
fn single_worker_never_steals() {
    let outcome = run_batch(&traced_config(1), 2).expect("serve");
    let telemetry = outcome.telemetry.expect("telemetry on");
    assert_eq!(count(&telemetry.trace, EventKind::Steal), 0);
    assert!(telemetry
        .stages
        .iter()
        .all(|s| !s.stolen && s.steal_us == 0));
    assert_eq!(outcome.stats.stolen, 0);
}

#[test]
fn timestamps_are_monotone_per_lane() {
    let outcome = run_batch(&traced_config(4), 3).expect("serve");
    let trace = outcome.telemetry.expect("telemetry on").trace;
    assert_eq!(trace.lanes.len(), trace.workers + 1);
    for lane in &trace.lanes {
        let mut prev = 0u64;
        for ev in &lane.events {
            assert!(
                ev.ts_ns >= prev,
                "lane {} went backwards: {} then {}",
                lane.name,
                prev,
                ev.ts_ns
            );
            prev = ev.ts_ns;
        }
    }
}

#[test]
fn stage_sums_never_exceed_measured_latency() {
    // The attribution cross-check from the schema contract: every stage
    // boundary is stamped on the same monotonic clock *before* the
    // latency measurement, so admission + queue + steal + service +
    // merge ≤ the session's recorded latency.
    let outcome = run_batch(&traced_config(4), 2).expect("serve");
    let telemetry = outcome.telemetry.as_ref().expect("telemetry on");
    assert!(!telemetry.stages.is_empty());
    let executed: BTreeSet<u64> = outcome
        .results
        .iter()
        .filter(|r| r.shed.is_none())
        .map(|r| r.spec.session)
        .collect();
    let attributed: BTreeSet<u64> = telemetry.stages.iter().map(|s| s.session).collect();
    assert_eq!(
        executed, attributed,
        "attribution must cover every executed session"
    );
    for stages in &telemetry.stages {
        let result = outcome
            .results
            .iter()
            .find(|r| r.spec.session == stages.session)
            .expect("attributed session has a result");
        assert!(
            stages.total_us() <= result.latency_us,
            "session {}: stage sum {} > latency {}",
            stages.session,
            stages.total_us(),
            result.latency_us
        );
        assert_eq!(stages.stages_us().iter().sum::<u64>(), stages.total_us());
    }
}

#[test]
fn attribution_folds_into_load_report() {
    let mut cfg = traced_config(2);
    cfg.engines = vec![Engine::Vm, Engine::Tree];
    let outcome = run_batch(&cfg, 2).expect("serve");
    let report = LoadReport::from_serve(&outcome, "attribution".into(), 0.0, 1);
    assert!(!report.attribution.is_empty());
    // Groups mirror the latency groups: one per (program, mode, engine),
    // each carrying every stage with a full latency summary.
    assert_eq!(report.attribution.len(), report.groups.len());
    for group in &report.attribution {
        assert_eq!(
            group
                .stages
                .iter()
                .map(|(n, _)| n.as_str())
                .collect::<Vec<_>>(),
            STAGE_NAMES.to_vec()
        );
        for (name, summary) in &group.stages {
            assert_eq!(summary.count, group.sessions, "{name}");
            assert!(summary.p50_us <= summary.p95_us);
            assert!(summary.p99_us <= summary.max_us);
        }
    }
    let attributed: u64 = report.attribution.iter().map(|g| g.sessions).sum();
    assert_eq!(attributed, outcome.results.len() as u64);
    // The JSON document round-trips with the attribution block intact,
    // and the human report renders the stage table.
    let parsed = LoadReport::parse(&report.render()).expect("parses");
    assert_eq!(report.render(), parsed.render());
    assert_eq!(parsed.attribution.len(), report.attribution.len());
    assert!(parsed.render_report().contains("stage attribution"));
}

#[test]
fn reports_without_telemetry_have_no_attribution() {
    let mut cfg = traced_config(2);
    cfg.telemetry = None;
    let outcome = run_batch(&cfg, 1).expect("serve");
    let report = LoadReport::from_serve(&outcome, "plain".into(), 0.0, 1);
    assert!(report.attribution.is_empty());
    let parsed = LoadReport::parse(&report.render()).expect("parses");
    assert!(parsed.attribution.is_empty());
    assert!(!parsed.render_report().contains("stage attribution"));
}

#[test]
fn trace_and_timeline_documents_round_trip() {
    let outcome = run_batch(&traced_config(2), 1).expect("serve");
    let telemetry = outcome.telemetry.expect("telemetry on");

    let rendered = telemetry.trace.render();
    let parsed = ServerTrace::parse(&rendered).expect("trace parses");
    assert_eq!(rendered, parsed.render(), "trace round-trip changed bytes");
    assert_eq!(parsed.counts(), telemetry.trace.counts());
    let doc = Json::parse(&rendered).expect("valid json");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(SERVER_TRACE_SCHEMA)
    );

    let rendered = telemetry.timeline.render();
    let parsed = Timeline::parse(&rendered).expect("timeline parses");
    assert_eq!(
        rendered,
        parsed.render(),
        "timeline round-trip changed bytes"
    );
    let doc = Json::parse(&rendered).expect("valid json");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(TIMELINE_SCHEMA)
    );
}

#[test]
fn chrome_export_is_wellformed_trace_event_json() {
    let outcome = run_batch(&traced_config(2), 1).expect("serve");
    let trace = outcome.telemetry.expect("telemetry on").trace;
    let rendered = trace.to_chrome_trace().render();
    let doc = Json::parse(&rendered).expect("chrome export is valid JSON");
    let events = doc.as_arr().expect("trace_event array form");
    assert!(!events.is_empty());
    let mut metadata = 0u64;
    let mut complete = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert!(ev.get("pid").and_then(Json::as_u64).is_some());
        assert!(ev.get("tid").and_then(Json::as_u64).is_some());
        match ph {
            "M" => metadata += 1,
            "X" => {
                complete += 1;
                assert!(ev.get("ts").and_then(Json::as_u64).is_some());
                assert!(ev.get("dur").and_then(Json::as_u64).is_some());
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // One thread_name record per lane; every run is a complete event.
    assert_eq!(metadata as usize, trace.lanes.len());
    assert!(complete >= count(&trace, EventKind::RunStart));
    // The JSONL export carries the same events, one per line.
    let jsonl = trace.to_trace_jsonl();
    assert_eq!(jsonl.lines().count(), events.len());
    for line in jsonl.lines() {
        Json::parse(line).expect("each JSONL line is a valid object");
    }
}

#[test]
fn injected_panic_is_traced_and_surfaced() {
    let mut cfg = traced_config(2);
    cfg.panic_session = Some(3);
    let outcome = run_batch(&cfg, 1).expect("serve");
    assert_eq!(outcome.stats.panicked, 1);
    let telemetry = outcome.telemetry.as_ref().expect("telemetry on");
    assert_eq!(count(&telemetry.trace, EventKind::Panic), 1);
    // The executor counter reaches the report and its rendering.
    let report = LoadReport::from_serve(&outcome, "panic".into(), 0.0, 1);
    assert_eq!(report.panicked, 1);
    assert!(report.render_report().contains("1 panicked"));
    let parsed = LoadReport::parse(&report.render()).expect("parses");
    assert_eq!(parsed.panicked, 1);
}

#[test]
fn sampler_tracks_completions_to_the_end() {
    let mut cfg = traced_config(2);
    cfg.telemetry = Some(TelemetryConfig {
        tick: Duration::from_micros(500),
    });
    let plan = LoadPlan {
        rate_hz: 2000.0,
        duration: Duration::from_millis(120),
        seed: 9,
    };
    let outcome = run_load(&cfg, &plan).expect("load");
    let timeline = outcome.serve.telemetry.expect("telemetry on").timeline;
    assert_eq!(timeline.tick_us, 500);
    assert!(timeline.samples.len() >= 2, "sampler produced no ticks");
    let mut prev = 0u64;
    for s in &timeline.samples {
        assert!(s.ts_us >= prev);
        prev = s.ts_us;
        assert_eq!(s.workers.len(), 2);
    }
    // The final sample is pushed after executor shutdown: it must see
    // the fully drained server.
    let last = timeline.samples.last().unwrap();
    assert_eq!(last.completed, outcome.serve.stats.completed);
    assert_eq!(last.in_flight, 0);
    assert_eq!(last.queued, 0);
}
