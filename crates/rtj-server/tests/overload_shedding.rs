//! Overload behaviour of the multi-tenant server: deadline shedding
//! (admission and queue), panic containment, and the `sessions.shed` /
//! `rtj-serve-bench/v1` report surfaces.
//!
//! Shedding is a wall-clock decision, so these tests construct the
//! overload deterministically — a zero deadline sheds everything at
//! admission; a long per-session stall with a short deadline forces the
//! backlog past the deadline so later sessions shed in queue — rather
//! than relying on CI box timing.

use rtj_interp::Engine;
use rtj_runtime::CheckMode;
use rtj_server::{
    results_fingerprint, run_batch, LoadReport, ServeBenchReport, ServeConfig, SessionResult,
    ShedStage, SweepRow,
};
use std::time::Duration;

fn small_config(workers: usize) -> ServeConfig {
    ServeConfig {
        workers,
        programs: vec!["http".into(), "game".into()],
        variants: 1,
        modes: vec![CheckMode::Static, CheckMode::Dynamic],
        engines: vec![Engine::Vm],
        ..ServeConfig::default()
    }
}

fn executed(results: &[SessionResult]) -> impl Iterator<Item = &SessionResult> {
    results.iter().filter(|r| r.shed.is_none())
}

#[test]
fn zero_deadline_sheds_every_session_at_admission() {
    let mut cfg = small_config(2);
    cfg.deadline = Some(Duration::ZERO);
    let outcome = run_batch(&cfg, 3).expect("serve");
    assert_eq!(outcome.results.len(), 12); // 2 programs × 2 modes × 3 rounds
    assert_eq!(outcome.shed.admission, 12);
    assert_eq!(outcome.shed.queue, 0);
    assert_eq!(executed(&outcome.results).count(), 0);
    for r in &outcome.results {
        assert_eq!(r.shed, Some(ShedStage::Admission));
        assert_eq!(r.cycles, 0);
        assert!(r.error.is_none());
    }
    // Shed-only runs have no executed population: no metrics, no ledger.
    let report = LoadReport::from_serve(&outcome, "shed-all".into(), 0.0, 1);
    assert_eq!(report.completed, 0);
    assert_eq!(report.submitted, 12);
    assert_eq!(report.shed_admission, 12);
    assert!(report.mode_metrics.is_empty());
    assert!(report.ledger.is_none());
    assert_eq!(report.groups.iter().map(|g| g.shed).sum::<u64>(), 12);
}

#[test]
fn slow_sessions_shed_in_queue_and_matched_ledger_still_holds() {
    // One worker, each executed session stalls 30 ms, deadline 10 ms:
    // the first claim beats its deadline, the backlog behind it cannot.
    let mut cfg = small_config(1);
    cfg.stall_us = 30_000;
    cfg.deadline = Some(Duration::from_millis(10));
    let outcome = run_batch(&cfg, 4).expect("serve");
    assert_eq!(outcome.results.len(), 16);
    assert!(
        outcome.shed.queue > 0,
        "expected queue shedding, got {:?}",
        outcome.shed
    );
    let ran = executed(&outcome.results).count();
    assert!(ran >= 1, "at least the first claim executes");
    assert_eq!(ran as u64 + outcome.shed.total(), 16);

    let report = LoadReport::from_serve(&outcome, "shed-queue".into(), 0.0, 1);
    assert_eq!(report.completed as usize, ran);
    assert_eq!(report.shed_queue, outcome.shed.queue);
    // The matched-population ledger holds exactly even though shedding
    // unbalanced the modes: per (program, variant), only
    // min(static, dynamic) executed sessions of each mode are compared.
    if let Some(ledger) = report.ledger {
        assert!(
            ledger.holds(),
            "matched ledger violated: {} != {}",
            ledger.static_elided,
            ledger.dynamic_performed
        );
    }
}

#[test]
fn shed_sessions_do_not_perturb_the_fingerprint() {
    // The byte-identity witness covers executed sessions only, so a run
    // that shed nothing and a run that shed everything-but-one-round
    // can still be compared on what actually ran.
    let clean = run_batch(&small_config(2), 1).expect("serve");
    let all_shed = {
        let mut cfg = small_config(2);
        cfg.deadline = Some(Duration::ZERO);
        run_batch(&cfg, 1).expect("serve")
    };
    assert_ne!(
        results_fingerprint(&clean.results),
        results_fingerprint(&[]),
        "executed sessions must contribute"
    );
    assert_eq!(
        results_fingerprint(&all_shed.results),
        results_fingerprint(&[]),
        "shed sessions must not contribute"
    );
}

#[test]
fn panicking_session_is_contained_and_round_completes() {
    let mut cfg = small_config(3);
    cfg.panic_session = Some(2);
    let outcome = run_batch(&cfg, 2).expect("serve");
    assert_eq!(outcome.results.len(), 8, "the round completed");
    let poisoned = &outcome.results[2];
    assert_eq!(poisoned.spec.session, 2);
    let err = format!("{:?}", poisoned.error.as_ref().expect("recorded as failed"));
    assert!(err.contains("panicked"), "unexpected error: {err}");
    assert_eq!(poisoned.cycles, 0);
    for r in outcome.results.iter().filter(|r| r.spec.session != 2) {
        assert!(r.error.is_none(), "bystander session failed: {:?}", r.spec);
    }
    let report = LoadReport::from_serve(&outcome, "panic".into(), 0.0, 1);
    assert_eq!(report.failed, 1);
    assert_eq!(report.completed, 8);
}

#[test]
fn shed_counts_round_trip_through_the_load_document() {
    let mut cfg = small_config(2);
    cfg.stall_us = 30_000;
    cfg.deadline = Some(Duration::from_millis(10));
    let outcome = run_batch(&cfg, 4).expect("serve");
    let report = LoadReport::from_serve(&outcome, "roundtrip".into(), 0.0, 7);
    let parsed = LoadReport::parse(&report.render()).expect("parses");
    assert_eq!(report.render(), parsed.render());
    assert_eq!(parsed.shed_admission, report.shed_admission);
    assert_eq!(parsed.shed_queue, report.shed_queue);
    assert_eq!(
        parsed.groups.iter().map(|g| g.shed).sum::<u64>(),
        report.shed_total()
    );
    if report.shed_total() > 0 {
        assert!(parsed.render_report().contains("shed"));
    }
}

#[test]
fn serve_bench_report_round_trips_and_derives() {
    let overload = {
        let mut cfg = small_config(2);
        cfg.deadline = Some(Duration::ZERO);
        let outcome = run_batch(&cfg, 2).expect("serve");
        LoadReport::from_serve(&outcome, "overload".into(), 50_000.0, 20)
    };
    let row = |workers: usize, duration_ms: u64| SweepRow {
        workers,
        sessions: 144,
        duration_ms,
        throughput_hz: 144.0 * 1000.0 / duration_ms as f64,
        stolen: if workers > 1 { 3 } else { 0 },
        fingerprint: 0xdead_beef_cafe_f00d,
    };
    let report = ServeBenchReport {
        overload,
        sweep_rounds: 36,
        sweep_stall_us: 250,
        rows: vec![row(1, 400), row(2, 210), row(4, 120), row(8, 90)],
    };
    assert!(report.identical_results());
    assert!((report.speedup() - 400.0 / 90.0).abs() < 1e-9);

    let parsed = ServeBenchReport::parse(&report.render()).expect("parses");
    assert_eq!(report.render(), parsed.render());
    assert_eq!(parsed.rows.len(), 4);
    assert_eq!(parsed.rows[3].fingerprint, 0xdead_beef_cafe_f00d);
    assert_eq!(parsed.overload.shed_total(), report.overload.shed_total());
    let human = parsed.render_report();
    assert!(human.contains("worker sweep"));
    assert!(human.contains("byte-identical"));
}
