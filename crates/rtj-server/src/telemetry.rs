//! The server flight recorder: scheduling event log, periodic telemetry
//! sampler, and per-session latency attribution.
//!
//! Three layers, all gated by [`crate::ServeConfig::telemetry`] and
//! compiled down to a single `Option` branch when disabled:
//!
//! 1. **Event log** — every scheduling decision (submit, admit, enqueue,
//!    dequeue, steal, park, unpark, run-start, run-end, record, shed,
//!    panic) is appended to a per-lane buffer with a monotonic-clock
//!    timestamp. Lanes are per-worker plus one submitter lane; each lane
//!    is written by exactly one thread while the run is live, so the
//!    lane mutexes are uncontended and an append is a timestamp read
//!    plus a `Vec` push (allocation-light: buffers are pre-reserved and
//!    grow amortised). The lanes drain shard-by-shard at the end of the
//!    run into a versioned [`SERVER_TRACE_SCHEMA`] document with Chrome
//!    `trace_event` export ([`ServerTrace::to_chrome_trace`]) so worker
//!    lanes render in `chrome://tracing` / Perfetto.
//! 2. **Sampler** — a background thread snapshots executor gauges
//!    (in-flight, queued, completed, shed, per-worker completed counts
//!    and queue depths) every [`TelemetryConfig::tick`] into a
//!    [`TIMELINE_SCHEMA`] time-series.
//! 3. **Attribution** — [`ServerTrace::session_stages`] replays the
//!    event log into per-session stage intervals (admission, queue,
//!    steal, service, merge). Stage boundaries are stamped so that the
//!    sum of a session's stages is always ≤ its end-to-end latency (the
//!    `record` boundary is stamped *before* the latency measurement),
//!    which the test suite asserts.
//!
//! **Determinism contract**: the recorder never touches session results
//! — `results_fingerprint` is byte-identical with telemetry on or off.
//! Timestamps are wall-clock and differ between runs; the *structure*
//! (per-kind event counts over session-bound kinds, per-session stage
//! ordering) is deterministic for a fixed seed, and timestamps are
//! monotone per lane (each lane is written by one thread reading a
//! monotonic clock).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rtj_runtime::{Json, JsonError};

/// Version tag of the scheduling-trace schema.
pub const SERVER_TRACE_SCHEMA: &str = "rtj-server-trace/v1";

/// Version tag of the telemetry time-series schema.
pub const TIMELINE_SCHEMA: &str = "rtj-timeline/v1";

/// Telemetry options: enabling this on [`crate::ServeConfig`] turns the
/// flight recorder and sampler on.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampler tick. Default 10 ms.
    pub tick: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            tick: Duration::from_millis(10),
        }
    }
}

/// One kind of scheduling event. Session-bound kinds carry the session
/// id; `park`/`unpark` describe the worker itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A session arrived at the server (submitter lane).
    Submit,
    /// The session passed admission control (submitter lane).
    Admit,
    /// The session was handed to an executor shard (submitter lane).
    Enqueue,
    /// A worker claimed the session from a queue (worker lane).
    Dequeue,
    /// The claiming worker was not the shard owner (worker lane,
    /// stamped right after the matching `Dequeue`).
    Steal,
    /// The worker found no work and parked (worker lane).
    Park,
    /// The worker woke from a park (worker lane).
    Unpark,
    /// The engine started executing the session (worker lane).
    RunStart,
    /// The engine (plus any simulated downstream stall) finished
    /// (worker lane).
    RunEnd,
    /// The session's result reached its result shard — stamped with the
    /// shard lock held, *before* the end-to-end latency measurement, so
    /// per-session stage sums never exceed the measured latency
    /// (worker lane).
    Record,
    /// The session was shed instead of executed (submitter lane at
    /// admission, worker lane in queue).
    Shed,
    /// The session's engine run panicked; the unwind was contained
    /// (worker lane).
    Panic,
}

impl EventKind {
    /// Every kind, in stable serialization order.
    pub const ALL: [EventKind; 12] = [
        EventKind::Submit,
        EventKind::Admit,
        EventKind::Enqueue,
        EventKind::Dequeue,
        EventKind::Steal,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::RunStart,
        EventKind::RunEnd,
        EventKind::Record,
        EventKind::Shed,
        EventKind::Panic,
    ];

    /// Stable lower-case name used in the JSON documents.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Submit => "submit",
            EventKind::Admit => "admit",
            EventKind::Enqueue => "enqueue",
            EventKind::Dequeue => "dequeue",
            EventKind::Steal => "steal",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::RunStart => "run-start",
            EventKind::RunEnd => "run-end",
            EventKind::Record => "record",
            EventKind::Shed => "shed",
            EventKind::Panic => "panic",
        }
    }

    /// Inverse of [`EventKind::name`].
    pub fn parse(name: &str) -> Option<EventKind> {
        EventKind::ALL.into_iter().find(|k| k.name() == name)
    }

    fn index(&self) -> usize {
        EventKind::ALL.iter().position(|k| k == self).unwrap()
    }
}

/// One recorded scheduling event. `Copy`-sized on purpose: the hot-path
/// append is a clock read and a 24-byte push.
///
/// Timestamps are **nanoseconds** since the recorder's epoch. The
/// precision matters for the attribution invariant: per-stage durations
/// are truncated to microseconds *per stage*, and because truncation is
/// superadditive (`⌊a⌋ + ⌊b⌋ ≤ ⌊a + b⌋`) the stage sum can never
/// exceed the separately truncated end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder's epoch (monotonic clock).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// The session involved, when the kind is session-bound
    /// (`park`/`unpark` are not).
    pub session: Option<u64>,
}

/// The in-flight event log: one pre-reserved buffer per lane (worker
/// lanes `0..workers`, submitter lane `workers`). Each lane is written
/// by exactly one thread while the run is live — the same exclusive
/// ownership discipline as the result shards — so the per-lane mutex is
/// uncontended and exists only to hand the buffers to the drain safely.
#[derive(Debug)]
pub struct FlightRecorder {
    epoch: Instant,
    lanes: Vec<Mutex<Vec<TraceEvent>>>,
}

impl FlightRecorder {
    /// Creates a recorder with `workers` worker lanes plus the
    /// submitter lane.
    pub fn new(workers: usize) -> FlightRecorder {
        FlightRecorder {
            epoch: Instant::now(),
            lanes: (0..workers + 1)
                .map(|_| Mutex::new(Vec::with_capacity(1024)))
                .collect(),
        }
    }

    /// Number of worker lanes (the submitter lane is extra).
    pub fn workers(&self) -> usize {
        self.lanes.len() - 1
    }

    /// The submitter lane index.
    pub fn submit_lane(&self) -> usize {
        self.lanes.len() - 1
    }

    /// Microseconds since the recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends one event to `lane`.
    #[inline]
    pub fn record(&self, lane: usize, kind: EventKind, session: Option<u64>) {
        let event = TraceEvent {
            ts_ns: self.now_ns(),
            kind,
            session,
        };
        self.lanes[lane].lock().unwrap().push(event);
    }

    /// Takes every lane's buffer (worker lanes first, submitter last).
    /// Call after the workers have stopped.
    pub fn drain(&self) -> Vec<Vec<TraceEvent>> {
        self.lanes
            .iter()
            .map(|lane| std::mem::take(&mut *lane.lock().unwrap()))
            .collect()
    }
}

/// Per-worker gauge pair inside one timeline sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerSample {
    /// Jobs this worker has executed so far.
    pub completed: u64,
    /// Jobs currently waiting in this worker's shard queue.
    pub queued: u64,
}

/// One tick of the telemetry sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineSample {
    /// Microseconds since the recorder epoch.
    pub ts_us: u64,
    /// Sessions in flight (queued + executing).
    pub in_flight: u64,
    /// Sessions queued but not yet claimed.
    pub queued: u64,
    /// Sessions executed so far (cumulative).
    pub completed: u64,
    /// Sessions shed so far (admission + queue, cumulative).
    pub shed: u64,
    /// Completion rate over the previous tick (sessions/s); `0` for the
    /// first sample. Derived from the `completed` deltas at document
    /// build time.
    pub throughput_hz: f64,
    /// Per-worker completed counts and queue depths.
    pub workers: Vec<WorkerSample>,
}

/// The `rtj-timeline/v1` time-series: what the executor's gauges did
/// over the run, sampled every `tick_us`.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Sampler tick, microseconds.
    pub tick_us: u64,
    /// The samples, in time order.
    pub samples: Vec<TimelineSample>,
}

impl Timeline {
    /// Builds the document from raw sampler output, deriving each
    /// sample's throughput from the `completed` deltas.
    pub fn new(tick_us: u64, mut samples: Vec<TimelineSample>) -> Timeline {
        for i in 1..samples.len() {
            let dt_us = samples[i].ts_us.saturating_sub(samples[i - 1].ts_us);
            let dn = samples[i]
                .completed
                .saturating_sub(samples[i - 1].completed);
            samples[i].throughput_hz = if dt_us > 0 {
                dn as f64 * 1_000_000.0 / dt_us as f64
            } else {
                0.0
            };
        }
        Timeline { tick_us, samples }
    }

    /// Serialises to the versioned document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(TIMELINE_SCHEMA.into())),
            ("tick_us", Json::Int(self.tick_us as i64)),
            (
                "samples",
                Json::Arr(
                    self.samples
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("ts_us", Json::Int(s.ts_us as i64)),
                                ("in_flight", Json::Int(s.in_flight as i64)),
                                ("queued", Json::Int(s.queued as i64)),
                                ("completed", Json::Int(s.completed as i64)),
                                ("shed", Json::Int(s.shed as i64)),
                                ("throughput_hz", Json::Float(s.throughput_hz)),
                                (
                                    "workers",
                                    Json::Arr(
                                        s.workers
                                            .iter()
                                            .map(|w| {
                                                Json::Arr(vec![
                                                    Json::Int(w.completed as i64),
                                                    Json::Int(w.queued as i64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a document produced by [`Timeline::to_json`], rejecting
    /// wrong or missing schema tags.
    pub fn from_json(v: &Json) -> Result<Timeline, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(TIMELINE_SCHEMA) => {}
            Some(other) => return Err(bad(format!("expected {TIMELINE_SCHEMA}, got {other}"))),
            None => return Err(bad("missing `schema`")),
        }
        let mut samples = Vec::new();
        for s in v
            .get("samples")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `samples`"))?
        {
            let field = |k: &str| -> Result<u64, JsonError> {
                s.get(k)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad(format!("missing sample `{k}`")))
            };
            let mut workers = Vec::new();
            for w in s
                .get("workers")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing sample `workers`"))?
            {
                let pair = w.as_arr().ok_or_else(|| bad("bad worker pair"))?;
                match (
                    pair.first().and_then(Json::as_u64),
                    pair.get(1).and_then(Json::as_u64),
                ) {
                    (Some(completed), Some(queued)) => {
                        workers.push(WorkerSample { completed, queued })
                    }
                    _ => return Err(bad("bad worker pair")),
                }
            }
            samples.push(TimelineSample {
                ts_us: field("ts_us")?,
                in_flight: field("in_flight")?,
                queued: field("queued")?,
                completed: field("completed")?,
                shed: field("shed")?,
                throughput_hz: s
                    .get("throughput_hz")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("missing sample `throughput_hz`"))?,
                workers,
            });
        }
        Ok(Timeline {
            tick_us: v
                .get("tick_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `tick_us`"))?,
            samples,
        })
    }

    /// Parses the rendered text form.
    pub fn parse(text: &str) -> Result<Timeline, JsonError> {
        Timeline::from_json(&Json::parse(text)?)
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Renders the human-readable timeline: one row per sample with the
    /// run gauges, the per-tick shed delta (the shed timeline), and the
    /// per-worker queue depths.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("telemetry timeline ({TIMELINE_SCHEMA})\n");
        out += &format!("tick          : {} µs\n", self.tick_us);
        out += &format!("samples       : {}\n\n", self.samples.len());
        out += &format!(
            "{:>9} {:>9} {:>7} {:>10} {:>6} {:>6} {:>11}  {}\n",
            "ts µs",
            "in_flight",
            "queued",
            "completed",
            "shed",
            "Δshed",
            "sessions/s",
            "queue depth/worker"
        );
        let mut prev_shed = 0u64;
        for s in &self.samples {
            let depths: Vec<String> = s.workers.iter().map(|w| w.queued.to_string()).collect();
            out += &format!(
                "{:>9} {:>9} {:>7} {:>10} {:>6} {:>6} {:>11.0}  {}\n",
                s.ts_us,
                s.in_flight,
                s.queued,
                s.completed,
                s.shed,
                s.shed.saturating_sub(prev_shed),
                s.throughput_hz,
                depths.join("/"),
            );
            prev_shed = s.shed;
        }
        out
    }
}

/// The background sampler thread: calls `probe` every tick, pushes a
/// final sample at stop (so the drained end state is always captured).
#[derive(Debug)]
pub(crate) struct Sampler {
    stop: Arc<AtomicBool>,
    handle: thread::JoinHandle<Vec<TimelineSample>>,
}

impl Sampler {
    /// Spawns the sampler thread.
    pub(crate) fn start(
        tick: Duration,
        probe: impl Fn() -> TimelineSample + Send + 'static,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let tick = tick.max(Duration::from_micros(100));
        let handle = thread::Builder::new()
            .name("rtj-telemetry".into())
            .spawn(move || {
                let mut samples = Vec::new();
                loop {
                    samples.push(probe());
                    // Sleep the tick in small chunks so a stop request is
                    // honoured promptly even with a coarse tick.
                    let mut slept = Duration::ZERO;
                    while slept < tick {
                        if stop_flag.load(Ordering::SeqCst) {
                            samples.push(probe());
                            return samples;
                        }
                        let chunk = (tick - slept).min(Duration::from_millis(2));
                        thread::sleep(chunk);
                        slept += chunk;
                    }
                }
            })
            .expect("spawn sampler");
        Sampler { stop, handle }
    }

    /// Stops the thread and returns the samples (including one final
    /// sample taken after the stop request).
    pub(crate) fn stop(self) -> Vec<TimelineSample> {
        self.stop.store(true, Ordering::SeqCst);
        self.handle.join().expect("sampler thread")
    }
}

/// One lane of the drained trace: who wrote it and what they recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceLane {
    /// `worker-N` or `submit`.
    pub name: String,
    /// The lane's events, in the order they were recorded (timestamps
    /// are monotone within a lane).
    pub events: Vec<TraceEvent>,
}

/// Per-session stage intervals derived from the event log. The stages
/// partition `submit → record` into consecutive intervals whose
/// durations are truncated to microseconds individually, so their sum
/// never exceeds the recorder-observed end-to-end time — and, because
/// the `record` boundary is stamped before the latency measurement,
/// never exceeds the session's reported `latency_us` either.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStages {
    /// The session these stages describe.
    pub session: u64,
    /// Whether a non-owner worker executed the session.
    pub stolen: bool,
    /// `submit → enqueue`: admission control and submit-side setup.
    pub admission_us: u64,
    /// `enqueue → dequeue`: waiting in the shard queue (includes
    /// bounded-queue backpressure). For sessions the owning worker ran
    /// itself, the `dequeue → run-start` dispatch gap folds in here.
    pub queue_us: u64,
    /// `dequeue → run-start` when a non-owner worker claimed the
    /// session — the steal handoff. Always `0` when not stolen.
    pub steal_us: u64,
    /// `run-start → run-end`: the engine run plus any simulated
    /// downstream stall.
    pub service_us: u64,
    /// `run-end → record`: result-shard lock acquisition.
    pub merge_us: u64,
}

/// Stage names, in breakdown order (matches the `stages` object of the
/// `rtj-load/v1` attribution block).
pub const STAGE_NAMES: [&str; 5] = ["admission", "queue", "steal", "service", "merge"];

impl SessionStages {
    /// The stage intervals, in [`STAGE_NAMES`] order.
    pub fn stages_us(&self) -> [u64; 5] {
        [
            self.admission_us,
            self.queue_us,
            self.steal_us,
            self.service_us,
            self.merge_us,
        ]
    }

    /// Sum of the stages — at most the recorder-observed
    /// `submit → record` time (per-stage truncation rounds down).
    pub fn total_us(&self) -> u64 {
        self.stages_us().iter().sum()
    }
}

/// The `rtj-server-trace/v1` document: the drained event log, one lane
/// per writer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerTrace {
    /// Worker-lane count (the submitter lane is extra).
    pub workers: usize,
    /// Recorder time at drain, microseconds since epoch.
    pub duration_us: u64,
    /// Worker lanes `0..workers`, then the submitter lane.
    pub lanes: Vec<TraceLane>,
}

impl ServerTrace {
    /// Assembles the document from a drained recorder (worker lanes
    /// first, submitter lane last — [`FlightRecorder::drain`] order).
    pub fn new(workers: usize, duration_us: u64, buffers: Vec<Vec<TraceEvent>>) -> ServerTrace {
        let lanes = buffers
            .into_iter()
            .enumerate()
            .map(|(i, events)| TraceLane {
                name: if i < workers {
                    format!("worker-{i}")
                } else {
                    "submit".to_string()
                },
                events,
            })
            .collect();
        ServerTrace {
            workers,
            duration_us,
            lanes,
        }
    }

    /// Event counts per kind over all lanes, in [`EventKind::ALL`] order.
    pub fn counts(&self) -> [u64; 12] {
        let mut counts = [0u64; 12];
        for lane in &self.lanes {
            for e in &lane.events {
                counts[e.kind.index()] += 1;
            }
        }
        counts
    }

    /// Derives the per-session stage breakdown from the event log.
    /// Sessions missing any boundary (shed or still in flight) are
    /// skipped. Sorted by session id.
    pub fn session_stages(&self) -> Vec<SessionStages> {
        use std::collections::HashMap;
        // submit, enqueue, dequeue, run-start, run-end, record
        let mut bounds: HashMap<u64, ([Option<u64>; 6], bool)> = HashMap::new();
        for lane in &self.lanes {
            for e in &lane.events {
                let Some(session) = e.session else { continue };
                let slot = match e.kind {
                    EventKind::Submit => 0,
                    EventKind::Enqueue => 1,
                    EventKind::Dequeue => 2,
                    EventKind::RunStart => 3,
                    EventKind::RunEnd => 4,
                    EventKind::Record => 5,
                    EventKind::Steal => {
                        bounds.entry(session).or_default().1 = true;
                        continue;
                    }
                    _ => continue,
                };
                bounds.entry(session).or_default().0[slot] = Some(e.ts_ns);
            }
        }
        let mut stages: Vec<SessionStages> = bounds
            .into_iter()
            .filter_map(|(session, (b, stolen))| {
                let [Some(submit), Some(enqueue), Some(dequeue), Some(run_start), Some(run_end), Some(record)] =
                    b
                else {
                    return None;
                };
                // Durations are computed in nanoseconds and truncated to
                // microseconds per stage; the non-stolen dispatch gap
                // folds into the queue stage so `steal` measures actual
                // migrations only.
                let us = |ns: u64| ns / 1_000;
                let dispatch = run_start.saturating_sub(dequeue);
                let (queue_ns, steal_ns) = if stolen {
                    (dequeue.saturating_sub(enqueue), dispatch)
                } else {
                    (dequeue.saturating_sub(enqueue) + dispatch, 0)
                };
                Some(SessionStages {
                    session,
                    stolen,
                    admission_us: us(enqueue.saturating_sub(submit)),
                    queue_us: us(queue_ns),
                    steal_us: us(steal_ns),
                    service_us: us(run_end.saturating_sub(run_start)),
                    merge_us: us(record.saturating_sub(run_end)),
                })
            })
            .collect();
        stages.sort_by_key(|s| s.session);
        stages
    }

    /// Serialises to the versioned document. Events are compact
    /// `[ts_ns, kind, session]` triples (`session` is `null` for
    /// park/unpark).
    pub fn to_json(&self) -> Json {
        let counts = self.counts();
        Json::obj(vec![
            ("schema", Json::Str(SERVER_TRACE_SCHEMA.into())),
            ("workers", Json::Int(self.workers as i64)),
            ("duration_us", Json::Int(self.duration_us as i64)),
            (
                "counts",
                Json::obj(
                    EventKind::ALL
                        .iter()
                        .enumerate()
                        .map(|(i, k)| (k.name(), Json::Int(counts[i] as i64)))
                        .collect(),
                ),
            ),
            (
                "lanes",
                Json::Arr(
                    self.lanes
                        .iter()
                        .map(|lane| {
                            Json::obj(vec![
                                ("name", Json::Str(lane.name.clone())),
                                (
                                    "events",
                                    Json::Arr(
                                        lane.events
                                            .iter()
                                            .map(|e| {
                                                Json::Arr(vec![
                                                    Json::Int(e.ts_ns as i64),
                                                    Json::Str(e.kind.name().into()),
                                                    match e.session {
                                                        Some(s) => Json::Int(s as i64),
                                                        None => Json::Null,
                                                    },
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a document produced by [`ServerTrace::to_json`], rejecting
    /// wrong or missing schema tags.
    pub fn from_json(v: &Json) -> Result<ServerTrace, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(SERVER_TRACE_SCHEMA) => {}
            Some(other) => return Err(bad(format!("expected {SERVER_TRACE_SCHEMA}, got {other}"))),
            None => return Err(bad("missing `schema`")),
        }
        let mut lanes = Vec::new();
        for lane in v
            .get("lanes")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `lanes`"))?
        {
            let name = lane
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing lane `name`"))?
                .to_string();
            let mut events = Vec::new();
            for e in lane
                .get("events")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("missing lane `events`"))?
            {
                let triple = e.as_arr().ok_or_else(|| bad("bad event triple"))?;
                let ts_ns = triple
                    .first()
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("bad event timestamp"))?;
                let kind = triple
                    .get(1)
                    .and_then(Json::as_str)
                    .and_then(EventKind::parse)
                    .ok_or_else(|| bad("bad event kind"))?;
                let session = match triple.get(2) {
                    Some(s) if s.is_null() => None,
                    Some(s) => Some(s.as_u64().ok_or_else(|| bad("bad event session"))?),
                    None => return Err(bad("bad event triple")),
                };
                events.push(TraceEvent {
                    ts_ns,
                    kind,
                    session,
                });
            }
            lanes.push(TraceLane { name, events });
        }
        Ok(ServerTrace {
            workers: v
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `workers`"))? as usize,
            duration_us: v
                .get("duration_us")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `duration_us`"))?,
            lanes,
        })
    }

    /// Parses the rendered text form.
    pub fn parse(text: &str) -> Result<ServerTrace, JsonError> {
        ServerTrace::from_json(&Json::parse(text)?)
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Exports the trace as a Chrome `trace_event` JSON array (load it
    /// in `chrome://tracing` or Perfetto): one `tid` per lane with
    /// `thread_name` metadata, `X` complete events for run and park
    /// intervals, instant events for everything else.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events = Vec::new();
        for (tid, lane) in self.lanes.iter().enumerate() {
            events.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Int(0)),
                ("tid", Json::Int(tid as i64)),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(lane.name.clone()))]),
                ),
            ]));
            let complete = |name: String, cat: &str, ts: u64, dur: u64| {
                Json::obj(vec![
                    ("name", Json::Str(name)),
                    ("cat", Json::Str(cat.into())),
                    ("ph", Json::Str("X".into())),
                    ("ts", Json::Int(ts as i64)),
                    ("dur", Json::Int(dur as i64)),
                    ("pid", Json::Int(0)),
                    ("tid", Json::Int(tid as i64)),
                ])
            };
            let instant = |e: &TraceEvent| {
                Json::obj(vec![
                    (
                        "name",
                        Json::Str(match e.session {
                            Some(s) => format!("{} s{}", e.kind.name(), s),
                            None => e.kind.name().to_string(),
                        }),
                    ),
                    ("cat", Json::Str("sched".into())),
                    ("ph", Json::Str("i".into())),
                    ("s", Json::Str("t".into())),
                    ("ts", Json::Int((e.ts_ns / 1_000) as i64)),
                    ("pid", Json::Int(0)),
                    ("tid", Json::Int(tid as i64)),
                ])
            };
            // Pair interval starts with their ends; the lane is written
            // by one thread, so matching is sequential. Chrome `ts`/
            // `dur` are microseconds.
            let mut run_start: Option<(u64, u64)> = None; // (ts_ns, session)
            let mut park_start: Option<u64> = None;
            for e in &lane.events {
                match e.kind {
                    EventKind::RunStart => run_start = Some((e.ts_ns, e.session.unwrap_or(0))),
                    EventKind::RunEnd => {
                        if let Some((ts, session)) = run_start.take() {
                            events.push(complete(
                                format!("session {session}"),
                                "run",
                                ts / 1_000,
                                e.ts_ns.saturating_sub(ts) / 1_000,
                            ));
                        }
                    }
                    EventKind::Park => park_start = Some(e.ts_ns),
                    EventKind::Unpark => {
                        if let Some(ts) = park_start.take() {
                            events.push(complete(
                                "park".to_string(),
                                "idle",
                                ts / 1_000,
                                e.ts_ns.saturating_sub(ts) / 1_000,
                            ));
                        }
                    }
                    _ => events.push(instant(e)),
                }
            }
            // A worker can still be parked at drain time.
            if let Some(ts) = park_start {
                events.push(complete(
                    "park".to_string(),
                    "idle",
                    ts / 1_000,
                    self.duration_us.saturating_sub(ts / 1_000),
                ));
            }
        }
        Json::Arr(events)
    }

    /// The Chrome trace as JSONL: one `trace_event` object per line.
    pub fn to_trace_jsonl(&self) -> String {
        let Json::Arr(events) = self.to_chrome_trace() else {
            unreachable!("chrome trace is an array");
        };
        let mut out = String::new();
        for e in events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Renders the human-readable trace summary: the per-kind event
    /// counts and the worker-utilization table (runs, steals, parks,
    /// busy time from the run intervals).
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("server trace ({SERVER_TRACE_SCHEMA})\n");
        out += &format!("workers       : {}\n", self.workers);
        out += &format!("duration      : {} µs\n", self.duration_us);
        let counts = self.counts();
        let summary: Vec<String> = EventKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| counts[*i] > 0)
            .map(|(i, k)| format!("{} {}", k.name(), counts[i]))
            .collect();
        out += &format!("events        : {}\n\n", summary.join(", "));
        out += &format!(
            "{:<10} {:>7} {:>7} {:>7} {:>11} {:>7}\n",
            "lane", "runs", "steals", "parks", "busy µs", "busy %"
        );
        for lane in &self.lanes {
            let mut runs = 0u64;
            let mut steals = 0u64;
            let mut parks = 0u64;
            let mut busy_ns = 0u64;
            let mut run_start: Option<u64> = None;
            for e in &lane.events {
                match e.kind {
                    EventKind::RunStart => run_start = Some(e.ts_ns),
                    EventKind::RunEnd => {
                        runs += 1;
                        if let Some(ts) = run_start.take() {
                            busy_ns += e.ts_ns.saturating_sub(ts);
                        }
                    }
                    EventKind::Steal => steals += 1,
                    EventKind::Park => parks += 1,
                    _ => {}
                }
            }
            let busy_us = busy_ns / 1_000;
            let busy_pct = if self.duration_us > 0 {
                busy_us as f64 * 100.0 / self.duration_us as f64
            } else {
                0.0
            };
            out += &format!(
                "{:<10} {:>7} {:>7} {:>7} {:>11} {:>7.1}\n",
                lane.name, runs, steals, parks, busy_us, busy_pct
            );
        }
        out
    }
}

/// Everything the flight recorder produced for one run: the trace, the
/// timeline, and the derived per-session stage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Telemetry {
    /// The drained scheduling-event log.
    pub trace: ServerTrace,
    /// The sampler's time-series.
    pub timeline: Timeline,
    /// Per-session stage intervals derived from the trace.
    pub stages: Vec<SessionStages>,
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        at: 0,
        message: message.into(),
    }
}
