//! Multi-tenant region server for the paper's request-handling workloads.
//!
//! The paper's evaluation programs — `http` server, `game` loop, `phone`
//! database — are request handlers, but a plain `rtjc run` executes one
//! program in one process. This crate turns the reproduction into a
//! *server*: thousands of concurrent **sessions**, each a tenant owning
//! its own [`rtj_runtime::Runtime`] (regions, virtual clock, metrics),
//! scheduled on a sharded work-stealing [`executor::Executor`]. The only
//! cross-tenant state is immutable: the global string interner (PR 1)
//! and the `Arc`-shared compiled program artifacts
//! ([`rtj_interp::Prepared`]).
//!
//! Two drivers sit on top:
//!
//! - [`server::run_batch`] (`rtjc serve`): unpaced — submit N complete
//!   rounds of the request mix and let the workers saturate.
//! - [`load::run_load`] (`rtjc load`): **open loop** — Poisson arrivals
//!   at a target rate from a seeded PRNG, latency anchored to each
//!   request's *scheduled* arrival so queueing under overload is
//!   measured, not hidden (no coordinated omission).
//!
//! Both emit the versioned [`report::LOAD_SCHEMA`] (`rtj-load/v1`)
//! document: per-(program, mode, engine) tail latencies, per-mode merged
//! `rtj-metrics/v1` snapshots (accumulated incrementally in per-worker
//! result shards, merged once at drain), the `sessions.shed` overload
//! block, and the Figure-12 ledger
//! (`static.elided == dynamic.performed`) re-established *under
//! concurrency* over the mode-matched admitted population. With
//! [`ServeConfig::deadline`] set, sessions past their deadline are
//! **shed** (at admission or in queue) instead of queued without bound.
//! The checked-in serving baseline is the composite
//! [`report::SERVE_BENCH_SCHEMA`] (`rtj-serve-bench/v1`) document: an
//! overload row plus a fixed-workload worker sweep with per-row result
//! fingerprints. Architecture and schema reference: `SERVER.md`.
//!
//! With [`ServeConfig::telemetry`] set, the server also runs a **flight
//! recorder** ([`telemetry`]): a per-worker scheduling event log drained
//! into [`telemetry::SERVER_TRACE_SCHEMA`] (`rtj-server-trace/v1`, with
//! Chrome `trace_event` export), a periodic gauge sampler emitting
//! [`telemetry::TIMELINE_SCHEMA`] (`rtj-timeline/v1`), and per-session
//! latency attribution folded into `rtj-load/v1` as the `attribution`
//! block. Telemetry never touches session results: fingerprints are
//! byte-identical on or off.
//!
//! # Example
//!
//! ```
//! use rtj_server::{LoadReport, ServeConfig, run_batch};
//!
//! let mut cfg = ServeConfig::default();
//! cfg.workers = 2;
//! cfg.variants = 1;
//! let outcome = run_batch(&cfg, 1).unwrap();
//! let report = LoadReport::from_serve(&outcome, "smoke".into(), 0.0, 1);
//! assert!(report.ledger.unwrap().holds());
//! ```

#![warn(missing_docs)]

pub mod executor;
pub mod load;
pub mod report;
pub mod server;
pub mod session;
pub mod telemetry;

pub use executor::{Executor, ExecutorProbe, ExecutorStats, Job, ProbeSample};
pub use load::{run_load, LoadOutcome, LoadPlan};
pub use report::{
    AttributionGroup, LatencySummary, LoadGroup, LoadLedger, LoadReport, ServeBenchReport,
    SweepRow, LOAD_SCHEMA, SERVE_BENCH_SCHEMA,
};
pub use server::{run_batch, ServeConfig, ServeError, ServeOutcome, Server, ShedStats};
pub use session::{results_fingerprint, SessionResult, SessionSpec, ShedStage};
pub use telemetry::{
    EventKind, FlightRecorder, ServerTrace, SessionStages, Telemetry, TelemetryConfig, Timeline,
    TimelineSample, TraceEvent, TraceLane, WorkerSample, SERVER_TRACE_SCHEMA, STAGE_NAMES,
    TIMELINE_SCHEMA,
};
