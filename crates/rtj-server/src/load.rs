//! The open-loop load generator.
//!
//! Arrivals are a Poisson process: exponential inter-arrival gaps drawn
//! from a seeded deterministic PRNG at a target rate, scheduled against
//! the wall clock and submitted whether or not earlier requests have
//! finished (**open loop**). Latency is measured from the *scheduled*
//! arrival instant, so queueing delay under overload is charged to the
//! request — the standard defence against coordinated omission. The
//! arrival *pattern* is deterministic for a given seed; the measured
//! latencies of course are not.
//!
//! After the duration window closes, the generator tops the submission
//! count up to a whole number of mix rounds (every program × variant
//! under every mode × engine equally often) so the Figure-12 ledger
//! holds exactly on the merged snapshots, then drains.
//!
//! When [`ServeConfig::telemetry`] is set, the server's flight recorder
//! rides along unchanged: the [`ServeOutcome`] carries the scheduling
//! trace and sampler timeline, and the load report folds the per-stage
//! latency attribution in (see [`crate::telemetry`]).

use std::time::{Duration, Instant};

use crate::server::{ServeConfig, ServeError, ServeOutcome, Server};

/// Load-generation parameters.
#[derive(Debug, Clone)]
pub struct LoadPlan {
    /// Target arrival rate, sessions per second.
    pub rate_hz: f64,
    /// Length of the arrival window.
    pub duration: Duration,
    /// PRNG seed for the arrival process.
    pub seed: u64,
}

impl Default for LoadPlan {
    fn default() -> LoadPlan {
        LoadPlan {
            rate_hz: 2000.0,
            duration: Duration::from_millis(1000),
            seed: 1,
        }
    }
}

/// What a load run measured, beyond the per-session results.
#[derive(Debug)]
pub struct LoadOutcome {
    /// Per-session results and executor counters.
    pub serve: ServeOutcome,
    /// The plan that generated the load.
    pub plan: LoadPlan,
    /// Wall-clock time from first scheduled arrival to full drain.
    pub elapsed: Duration,
    /// Arrivals submitted inside the duration window (before the
    /// round-completion top-up).
    pub windowed: u64,
}

/// A small deterministic PRNG (LCG, Knuth's MMIX constants) — enough to
/// drive a Poisson arrival process without external dependencies.
struct Lcg(u64);

impl Lcg {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }

    /// Uniform in (0, 1].
    fn next_unit(&mut self) -> f64 {
        let bits = self.next_u64() >> 11; // 53 significant bits
        (bits + 1) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with the given rate (per second), in seconds.
    fn next_exp(&mut self, rate_hz: f64) -> f64 {
        -self.next_unit().ln() / rate_hz
    }
}

/// Drives `server` with the plan's Poisson arrivals, tops up to a whole
/// mix round, drains, and returns everything measured.
pub fn run_load(cfg: &ServeConfig, plan: &LoadPlan) -> Result<LoadOutcome, ServeError> {
    assert!(plan.rate_hz > 0.0, "rate must be positive");
    let server = Server::start(cfg)?;
    let mut rng = Lcg(plan.seed.wrapping_mul(2654435769).wrapping_add(1));
    let start = Instant::now();
    let mut offset = Duration::ZERO;
    let mut session = 0u64;

    loop {
        offset += Duration::from_secs_f64(rng.next_exp(plan.rate_hz));
        if offset >= plan.duration {
            break;
        }
        let scheduled = start + offset;
        pace_until(scheduled);
        // Anchor latency to the *scheduled* arrival even when the
        // generator itself fell behind (open loop, no omission).
        server.submit(session, scheduled);
        session += 1;
    }
    let windowed = session;

    // Top up to a whole number of mix rounds so every check mode saw the
    // same multiset of (program, variant) requests.
    let mix = server.mix_len() as u64;
    while !session.is_multiple_of(mix) || session == 0 {
        server.submit(session, Instant::now());
        session += 1;
    }

    server.drain();
    let elapsed = start.elapsed();
    Ok(LoadOutcome {
        serve: server.finish(),
        plan: plan.clone(),
        elapsed,
        windowed,
    })
}

/// Sleeps (coarse) then spins (fine) until `deadline`. Sub-millisecond
/// gaps — the common case at serving rates — never touch the OS timer.
fn pace_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let gap = deadline - now;
        if gap > Duration::from_millis(2) {
            std::thread::sleep(gap - Duration::from_millis(1));
        } else {
            std::hint::spin_loop();
        }
    }
}
