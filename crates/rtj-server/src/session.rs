//! Session identity: what one tenant runs and what it produced.
//!
//! A **session** is one request-shaped program execution on its own
//! [`rtj_runtime::Runtime`]. The mix of (program, variant, check mode,
//! engine) a session runs is a pure function of its session id — see
//! [`crate::Server::spec`] — so results are reproducible no matter how
//! the executor interleaves sessions across workers.

use std::sync::Arc;

use rtj_interp::{Engine, RunError};
use rtj_runtime::{CheckMode, MetricsSnapshot};

/// What a session will execute: one request variant of a server program
/// in one check mode on one engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// The session (tenant) id, stamped on the session's `Runtime`.
    pub session: u64,
    /// Server program name (`http`, `game`, or `phone`), interned once
    /// per mix entry — cloning a spec bumps a refcount instead of
    /// copying a heap string, keeping the submit path allocation-light.
    pub program: Arc<str>,
    /// Request-variant index (`seq` baked into the program source).
    pub variant: u32,
    /// The check mode the session runs under.
    pub mode: CheckMode,
    /// The execution engine.
    pub engine: Engine,
}

/// Where an overloaded server gave up on a session instead of running
/// it (see `ServeConfig::deadline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedStage {
    /// Refused at admission: the deadline had already passed when the
    /// session reached the server.
    Admission,
    /// Dropped from the queue: a worker claimed the session after its
    /// deadline expired and skipped the engine.
    Queue,
}

impl ShedStage {
    /// Stable lower-case name (`admission` / `queue`).
    pub fn name(&self) -> &'static str {
        match self {
            ShedStage::Admission => "admission",
            ShedStage::Queue => "queue",
        }
    }
}

/// What a completed session produced. The deterministic fields
/// (`cycles`, `metrics`, `output`, `error`) depend only on the
/// [`SessionSpec`]; the wall-clock fields (`service_us`, `latency_us`)
/// are measurements of this particular run. A shed session (`shed` is
/// `Some`) has an empty virtual outcome: the engine never ran.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The spec this session executed.
    pub spec: SessionSpec,
    /// Virtual cycles consumed (deterministic).
    pub cycles: u64,
    /// The session's private `rtj-metrics/v1` snapshot (deterministic).
    pub metrics: MetricsSnapshot,
    /// `print` output (deterministic).
    pub output: Vec<String>,
    /// The error that halted the session, if any (deterministic).
    pub error: Option<RunError>,
    /// Set when the session was shed instead of executed. Shedding is a
    /// wall-clock decision, so this field is *not* deterministic — shed
    /// sessions are excluded from determinism comparisons and from the
    /// ledger population.
    pub shed: Option<ShedStage>,
    /// Wall-clock service time: entering the engine to leaving it.
    pub service_us: u64,
    /// Wall-clock latency from the request's **scheduled arrival** to
    /// completion — includes queueing delay, so an overloaded server
    /// shows the backlog honestly (no coordinated omission).
    pub latency_us: u64,
}

impl SessionResult {
    /// The deterministic portion of the result, rendered as stable bytes.
    /// Two runs of the same spec — on any worker count — must produce
    /// identical values here; the determinism suite compares these.
    pub fn deterministic_key(&self) -> String {
        format!(
            "session={} program={} variant={} mode={:?} engine={} cycles={} error={:?} output={:?} metrics={}",
            self.spec.session,
            self.spec.program,
            self.spec.variant,
            self.spec.mode,
            self.spec.engine,
            self.cycles,
            self.error,
            self.output,
            self.metrics.render(),
        )
    }
}

/// FNV-1a over the deterministic keys of every **executed** session, in
/// order — the byte-identity witness the worker sweep stores: equal
/// fingerprints across worker counts mean equal per-session results.
pub fn results_fingerprint(results: &[SessionResult]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut byte = |b: u8| {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for result in results.iter().filter(|r| r.shed.is_none()) {
        for b in result.deterministic_key().bytes() {
            byte(b);
        }
        byte(b'\n');
    }
    hash
}
