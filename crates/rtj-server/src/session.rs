//! Session identity: what one tenant runs and what it produced.
//!
//! A **session** is one request-shaped program execution on its own
//! [`rtj_runtime::Runtime`]. The mix of (program, variant, check mode,
//! engine) a session runs is a pure function of its session id — see
//! [`crate::Server::spec`] — so results are reproducible no matter how
//! the executor interleaves sessions across workers.

use rtj_interp::{Engine, RunError};
use rtj_runtime::{CheckMode, MetricsSnapshot};

/// What a session will execute: one request variant of a server program
/// in one check mode on one engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionSpec {
    /// The session (tenant) id, stamped on the session's `Runtime`.
    pub session: u64,
    /// Server program name (`http`, `game`, or `phone`).
    pub program: String,
    /// Request-variant index (`seq` baked into the program source).
    pub variant: u32,
    /// The check mode the session runs under.
    pub mode: CheckMode,
    /// The execution engine.
    pub engine: Engine,
}

/// What a completed session produced. The deterministic fields
/// (`cycles`, `metrics`, `output`, `error`) depend only on the
/// [`SessionSpec`]; the wall-clock fields (`service_us`, `latency_us`)
/// are measurements of this particular run.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The spec this session executed.
    pub spec: SessionSpec,
    /// Virtual cycles consumed (deterministic).
    pub cycles: u64,
    /// The session's private `rtj-metrics/v1` snapshot (deterministic).
    pub metrics: MetricsSnapshot,
    /// `print` output (deterministic).
    pub output: Vec<String>,
    /// The error that halted the session, if any (deterministic).
    pub error: Option<RunError>,
    /// Wall-clock service time: entering the engine to leaving it.
    pub service_us: u64,
    /// Wall-clock latency from the request's **scheduled arrival** to
    /// completion — includes queueing delay, so an overloaded server
    /// shows the backlog honestly (no coordinated omission).
    pub latency_us: u64,
}

impl SessionResult {
    /// The deterministic portion of the result, rendered as stable bytes.
    /// Two runs of the same spec — on any worker count — must produce
    /// identical values here; the determinism suite compares these.
    pub fn deterministic_key(&self) -> String {
        format!(
            "session={} program={} variant={} mode={:?} engine={} cycles={} error={:?} output={:?} metrics={}",
            self.spec.session,
            self.spec.program,
            self.spec.variant,
            self.spec.mode,
            self.spec.engine,
            self.cycles,
            self.error,
            self.output,
            self.metrics.render(),
        )
    }
}
