//! The versioned `rtj-load/v1` serving report and the `rtj-serve-bench/v1`
//! baseline document.
//!
//! One load (or batch-serve) run renders to a single JSON document:
//! run-level totals (including the `sessions.shed` overload block),
//! per-(program, mode, engine) latency groups with exact p50/p95/p99 and
//! a mergeable log₂-µs histogram, the per-mode **merged** `rtj-metrics/v1`
//! snapshots (accumulated in the worker shards), and the Figure-12
//! ledger computed over the mode-matched admitted population. `rtjc
//! report` accepts these documents alongside metrics/checker/fig12
//! documents. [`ServeBenchReport`] bundles an overload run with a
//! fixed-workload worker sweep — the checked-in `BENCH_serve.json`
//! baseline. Schemas documented in `SERVER.md`.

use rtj_interp::Engine;
use rtj_runtime::{CheckMode, Histogram, Json, JsonError, MetricsSnapshot};

use crate::load::LoadOutcome;
use crate::server::ServeOutcome;
use crate::session::SessionResult;
use crate::telemetry::{SessionStages, STAGE_NAMES};

/// Version tag of the serving-report schema.
pub const LOAD_SCHEMA: &str = "rtj-load/v1";

/// Version tag of the serving-baseline schema (overload row + worker
/// sweep).
pub const SERVE_BENCH_SCHEMA: &str = "rtj-serve-bench/v1";

/// Exact order statistics over one group's wall-clock samples, plus a
/// log₂ histogram (same bucketing as `rtj-metrics/v1` cost histograms)
/// for lossy-but-mergeable downstream aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean, microseconds (rounded).
    pub mean_us: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
    /// Log₂-bucketed histogram of the samples (µs).
    pub hist: Histogram,
}

impl LatencySummary {
    /// Summarises a set of samples (microseconds). Percentiles use the
    /// nearest-rank method on the full sorted sample set — exact, not
    /// interpolated from buckets.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0) * count as f64).ceil() as usize;
            samples[idx.clamp(1, samples.len()) - 1]
        };
        let mut hist = Histogram::default();
        for &s in &samples {
            hist.record(s);
        }
        LatencySummary {
            count,
            mean_us: (sum as f64 / count as f64).round() as u64,
            p50_us: rank(50.0),
            p95_us: rank(95.0),
            p99_us: rank(99.0),
            max_us: *samples.last().unwrap(),
            hist,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("mean_us", Json::Int(self.mean_us as i64)),
            ("p50_us", Json::Int(self.p50_us as i64)),
            ("p95_us", Json::Int(self.p95_us as i64)),
            ("p99_us", Json::Int(self.p99_us as i64)),
            ("max_us", Json::Int(self.max_us as i64)),
            // Sparse histogram: [bucket index, count] pairs.
            (
                "hist_log2_us",
                Json::Arr(
                    self.hist
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(*c as i64)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<LatencySummary, JsonError> {
        let field = |k: &str| -> Result<u64, JsonError> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing `{k}`")))
        };
        let mut hist = Histogram::default();
        for pair in v
            .get("hist_log2_us")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `hist_log2_us`"))?
        {
            let pair = pair.as_arr().ok_or_else(|| bad("bad hist pair"))?;
            let (idx, n) = match (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                (Some(i), Some(n)) if (i as usize) < 65 => (i as usize, n),
                _ => return Err(bad("bad hist pair")),
            };
            hist.buckets[idx] = n;
        }
        Ok(LatencySummary {
            count: field("count")?,
            mean_us: field("mean_us")?,
            p50_us: field("p50_us")?,
            p95_us: field("p95_us")?,
            p99_us: field("p99_us")?,
            max_us: field("max_us")?,
            hist,
        })
    }
}

/// One request class: all sessions of one program under one (mode,
/// engine), with request-side latency (scheduled arrival → completion)
/// and server-side service time (engine entry → exit). `requests`,
/// `latency`, `service`, and `cycles` cover **executed** sessions only;
/// `shed` counts the sessions of this class the server gave up on.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGroup {
    /// Server program name.
    pub program: String,
    /// Check mode of the group.
    pub mode: CheckMode,
    /// Engine of the group.
    pub engine: Engine,
    /// Executed requests in the group.
    pub requests: u64,
    /// Requests that halted with a runtime error.
    pub failed: u64,
    /// Requests shed (admission or queue) instead of executed.
    pub shed: u64,
    /// Total virtual cycles across the group (deterministic).
    pub cycles: u64,
    /// Arrival-anchored latency (includes queueing).
    pub latency: LatencySummary,
    /// Service time only.
    pub service: LatencySummary,
}

/// Per-(program, mode, engine) latency attribution derived from the
/// flight recorder's event log: where the group's sessions spent their
/// time between submission and result merge, as exact nearest-rank
/// percentiles per stage. Present in `rtj-load/v1` only when the run
/// had telemetry on.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionGroup {
    /// Server program name.
    pub program: String,
    /// Check mode of the group.
    pub mode: CheckMode,
    /// Engine of the group.
    pub engine: Engine,
    /// Sessions with a complete stage chain (executed sessions observed
    /// by the recorder).
    pub sessions: u64,
    /// How many of those were executed by a non-owner worker.
    pub stolen: u64,
    /// One summary per stage, in [`STAGE_NAMES`] order: admission,
    /// queue, steal, service, merge.
    pub stages: Vec<(String, LatencySummary)>,
}

/// Joins the recorder's per-session stages to the result groups. Group
/// order matches the report's `groups` (sorted keys), so the block is
/// deterministic given the same event-log structure.
fn build_attribution(
    stages: &[SessionStages],
    results: &[SessionResult],
    keys: &[(String, CheckMode, Engine)],
) -> Vec<AttributionGroup> {
    let mut groups: Vec<AttributionGroup> = keys
        .iter()
        .map(|(program, mode, engine)| AttributionGroup {
            program: program.clone(),
            mode: *mode,
            engine: *engine,
            sessions: 0,
            stolen: 0,
            stages: Vec::new(),
        })
        .collect();
    let mut samples: Vec<[Vec<u64>; 5]> = keys.iter().map(|_| Default::default()).collect();
    // `results` is sorted by session id — binary search instead of a map.
    for s in stages {
        let Ok(idx) = results.binary_search_by_key(&s.session, |r| r.spec.session) else {
            continue;
        };
        let r = &results[idx];
        let key = (r.spec.program.to_string(), r.spec.mode, r.spec.engine);
        let Some(g) = keys.iter().position(|k| *k == key) else {
            continue;
        };
        groups[g].sessions += 1;
        groups[g].stolen += s.stolen as u64;
        for (slot, us) in samples[g].iter_mut().zip(s.stages_us()) {
            slot.push(us);
        }
    }
    for (g, stage_samples) in groups.iter_mut().zip(samples) {
        g.stages = STAGE_NAMES
            .iter()
            .zip(stage_samples)
            .map(|(name, samples)| (name.to_string(), LatencySummary::from_samples(samples)))
            .collect();
    }
    groups.retain(|g| g.sessions > 0);
    groups
}

impl AttributionGroup {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("program", Json::Str(self.program.clone())),
            ("mode", Json::Str(self.mode.name().into())),
            ("engine", Json::Str(self.engine.to_string())),
            ("sessions", Json::Int(self.sessions as i64)),
            ("stolen", Json::Int(self.stolen as i64)),
            (
                "stages",
                Json::Obj(
                    self.stages
                        .iter()
                        .map(|(name, summary)| (name.clone(), summary.to_json()))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<AttributionGroup, JsonError> {
        let mode_name = v
            .get("mode")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing attribution `mode`"))?;
        let mut stages = Vec::new();
        match v.get("stages") {
            Some(Json::Obj(pairs)) => {
                for (name, summary) in pairs {
                    stages.push((name.clone(), LatencySummary::from_json(summary)?));
                }
            }
            _ => return Err(bad("missing attribution `stages`")),
        }
        Ok(AttributionGroup {
            program: v
                .get("program")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing attribution `program`"))?
                .to_string(),
            mode: CheckMode::parse(mode_name)
                .ok_or_else(|| bad(format!("bad mode `{mode_name}`")))?,
            engine: match v.get("engine").and_then(Json::as_str) {
                Some("vm") => Engine::Vm,
                Some("tree") => Engine::Tree,
                other => return Err(bad(format!("bad attribution engine `{other:?}`"))),
            },
            sessions: v
                .get("sessions")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing attribution `sessions`"))?,
            stolen: v.get("stolen").and_then(Json::as_u64).unwrap_or(0),
            stages,
        })
    }
}

/// The Figure-12 ledger over the **mode-matched admitted population**:
/// for each (program, variant), the largest equal number of executed
/// static and dynamic sessions is matched, and the checks static mode
/// elided on that population are exactly the checks dynamic mode
/// performed. Without shedding every round is complete, the whole
/// population matches, and the numbers equal the plain merged totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadLedger {
    /// Checks elided under [`CheckMode::Static`] over the matched
    /// population.
    pub static_elided: u64,
    /// Checks performed under [`CheckMode::Dynamic`] over the matched
    /// population.
    pub dynamic_performed: u64,
    /// Matched sessions per mode (Σ over (program, variant) of
    /// `min(static_executed, dynamic_executed)`).
    pub matched_sessions: u64,
}

impl LoadLedger {
    /// Whether the ledger balances.
    pub fn holds(&self) -> bool {
        self.static_elided == self.dynamic_performed
    }
}

/// The full `rtj-load/v1` document.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Human description of the request mix, e.g. `http,game,phone x4`.
    pub workload: String,
    /// Worker-thread count.
    pub workers: usize,
    /// Target arrival rate (sessions/s); `0` for an unpaced batch run.
    pub rate_hz: f64,
    /// Wall-clock time from first arrival to full drain, milliseconds.
    pub duration_ms: u64,
    /// Sessions offered to the server (executed + shed, including the
    /// round-completion top-up).
    pub submitted: u64,
    /// Sessions executed to completion.
    pub completed: u64,
    /// Sessions that halted with a runtime error (contained panics
    /// included).
    pub failed: u64,
    /// Sessions shed at admission (deadline passed before enqueue).
    pub shed_admission: u64,
    /// Sessions shed in queue (deadline passed before a worker claim).
    pub shed_queue: u64,
    /// High-water mark of concurrently in-flight sessions (queued +
    /// executing).
    pub peak_concurrent: u64,
    /// Sessions executed by a worker other than the shard owner.
    pub stolen: u64,
    /// Sessions whose engine run panicked (contained; counted in
    /// `failed` too).
    pub panicked: u64,
    /// Executed sessions per second of wall-clock time.
    pub throughput_hz: f64,
    /// Per-(program, mode, engine) groups, in deterministic order.
    pub groups: Vec<LoadGroup>,
    /// Per-group latency attribution from the flight recorder; empty
    /// when the run had telemetry off.
    pub attribution: Vec<AttributionGroup>,
    /// Per-mode merged `rtj-metrics/v1` snapshots across all executed
    /// sessions of that mode.
    pub mode_metrics: Vec<(CheckMode, MetricsSnapshot)>,
    /// The Figure-12 ledger, when both static and dynamic ran.
    pub ledger: Option<LoadLedger>,
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        at: 0,
        message: message.into(),
    }
}

/// The matched-population ledger: per (program, variant), every static
/// session elides a deterministic per-session count and every dynamic
/// session performs one; matching `min(n_static, n_dynamic)` sessions of
/// each mode makes the comparison exact over the admitted population
/// even when shedding unbalanced the modes.
fn matched_ledger(results: &[SessionResult]) -> Option<LoadLedger> {
    struct PvRow {
        program: String,
        variant: u32,
        static_n: u64,
        static_per_session: u64,
        dynamic_n: u64,
        dynamic_per_session: u64,
    }
    let mut rows: Vec<PvRow> = Vec::new();
    let mut saw_static = false;
    let mut saw_dynamic = false;
    for r in results.iter().filter(|r| r.shed.is_none()) {
        let (is_static, per_session) = match r.spec.mode {
            CheckMode::Static => {
                saw_static = true;
                (true, r.metrics.checks_elided())
            }
            CheckMode::Dynamic => {
                saw_dynamic = true;
                (false, r.metrics.checks_performed())
            }
            _ => continue,
        };
        let row = match rows
            .iter_mut()
            .find(|row| *row.program == *r.spec.program && row.variant == r.spec.variant)
        {
            Some(row) => row,
            None => {
                rows.push(PvRow {
                    program: r.spec.program.to_string(),
                    variant: r.spec.variant,
                    static_n: 0,
                    static_per_session: 0,
                    dynamic_n: 0,
                    dynamic_per_session: 0,
                });
                rows.last_mut().unwrap()
            }
        };
        if is_static {
            row.static_n += 1;
            row.static_per_session = per_session;
        } else {
            row.dynamic_n += 1;
            row.dynamic_per_session = per_session;
        }
    }
    if !saw_static || !saw_dynamic {
        return None;
    }
    let mut ledger = LoadLedger {
        static_elided: 0,
        dynamic_performed: 0,
        matched_sessions: 0,
    };
    for row in &rows {
        let matched = row.static_n.min(row.dynamic_n);
        ledger.static_elided += matched * row.static_per_session;
        ledger.dynamic_performed += matched * row.dynamic_per_session;
        ledger.matched_sessions += matched;
    }
    Some(ledger)
}

impl LoadReport {
    /// Builds the report from a finished serving run. `rate_hz = 0`
    /// marks an unpaced batch.
    pub fn from_serve(
        outcome: &ServeOutcome,
        workload: String,
        rate_hz: f64,
        duration_ms: u64,
    ) -> LoadReport {
        let results = &outcome.results;

        // Group results by (program, mode, engine), preserving the
        // deterministic result order (sorted by session id).
        let mut keys: Vec<(String, CheckMode, Engine)> = Vec::new();
        for r in results {
            let key = (r.spec.program.to_string(), r.spec.mode, r.spec.engine);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys.sort_by(|a, b| {
            (a.0.as_str(), a.1.name(), a.2.to_string()).cmp(&(
                b.0.as_str(),
                b.1.name(),
                b.2.to_string(),
            ))
        });

        let groups = keys
            .iter()
            .cloned()
            .map(|(program, mode, engine)| {
                let members: Vec<&SessionResult> = results
                    .iter()
                    .filter(|r| {
                        *r.spec.program == *program
                            && r.spec.mode == mode
                            && r.spec.engine == engine
                    })
                    .collect();
                let executed: Vec<&&SessionResult> =
                    members.iter().filter(|r| r.shed.is_none()).collect();
                LoadGroup {
                    requests: executed.len() as u64,
                    failed: executed.iter().filter(|r| r.error.is_some()).count() as u64,
                    shed: (members.len() - executed.len()) as u64,
                    cycles: executed.iter().map(|r| r.cycles).sum(),
                    latency: LatencySummary::from_samples(
                        executed.iter().map(|r| r.latency_us).collect(),
                    ),
                    service: LatencySummary::from_samples(
                        executed.iter().map(|r| r.service_us).collect(),
                    ),
                    program,
                    mode,
                    engine,
                }
            })
            .collect();

        // The per-mode merged snapshots were accumulated incrementally
        // in the worker shards and merged once at drain
        // (`MetricsSnapshot::merge` is associative and commutative —
        // proptested in rtj-runtime — so the shard merge order cannot
        // change the totals).
        let mode_metrics = outcome.mode_metrics.clone();
        let ledger = matched_ledger(results);
        let attribution = outcome
            .telemetry
            .as_ref()
            .map(|t| build_attribution(&t.stages, results, &keys))
            .unwrap_or_default();

        let executed = results.iter().filter(|r| r.shed.is_none());
        let completed = executed.clone().count() as u64;
        let failed = executed.clone().filter(|r| r.error.is_some()).count() as u64;
        let throughput_hz = if duration_ms > 0 {
            completed as f64 * 1000.0 / duration_ms as f64
        } else {
            0.0
        };
        LoadReport {
            workload,
            workers: outcome.stats.workers,
            rate_hz,
            duration_ms,
            submitted: results.len() as u64,
            completed,
            failed,
            shed_admission: outcome.shed.admission,
            shed_queue: outcome.shed.queue,
            peak_concurrent: outcome.stats.peak_in_flight,
            stolen: outcome.stats.stolen,
            panicked: outcome.stats.panicked,
            throughput_hz,
            groups,
            attribution,
            mode_metrics,
            ledger,
        }
    }

    /// Builds the report from an open-loop load run.
    pub fn from_load(outcome: &LoadOutcome, workload: String) -> LoadReport {
        LoadReport::from_serve(
            &outcome.serve,
            workload,
            outcome.plan.rate_hz,
            outcome.elapsed.as_millis() as u64,
        )
    }

    /// Total shed sessions (admission + queue).
    pub fn shed_total(&self) -> u64 {
        self.shed_admission + self.shed_queue
    }

    /// Serialises to the versioned document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(LOAD_SCHEMA.into())),
            ("workload", Json::Str(self.workload.clone())),
            ("workers", Json::Int(self.workers as i64)),
            ("rate_hz", Json::Float(self.rate_hz)),
            ("duration_ms", Json::Int(self.duration_ms as i64)),
            (
                "sessions",
                Json::obj(vec![
                    ("submitted", Json::Int(self.submitted as i64)),
                    ("completed", Json::Int(self.completed as i64)),
                    ("failed", Json::Int(self.failed as i64)),
                    (
                        "shed",
                        Json::obj(vec![
                            ("admission", Json::Int(self.shed_admission as i64)),
                            ("queue", Json::Int(self.shed_queue as i64)),
                            ("total", Json::Int(self.shed_total() as i64)),
                        ]),
                    ),
                    ("peak_concurrent", Json::Int(self.peak_concurrent as i64)),
                    ("stolen", Json::Int(self.stolen as i64)),
                    ("panicked", Json::Int(self.panicked as i64)),
                ]),
            ),
            ("throughput_hz", Json::Float(self.throughput_hz)),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|g| {
                            Json::obj(vec![
                                ("program", Json::Str(g.program.clone())),
                                ("mode", Json::Str(g.mode.name().into())),
                                ("engine", Json::Str(g.engine.to_string())),
                                ("requests", Json::Int(g.requests as i64)),
                                ("failed", Json::Int(g.failed as i64)),
                                ("shed", Json::Int(g.shed as i64)),
                                ("cycles", Json::Int(g.cycles as i64)),
                                ("latency", g.latency.to_json()),
                                ("service", g.service.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "attribution",
                if self.attribution.is_empty() {
                    Json::Null
                } else {
                    Json::Arr(
                        self.attribution
                            .iter()
                            .map(AttributionGroup::to_json)
                            .collect(),
                    )
                },
            ),
            (
                "mode_metrics",
                Json::Arr(
                    self.mode_metrics
                        .iter()
                        .map(|(mode, snap)| {
                            Json::obj(vec![
                                ("mode", Json::Str(mode.name().into())),
                                ("metrics", snap.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ledger",
                match &self.ledger {
                    Some(l) => Json::obj(vec![
                        ("static_elided", Json::Int(l.static_elided as i64)),
                        ("dynamic_performed", Json::Int(l.dynamic_performed as i64)),
                        ("matched_sessions", Json::Int(l.matched_sessions as i64)),
                        ("holds", Json::Bool(l.holds())),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a document produced by [`LoadReport::to_json`], rejecting
    /// wrong or missing schema tags.
    pub fn from_json(v: &Json) -> Result<LoadReport, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(LOAD_SCHEMA) => {}
            Some(other) => return Err(bad(format!("expected {LOAD_SCHEMA}, got {other}"))),
            None => return Err(bad("missing `schema`")),
        }
        let str_field = |k: &str| -> Result<String, JsonError> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing `{k}`")))
        };
        let sessions = v.get("sessions").ok_or_else(|| bad("missing `sessions`"))?;
        let sess_field = |k: &str| -> Result<u64, JsonError> {
            sessions
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing `sessions.{k}`")))
        };
        // The shed block is optional so pre-shedding documents parse.
        let (shed_admission, shed_queue) = match sessions.get("shed") {
            Some(shed) => (
                shed.get("admission").and_then(Json::as_u64).unwrap_or(0),
                shed.get("queue").and_then(Json::as_u64).unwrap_or(0),
            ),
            None => (0, 0),
        };
        let parse_engine = |s: &str| -> Result<Engine, JsonError> {
            match s {
                "vm" => Ok(Engine::Vm),
                "tree" => Ok(Engine::Tree),
                other => Err(bad(format!("bad engine `{other}`"))),
            }
        };
        let mut groups = Vec::new();
        for g in v
            .get("groups")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `groups`"))?
        {
            let mode_name = g
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing group `mode`"))?;
            groups.push(LoadGroup {
                program: g
                    .get("program")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing group `program`"))?
                    .to_string(),
                mode: CheckMode::parse(mode_name)
                    .ok_or_else(|| bad(format!("bad mode `{mode_name}`")))?,
                engine: parse_engine(
                    g.get("engine")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing group `engine`"))?,
                )?,
                requests: g
                    .get("requests")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing group `requests`"))?,
                failed: g.get("failed").and_then(Json::as_u64).unwrap_or(0),
                shed: g.get("shed").and_then(Json::as_u64).unwrap_or(0),
                cycles: g.get("cycles").and_then(Json::as_u64).unwrap_or(0),
                latency: LatencySummary::from_json(
                    g.get("latency").ok_or_else(|| bad("missing `latency`"))?,
                )?,
                service: LatencySummary::from_json(
                    g.get("service").ok_or_else(|| bad("missing `service`"))?,
                )?,
            });
        }
        // Optional blocks: pre-telemetry documents (and telemetry-off
        // runs) parse with an empty attribution and zero panicked.
        let mut attribution = Vec::new();
        if let Some(Json::Arr(entries)) = v.get("attribution") {
            for entry in entries {
                attribution.push(AttributionGroup::from_json(entry)?);
            }
        }
        let mut mode_metrics = Vec::new();
        for m in v
            .get("mode_metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `mode_metrics`"))?
        {
            let snap = MetricsSnapshot::from_json(
                m.get("metrics").ok_or_else(|| bad("missing `metrics`"))?,
            )?;
            mode_metrics.push((snap.mode, snap));
        }
        let ledger = match v.get("ledger") {
            Some(Json::Null) | None => None,
            Some(l) => Some(LoadLedger {
                static_elided: l
                    .get("static_elided")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `static_elided`"))?,
                dynamic_performed: l
                    .get("dynamic_performed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `dynamic_performed`"))?,
                matched_sessions: l
                    .get("matched_sessions")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
            }),
        };
        Ok(LoadReport {
            workload: str_field("workload")?,
            workers: v
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `workers`"))? as usize,
            rate_hz: v
                .get("rate_hz")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing `rate_hz`"))?,
            duration_ms: v
                .get("duration_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `duration_ms`"))?,
            submitted: sess_field("submitted")?,
            completed: sess_field("completed")?,
            failed: sess_field("failed")?,
            shed_admission,
            shed_queue,
            peak_concurrent: sess_field("peak_concurrent")?,
            stolen: sess_field("stolen")?,
            panicked: sessions.get("panicked").and_then(Json::as_u64).unwrap_or(0),
            throughput_hz: v
                .get("throughput_hz")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing `throughput_hz`"))?,
            groups,
            attribution,
            mode_metrics,
            ledger,
        })
    }

    /// Parses the rendered text form.
    pub fn parse(text: &str) -> Result<LoadReport, JsonError> {
        LoadReport::from_json(&Json::parse(text)?)
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Renders the human-readable serving report: run totals, then the
    /// per-group tail-latency table, then the ledger.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("serving report ({LOAD_SCHEMA})\n");
        out += &format!("workload      : {}\n", self.workload);
        out += &format!("workers       : {}\n", self.workers);
        if self.rate_hz > 0.0 {
            out += &format!("arrival rate  : {:.0} /s (open loop)\n", self.rate_hz);
        } else {
            out += "arrival rate  : unpaced batch\n";
        }
        out += &format!("duration      : {} ms\n", self.duration_ms);
        out += &format!(
            "sessions      : {} offered, {} completed, {} failed\n",
            self.submitted, self.completed, self.failed
        );
        if self.shed_total() > 0 {
            out += &format!(
                "shed          : {} ({} at admission, {} in queue)\n",
                self.shed_total(),
                self.shed_admission,
                self.shed_queue
            );
        }
        out += &format!(
            "concurrency   : peak {} in flight, {} stolen, {} panicked\n",
            self.peak_concurrent, self.stolen, self.panicked
        );
        out += &format!("throughput    : {:.0} sessions/s\n\n", self.throughput_hz);
        out += &format!(
            "{:<8} {:<8} {:<6} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
            "program", "mode", "engine", "requests", "shed", "p50 µs", "p95 µs", "p99 µs", "max µs"
        );
        for g in &self.groups {
            out += &format!(
                "{:<8} {:<8} {:<6} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9}\n",
                g.program,
                g.mode.name(),
                g.engine.to_string(),
                g.requests,
                g.shed,
                g.latency.p50_us,
                g.latency.p95_us,
                g.latency.p99_us,
                g.latency.max_us,
            );
        }
        if !self.attribution.is_empty() {
            out += &format!(
                "\nstage attribution (flight recorder)\n{:<8} {:<8} {:<6} {:<9} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                "program", "mode", "engine", "stage", "sessions", "p50 µs", "p95 µs", "p99 µs", "max µs"
            );
            for g in &self.attribution {
                for (stage, summary) in &g.stages {
                    out += &format!(
                        "{:<8} {:<8} {:<6} {:<9} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                        g.program,
                        g.mode.name(),
                        g.engine.to_string(),
                        stage,
                        summary.count,
                        summary.p50_us,
                        summary.p95_us,
                        summary.p99_us,
                        summary.max_us,
                    );
                }
            }
            let stolen: u64 = self.attribution.iter().map(|g| g.stolen).sum();
            let sessions: u64 = self.attribution.iter().map(|g| g.sessions).sum();
            out += &format!("stolen sessions: {stolen}/{sessions}\n");
        }
        if let Some(l) = &self.ledger {
            out += &format!(
                "\nfigure-12 ledger: static.elided {} {} dynamic.performed {} ({}, {} matched sessions/mode)\n",
                l.static_elided,
                if l.holds() { "==" } else { "!=" },
                l.dynamic_performed,
                if l.holds() { "holds" } else { "VIOLATED" },
                l.matched_sessions,
            );
        }
        out
    }
}

/// One row of the worker sweep: a fixed saturation batch run at one
/// worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Worker-thread count of this row.
    pub workers: usize,
    /// Sessions executed (the batch size; constant across rows).
    pub sessions: u64,
    /// Wall-clock time to drain the batch, milliseconds.
    pub duration_ms: u64,
    /// Executed sessions per second.
    pub throughput_hz: f64,
    /// Sessions executed by a non-owner worker.
    pub stolen: u64,
    /// FNV-1a fingerprint over the deterministic per-session results —
    /// equal across rows ⇔ byte-identical results at every worker count.
    pub fingerprint: u64,
}

impl SweepRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workers", Json::Int(self.workers as i64)),
            ("sessions", Json::Int(self.sessions as i64)),
            ("duration_ms", Json::Int(self.duration_ms as i64)),
            ("throughput_hz", Json::Float(self.throughput_hz)),
            ("stolen", Json::Int(self.stolen as i64)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<SweepRow, JsonError> {
        let int = |k: &str| -> Result<u64, JsonError> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing sweep `{k}`")))
        };
        let fingerprint = v
            .get("fingerprint")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing sweep `fingerprint`"))?;
        Ok(SweepRow {
            workers: int("workers")? as usize,
            sessions: int("sessions")?,
            duration_ms: int("duration_ms")?,
            throughput_hz: v
                .get("throughput_hz")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing sweep `throughput_hz`"))?,
            stolen: int("stolen")?,
            fingerprint: u64::from_str_radix(fingerprint, 16)
                .map_err(|_| bad("bad sweep `fingerprint`"))?,
        })
    }
}

/// The `rtj-serve-bench/v1` baseline document: one overload load run
/// (deadline shedding active) plus a fixed-workload saturation-batch
/// sweep over worker counts, with per-row result fingerprints proving
/// byte-identity across the sweep.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// The overload row: an open-loop run far past the knee, with
    /// deadline shedding keeping the queue bounded.
    pub overload: LoadReport,
    /// Mix rounds per sweep row (the fixed batch).
    pub sweep_rounds: u64,
    /// Simulated downstream stall per session in the sweep (µs); worker
    /// scaling of I/O-shaped load is what the sweep isolates.
    pub sweep_stall_us: u64,
    /// One row per worker count, ascending.
    pub rows: Vec<SweepRow>,
}

impl ServeBenchReport {
    /// Throughput of the last row over the first (e.g. 8 workers vs 1).
    pub fn speedup(&self) -> f64 {
        match (self.rows.first(), self.rows.last()) {
            (Some(first), Some(last)) if first.throughput_hz > 0.0 => {
                last.throughput_hz / first.throughput_hz
            }
            _ => 0.0,
        }
    }

    /// Whether every sweep row produced byte-identical per-session
    /// results (equal fingerprints).
    pub fn identical_results(&self) -> bool {
        self.rows
            .windows(2)
            .all(|w| w[0].fingerprint == w[1].fingerprint)
    }

    /// Serialises to the versioned document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(SERVE_BENCH_SCHEMA.into())),
            ("overload", self.overload.to_json()),
            (
                "sweep",
                Json::obj(vec![
                    ("rounds", Json::Int(self.sweep_rounds as i64)),
                    ("stall_us", Json::Int(self.sweep_stall_us as i64)),
                    (
                        "rows",
                        Json::Arr(self.rows.iter().map(SweepRow::to_json).collect()),
                    ),
                    ("speedup", Json::Float(self.speedup())),
                    ("identical_results", Json::Bool(self.identical_results())),
                ]),
            ),
        ])
    }

    /// Parses a document produced by [`ServeBenchReport::to_json`].
    pub fn from_json(v: &Json) -> Result<ServeBenchReport, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(SERVE_BENCH_SCHEMA) => {}
            Some(other) => return Err(bad(format!("expected {SERVE_BENCH_SCHEMA}, got {other}"))),
            None => return Err(bad("missing `schema`")),
        }
        let overload =
            LoadReport::from_json(v.get("overload").ok_or_else(|| bad("missing `overload`"))?)?;
        let sweep = v.get("sweep").ok_or_else(|| bad("missing `sweep`"))?;
        let mut rows = Vec::new();
        for row in sweep
            .get("rows")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `sweep.rows`"))?
        {
            rows.push(SweepRow::from_json(row)?);
        }
        Ok(ServeBenchReport {
            overload,
            sweep_rounds: sweep
                .get("rounds")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `sweep.rounds`"))?,
            sweep_stall_us: sweep.get("stall_us").and_then(Json::as_u64).unwrap_or(0),
            rows,
        })
    }

    /// Parses the rendered text form.
    pub fn parse(text: &str) -> Result<ServeBenchReport, JsonError> {
        ServeBenchReport::from_json(&Json::parse(text)?)
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Renders the human-readable baseline: the overload report, then
    /// the sweep table.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("serving baseline ({SERVE_BENCH_SCHEMA})\n\n");
        out += "== overload row (deadline shedding) ==\n";
        out += &self.overload.render_report();
        out += &format!(
            "\n== worker sweep ({} rounds/row, {} µs stall) ==\n",
            self.sweep_rounds, self.sweep_stall_us
        );
        out += &format!(
            "{:>7} {:>9} {:>11} {:>13} {:>7}  {}\n",
            "workers", "sessions", "drain ms", "sessions/s", "stolen", "fingerprint"
        );
        for row in &self.rows {
            out += &format!(
                "{:>7} {:>9} {:>11} {:>13.0} {:>7}  {:016x}\n",
                row.workers,
                row.sessions,
                row.duration_ms,
                row.throughput_hz,
                row.stolen,
                row.fingerprint
            );
        }
        out += &format!(
            "\nspeedup {:.2}x ({} → {} workers), results {}\n",
            self.speedup(),
            self.rows.first().map_or(0, |r| r.workers),
            self.rows.last().map_or(0, |r| r.workers),
            if self.identical_results() {
                "byte-identical across the sweep"
            } else {
                "DIVERGED"
            }
        );
        out
    }
}
