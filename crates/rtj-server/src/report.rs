//! The versioned `rtj-load/v1` serving report.
//!
//! One load (or batch-serve) run renders to a single JSON document:
//! run-level totals, per-(program, mode, engine) latency groups with
//! exact p50/p95/p99 and a mergeable log₂-µs histogram, the per-mode
//! **merged** `rtj-metrics/v1` snapshots, and the Figure-12 ledger
//! derived from them. `rtjc report` accepts these documents alongside
//! metrics/checker/fig12 documents. Schema documented in `SERVER.md`.

use rtj_interp::Engine;
use rtj_runtime::{CheckMode, Histogram, Json, JsonError, MetricsSnapshot};

use crate::load::LoadOutcome;
use crate::server::ServeOutcome;
use crate::session::SessionResult;

/// Version tag of the serving-report schema.
pub const LOAD_SCHEMA: &str = "rtj-load/v1";

/// Exact order statistics over one group's wall-clock samples, plus a
/// log₂ histogram (same bucketing as `rtj-metrics/v1` cost histograms)
/// for lossy-but-mergeable downstream aggregation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Sample count.
    pub count: u64,
    /// Mean, microseconds (rounded).
    pub mean_us: u64,
    /// Median, microseconds.
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
    /// Log₂-bucketed histogram of the samples (µs).
    pub hist: Histogram,
}

impl LatencySummary {
    /// Summarises a set of samples (microseconds). Percentiles use the
    /// nearest-rank method on the full sorted sample set — exact, not
    /// interpolated from buckets.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let count = samples.len() as u64;
        let sum: u64 = samples.iter().sum();
        let rank = |p: f64| -> u64 {
            let idx = ((p / 100.0) * count as f64).ceil() as usize;
            samples[idx.clamp(1, samples.len()) - 1]
        };
        let mut hist = Histogram::default();
        for &s in &samples {
            hist.record(s);
        }
        LatencySummary {
            count,
            mean_us: (sum as f64 / count as f64).round() as u64,
            p50_us: rank(50.0),
            p95_us: rank(95.0),
            p99_us: rank(99.0),
            max_us: *samples.last().unwrap(),
            hist,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("mean_us", Json::Int(self.mean_us as i64)),
            ("p50_us", Json::Int(self.p50_us as i64)),
            ("p95_us", Json::Int(self.p95_us as i64)),
            ("p99_us", Json::Int(self.p99_us as i64)),
            ("max_us", Json::Int(self.max_us as i64)),
            // Sparse histogram: [bucket index, count] pairs.
            (
                "hist_log2_us",
                Json::Arr(
                    self.hist
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| Json::Arr(vec![Json::Int(i as i64), Json::Int(*c as i64)]))
                        .collect(),
                ),
            ),
        ])
    }

    fn from_json(v: &Json) -> Result<LatencySummary, JsonError> {
        let field = |k: &str| -> Result<u64, JsonError> {
            v.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing `{k}`")))
        };
        let mut hist = Histogram::default();
        for pair in v
            .get("hist_log2_us")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `hist_log2_us`"))?
        {
            let pair = pair.as_arr().ok_or_else(|| bad("bad hist pair"))?;
            let (idx, n) = match (
                pair.first().and_then(Json::as_u64),
                pair.get(1).and_then(Json::as_u64),
            ) {
                (Some(i), Some(n)) if (i as usize) < 65 => (i as usize, n),
                _ => return Err(bad("bad hist pair")),
            };
            hist.buckets[idx] = n;
        }
        Ok(LatencySummary {
            count: field("count")?,
            mean_us: field("mean_us")?,
            p50_us: field("p50_us")?,
            p95_us: field("p95_us")?,
            p99_us: field("p99_us")?,
            max_us: field("max_us")?,
            hist,
        })
    }
}

/// One request class: all sessions of one program under one (mode,
/// engine), with request-side latency (scheduled arrival → completion)
/// and server-side service time (engine entry → exit).
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGroup {
    /// Server program name.
    pub program: String,
    /// Check mode of the group.
    pub mode: CheckMode,
    /// Engine of the group.
    pub engine: Engine,
    /// Requests in the group.
    pub requests: u64,
    /// Requests that halted with a runtime error.
    pub failed: u64,
    /// Total virtual cycles across the group (deterministic).
    pub cycles: u64,
    /// Arrival-anchored latency (includes queueing).
    pub latency: LatencySummary,
    /// Service time only.
    pub service: LatencySummary,
}

/// The Figure-12 ledger on the merged snapshots: the checks static mode
/// elided are exactly the checks dynamic mode performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadLedger {
    /// Checks elided under [`CheckMode::Static`], merged over sessions.
    pub static_elided: u64,
    /// Checks performed under [`CheckMode::Dynamic`], merged over
    /// sessions.
    pub dynamic_performed: u64,
}

impl LoadLedger {
    /// Whether the ledger balances.
    pub fn holds(&self) -> bool {
        self.static_elided == self.dynamic_performed
    }
}

/// The full `rtj-load/v1` document.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Human description of the request mix, e.g. `http,game,phone x4`.
    pub workload: String,
    /// Worker-thread count.
    pub workers: usize,
    /// Target arrival rate (sessions/s); `0` for an unpaced batch run.
    pub rate_hz: f64,
    /// Wall-clock time from first arrival to full drain, milliseconds.
    pub duration_ms: u64,
    /// Sessions submitted (including the round-completion top-up).
    pub submitted: u64,
    /// Sessions completed.
    pub completed: u64,
    /// Sessions that halted with a runtime error.
    pub failed: u64,
    /// High-water mark of concurrently in-flight sessions (queued +
    /// executing).
    pub peak_concurrent: u64,
    /// Sessions executed by a worker other than the shard owner.
    pub stolen: u64,
    /// Completed sessions per second of wall-clock time.
    pub throughput_hz: f64,
    /// Per-(program, mode, engine) groups, in deterministic order.
    pub groups: Vec<LoadGroup>,
    /// Per-mode merged `rtj-metrics/v1` snapshots across all sessions of
    /// that mode.
    pub mode_metrics: Vec<(CheckMode, MetricsSnapshot)>,
    /// The Figure-12 ledger, when both static and dynamic ran.
    pub ledger: Option<LoadLedger>,
}

fn bad(message: impl Into<String>) -> JsonError {
    JsonError {
        at: 0,
        message: message.into(),
    }
}

fn mode_order(results: &[SessionResult]) -> Vec<CheckMode> {
    let mut modes = Vec::new();
    for r in results {
        if !modes.contains(&r.spec.mode) {
            modes.push(r.spec.mode);
        }
    }
    modes
}

impl LoadReport {
    /// Builds the report from a finished serving run. `rate_hz = 0`
    /// marks an unpaced batch.
    pub fn from_serve(
        outcome: &ServeOutcome,
        workload: String,
        rate_hz: f64,
        duration_ms: u64,
    ) -> LoadReport {
        let results = &outcome.results;

        // Group results by (program, mode, engine), preserving the
        // deterministic result order (sorted by session id).
        let mut keys: Vec<(String, CheckMode, Engine)> = Vec::new();
        for r in results {
            let key = (r.spec.program.clone(), r.spec.mode, r.spec.engine);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        keys.sort_by(|a, b| {
            (a.0.as_str(), a.1.name(), a.2.to_string()).cmp(&(
                b.0.as_str(),
                b.1.name(),
                b.2.to_string(),
            ))
        });

        let groups = keys
            .into_iter()
            .map(|(program, mode, engine)| {
                let members: Vec<&SessionResult> = results
                    .iter()
                    .filter(|r| {
                        r.spec.program == program && r.spec.mode == mode && r.spec.engine == engine
                    })
                    .collect();
                LoadGroup {
                    requests: members.len() as u64,
                    failed: members.iter().filter(|r| r.error.is_some()).count() as u64,
                    cycles: members.iter().map(|r| r.cycles).sum(),
                    latency: LatencySummary::from_samples(
                        members.iter().map(|r| r.latency_us).collect(),
                    ),
                    service: LatencySummary::from_samples(
                        members.iter().map(|r| r.service_us).collect(),
                    ),
                    program,
                    mode,
                    engine,
                }
            })
            .collect();

        // Merge per-session snapshots per mode. `MetricsSnapshot::merge`
        // is associative and commutative (proptested in rtj-runtime), so
        // the merged totals are the exact sums of the per-session ones.
        let mode_metrics: Vec<(CheckMode, MetricsSnapshot)> = mode_order(results)
            .into_iter()
            .map(|mode| {
                let mut merged = MetricsSnapshot {
                    mode,
                    ..Default::default()
                };
                for r in results.iter().filter(|r| r.spec.mode == mode) {
                    merged.merge(&r.metrics);
                }
                (mode, merged)
            })
            .collect();

        let find = |m: CheckMode| mode_metrics.iter().find(|(mode, _)| *mode == m);
        let ledger = match (find(CheckMode::Static), find(CheckMode::Dynamic)) {
            (Some((_, s)), Some((_, d))) => Some(LoadLedger {
                static_elided: s.checks_elided(),
                dynamic_performed: d.checks_performed(),
            }),
            _ => None,
        };

        let failed = results.iter().filter(|r| r.error.is_some()).count() as u64;
        let throughput_hz = if duration_ms > 0 {
            outcome.stats.completed as f64 * 1000.0 / duration_ms as f64
        } else {
            0.0
        };
        LoadReport {
            workload,
            workers: outcome.stats.workers,
            rate_hz,
            duration_ms,
            submitted: outcome.stats.submitted,
            completed: outcome.stats.completed,
            failed,
            peak_concurrent: outcome.stats.peak_in_flight,
            stolen: outcome.stats.stolen,
            throughput_hz,
            groups,
            mode_metrics,
            ledger,
        }
    }

    /// Builds the report from an open-loop load run.
    pub fn from_load(outcome: &LoadOutcome, workload: String) -> LoadReport {
        LoadReport::from_serve(
            &outcome.serve,
            workload,
            outcome.plan.rate_hz,
            outcome.elapsed.as_millis() as u64,
        )
    }

    /// Serialises to the versioned document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(LOAD_SCHEMA.into())),
            ("workload", Json::Str(self.workload.clone())),
            ("workers", Json::Int(self.workers as i64)),
            ("rate_hz", Json::Float(self.rate_hz)),
            ("duration_ms", Json::Int(self.duration_ms as i64)),
            (
                "sessions",
                Json::obj(vec![
                    ("submitted", Json::Int(self.submitted as i64)),
                    ("completed", Json::Int(self.completed as i64)),
                    ("failed", Json::Int(self.failed as i64)),
                    ("peak_concurrent", Json::Int(self.peak_concurrent as i64)),
                    ("stolen", Json::Int(self.stolen as i64)),
                ]),
            ),
            ("throughput_hz", Json::Float(self.throughput_hz)),
            (
                "groups",
                Json::Arr(
                    self.groups
                        .iter()
                        .map(|g| {
                            Json::obj(vec![
                                ("program", Json::Str(g.program.clone())),
                                ("mode", Json::Str(g.mode.name().into())),
                                ("engine", Json::Str(g.engine.to_string())),
                                ("requests", Json::Int(g.requests as i64)),
                                ("failed", Json::Int(g.failed as i64)),
                                ("cycles", Json::Int(g.cycles as i64)),
                                ("latency", g.latency.to_json()),
                                ("service", g.service.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "mode_metrics",
                Json::Arr(
                    self.mode_metrics
                        .iter()
                        .map(|(mode, snap)| {
                            Json::obj(vec![
                                ("mode", Json::Str(mode.name().into())),
                                ("metrics", snap.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "ledger",
                match &self.ledger {
                    Some(l) => Json::obj(vec![
                        ("static_elided", Json::Int(l.static_elided as i64)),
                        ("dynamic_performed", Json::Int(l.dynamic_performed as i64)),
                        ("holds", Json::Bool(l.holds())),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Parses a document produced by [`LoadReport::to_json`], rejecting
    /// wrong or missing schema tags.
    pub fn from_json(v: &Json) -> Result<LoadReport, JsonError> {
        match v.get("schema").and_then(Json::as_str) {
            Some(LOAD_SCHEMA) => {}
            Some(other) => return Err(bad(format!("expected {LOAD_SCHEMA}, got {other}"))),
            None => return Err(bad("missing `schema`")),
        }
        let str_field = |k: &str| -> Result<String, JsonError> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(format!("missing `{k}`")))
        };
        let sessions = v.get("sessions").ok_or_else(|| bad("missing `sessions`"))?;
        let sess_field = |k: &str| -> Result<u64, JsonError> {
            sessions
                .get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| bad(format!("missing `sessions.{k}`")))
        };
        let parse_engine = |s: &str| -> Result<Engine, JsonError> {
            match s {
                "vm" => Ok(Engine::Vm),
                "tree" => Ok(Engine::Tree),
                other => Err(bad(format!("bad engine `{other}`"))),
            }
        };
        let mut groups = Vec::new();
        for g in v
            .get("groups")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `groups`"))?
        {
            let mode_name = g
                .get("mode")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("missing group `mode`"))?;
            groups.push(LoadGroup {
                program: g
                    .get("program")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("missing group `program`"))?
                    .to_string(),
                mode: CheckMode::parse(mode_name)
                    .ok_or_else(|| bad(format!("bad mode `{mode_name}`")))?,
                engine: parse_engine(
                    g.get("engine")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("missing group `engine`"))?,
                )?,
                requests: g
                    .get("requests")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing group `requests`"))?,
                failed: g.get("failed").and_then(Json::as_u64).unwrap_or(0),
                cycles: g.get("cycles").and_then(Json::as_u64).unwrap_or(0),
                latency: LatencySummary::from_json(
                    g.get("latency").ok_or_else(|| bad("missing `latency`"))?,
                )?,
                service: LatencySummary::from_json(
                    g.get("service").ok_or_else(|| bad("missing `service`"))?,
                )?,
            });
        }
        let mut mode_metrics = Vec::new();
        for m in v
            .get("mode_metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `mode_metrics`"))?
        {
            let snap = MetricsSnapshot::from_json(
                m.get("metrics").ok_or_else(|| bad("missing `metrics`"))?,
            )?;
            mode_metrics.push((snap.mode, snap));
        }
        let ledger = match v.get("ledger") {
            Some(Json::Null) | None => None,
            Some(l) => Some(LoadLedger {
                static_elided: l
                    .get("static_elided")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `static_elided`"))?,
                dynamic_performed: l
                    .get("dynamic_performed")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| bad("missing `dynamic_performed`"))?,
            }),
        };
        Ok(LoadReport {
            workload: str_field("workload")?,
            workers: v
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `workers`"))? as usize,
            rate_hz: v
                .get("rate_hz")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing `rate_hz`"))?,
            duration_ms: v
                .get("duration_ms")
                .and_then(Json::as_u64)
                .ok_or_else(|| bad("missing `duration_ms`"))?,
            submitted: sess_field("submitted")?,
            completed: sess_field("completed")?,
            failed: sess_field("failed")?,
            peak_concurrent: sess_field("peak_concurrent")?,
            stolen: sess_field("stolen")?,
            throughput_hz: v
                .get("throughput_hz")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing `throughput_hz`"))?,
            groups,
            mode_metrics,
            ledger,
        })
    }

    /// Parses the rendered text form.
    pub fn parse(text: &str) -> Result<LoadReport, JsonError> {
        LoadReport::from_json(&Json::parse(text)?)
    }

    /// Renders the JSON document.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Renders the human-readable serving report: run totals, then the
    /// per-group tail-latency table, then the ledger.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out += &format!("serving report ({LOAD_SCHEMA})\n");
        out += &format!("workload      : {}\n", self.workload);
        out += &format!("workers       : {}\n", self.workers);
        if self.rate_hz > 0.0 {
            out += &format!("arrival rate  : {:.0} /s (open loop)\n", self.rate_hz);
        } else {
            out += "arrival rate  : unpaced batch\n";
        }
        out += &format!("duration      : {} ms\n", self.duration_ms);
        out += &format!(
            "sessions      : {} submitted, {} completed, {} failed\n",
            self.submitted, self.completed, self.failed
        );
        out += &format!(
            "concurrency   : peak {} in flight, {} stolen\n",
            self.peak_concurrent, self.stolen
        );
        out += &format!("throughput    : {:.0} sessions/s\n\n", self.throughput_hz);
        out += &format!(
            "{:<8} {:<8} {:<6} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
            "program", "mode", "engine", "requests", "p50 µs", "p95 µs", "p99 µs", "max µs"
        );
        for g in &self.groups {
            out += &format!(
                "{:<8} {:<8} {:<6} {:>8} {:>9} {:>9} {:>9} {:>9}\n",
                g.program,
                g.mode.name(),
                g.engine.to_string(),
                g.requests,
                g.latency.p50_us,
                g.latency.p95_us,
                g.latency.p99_us,
                g.latency.max_us,
            );
        }
        if let Some(l) = &self.ledger {
            out += &format!(
                "\nfigure-12 ledger: static.elided {} {} dynamic.performed {} ({})\n",
                l.static_elided,
                if l.holds() { "==" } else { "!=" },
                l.dynamic_performed,
                if l.holds() { "holds" } else { "VIOLATED" },
            );
        }
        out
    }
}
