//! The multi-tenant server: prepared program artifacts shared across
//! sessions, per-session runtimes, and the executor gluing them.
//!
//! [`Server::start`] compiles every (program, variant) in the request
//! mix **once** ([`rtj_interp::prepare`]) and shares the immutable
//! artifacts by `Arc` across all sessions; each submitted session then
//! builds a fresh [`rtj_runtime::Runtime`] inside the worker thread
//! ([`rtj_interp::run_prepared`]), so tenants share *code* but never
//! *state*. The `Runtime: Send` audit in rtj-runtime plus the global
//! string interner (PR 1) are the only cross-session surfaces.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use rtj_interp::{prepare, run_prepared, Engine, Prepared, RunConfig};
use rtj_runtime::CheckMode;

use crate::executor::{Executor, ExecutorStats};
use crate::session::{SessionResult, SessionSpec};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (0 = the machine's available parallelism).
    pub workers: usize,
    /// Executor queue capacity; 0 = unbounded (measure backlog instead
    /// of throttling the submitter).
    pub queue_capacity: usize,
    /// Which server programs to serve (subset of
    /// [`rtj_corpus::SERVER_PROGRAMS`]).
    pub programs: Vec<String>,
    /// Request variants per program (distinct baked-in `seq` values,
    /// each compiled once).
    pub variants: u32,
    /// Check modes in the request mix.
    pub modes: Vec<CheckMode>,
    /// Engines in the request mix.
    pub engines: Vec<Engine>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 0,
            queue_capacity: 0,
            programs: rtj_corpus::SERVER_PROGRAMS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            variants: 4,
            modes: vec![CheckMode::Static, CheckMode::Dynamic, CheckMode::Audit],
            engines: vec![Engine::Vm],
        }
    }
}

/// A server start-up failure: unknown program name or a variant that
/// failed to build (parse/type-check).
#[derive(Debug)]
pub struct ServeError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

/// One entry of the request mix: a compiled (program, variant) under a
/// (mode, engine). Session id `s` maps to `mix[s % mix.len()]`.
struct MixEntry {
    program: String,
    variant: u32,
    mode: CheckMode,
    engine: Engine,
    prepared: Arc<Prepared>,
}

/// Everything a finished serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-session results, sorted by session id.
    pub results: Vec<SessionResult>,
    /// Final executor counters.
    pub stats: ExecutorStats,
}

/// The running server. `submit` is cheap (boxes a closure); all engine
/// work happens on the executor's workers.
pub struct Server {
    executor: Executor,
    mix: Vec<Arc<MixEntry>>,
    results: Arc<Mutex<Vec<SessionResult>>>,
}

impl Server {
    /// Compiles the request mix and starts the workers.
    ///
    /// The mix is the cross product *mode-major*:
    /// `modes × engines × programs × variants`. A whole number of mix
    /// rounds therefore runs every (program, variant) pair under every
    /// mode equally often, which is what makes the Figure-12 ledger
    /// (`static.elided == dynamic.performed`) hold **exactly** on the
    /// merged per-session snapshots.
    pub fn start(cfg: &ServeConfig) -> Result<Server, ServeError> {
        if cfg.programs.is_empty() || cfg.modes.is_empty() || cfg.engines.is_empty() {
            return Err(ServeError {
                message: "empty request mix (need >= 1 program, mode, and engine)".into(),
            });
        }
        // Compile each (program, variant) once; share across modes and
        // engines.
        let mut compiled = Vec::new();
        for name in &cfg.programs {
            let sources =
                rtj_corpus::request_variants(name, cfg.variants).ok_or_else(|| ServeError {
                    message: format!(
                        "unknown server program `{name}` (expected one of {})",
                        rtj_corpus::SERVER_PROGRAMS.join(", ")
                    ),
                })?;
            for (variant, src) in sources.iter().enumerate() {
                let checked = rtj_interp::build(src).map_err(|e| ServeError {
                    message: format!("{name} variant {variant} failed to build: {e:?}"),
                })?;
                compiled.push((name.clone(), variant as u32, Arc::new(prepare(&checked))));
            }
        }
        let mut mix = Vec::new();
        for mode in &cfg.modes {
            for engine in &cfg.engines {
                for (program, variant, prepared) in &compiled {
                    mix.push(Arc::new(MixEntry {
                        program: program.clone(),
                        variant: *variant,
                        mode: *mode,
                        engine: *engine,
                        prepared: Arc::clone(prepared),
                    }));
                }
            }
        }
        Ok(Server {
            executor: Executor::new(cfg.workers, cfg.queue_capacity),
            mix,
            results: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Requests per mix round (`modes × engines × programs × variants`).
    pub fn mix_len(&self) -> usize {
        self.mix.len()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.executor.workers()
    }

    /// The spec session `session` will run — a pure function of the id.
    pub fn spec(&self, session: u64) -> SessionSpec {
        let entry = &self.mix[(session as usize) % self.mix.len()];
        SessionSpec {
            session,
            program: entry.program.clone(),
            variant: entry.variant,
            mode: entry.mode,
            engine: entry.engine,
        }
    }

    /// Submits session `session`, anchored to `scheduled` for latency
    /// accounting (pass the open-loop arrival time, or `Instant::now()`
    /// for an unpaced batch). Blocks only when the executor queue is at
    /// capacity.
    pub fn submit(&self, session: u64, scheduled: Instant) {
        let entry = Arc::clone(&self.mix[(session as usize) % self.mix.len()]);
        let results = Arc::clone(&self.results);
        self.executor.submit(Box::new(move || {
            let mut cfg = RunConfig::new(entry.mode);
            cfg.engine = entry.engine;
            cfg.session = session;
            let outcome = run_prepared(&entry.prepared, cfg);
            let latency_us = scheduled.elapsed().as_micros() as u64;
            let result = SessionResult {
                spec: SessionSpec {
                    session,
                    program: entry.program.clone(),
                    variant: entry.variant,
                    mode: entry.mode,
                    engine: entry.engine,
                },
                cycles: outcome.cycles,
                metrics: outcome.metrics,
                output: outcome.trace,
                error: outcome.error,
                service_us: outcome.wall.as_micros() as u64,
                latency_us,
            };
            results.lock().unwrap().push(result);
        }));
    }

    /// Blocks until all submitted sessions finish.
    pub fn drain(&self) {
        self.executor.drain();
    }

    /// Current executor counters.
    pub fn stats(&self) -> ExecutorStats {
        self.executor.stats()
    }

    /// Drains, stops the workers, and returns the per-session results
    /// sorted by session id.
    pub fn finish(self) -> ServeOutcome {
        let stats = self.executor.shutdown();
        let mut results = Arc::try_unwrap(self.results)
            .expect("workers stopped")
            .into_inner()
            .unwrap();
        results.sort_by_key(|r| r.spec.session);
        ServeOutcome { results, stats }
    }
}

/// Runs `rounds` complete mix rounds as fast as the workers allow (no
/// pacing) and returns the results — the `rtjc serve` entry point and
/// the saturation benchmark.
pub fn run_batch(cfg: &ServeConfig, rounds: u64) -> Result<ServeOutcome, ServeError> {
    let server = Server::start(cfg)?;
    let sessions = rounds * server.mix_len() as u64;
    for session in 0..sessions {
        server.submit(session, Instant::now());
    }
    Ok(server.finish())
}
